//! Incremental Merkle tree over page MACs.
//!
//! The paper builds an HMAC-based Merkle tree whose leaves are the per-page
//! MACs; the root (further MAC'd with a HUK-derived key) goes to the RPMB.
//! This implementation supports appends, in-place leaf updates, per-read
//! path verification, and a configurable arity (the binary-vs-wide trade
//! is one of the ablation benches).
//!
//! Two freshness fast paths cut the per-read verification cost without
//! weakening the trust chain:
//!
//! * [`MerkleTree::verify_batch`] verifies a whole batch of `(index, mac)`
//!   pairs in one shared-path climb: each touched sibling group is hashed
//!   **once per level** instead of once per leaf, collapsing `node_visits`
//!   from O(batch × depth × arity) to O(touched nodes).
//! * A [`VerifiedNodeCache`] remembers which nodes have already been
//!   authenticated against the current trusted root. The cache is keyed by
//!   a **root epoch** — bumped on every `append`/`update`, i.e. on every
//!   root change — and tagged with the exact root it was validated
//!   against, so a rolled-back or otherwise stale root can never be served
//!   from the cache: any mismatch bypasses it and forces a full climb.
//!
//! With the cache enabled, the per-epoch visit total is *order- and
//! batching-independent*: every read entry costs exactly one leaf-hash
//! visit, and every distinct touched sibling group costs `group + 1`
//! visits exactly once — which is what keeps serial and batched read
//! paths charging bit-identical [`PagerStats`](crate::pager::PagerStats)
//! deltas.

use ironsafe_crypto::hmac::{hmac_sha256_concat, HmacSha256};
use std::collections::HashSet;

/// A 32-byte node hash.
pub type NodeHash = [u8; 32];

/// Default verified-node cache capacity (nodes). Large enough that test
/// and benchmark workloads never evict; deployments size it against the
/// enclave memory budget via [`MerkleTree::set_cache_capacity`].
pub const DEFAULT_NODE_CACHE_CAPACITY: usize = 1 << 20;

/// Cumulative tallies of verified-node-cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Verification entries served entirely from the cache (leaf already
    /// authenticated against the current root: one leaf-hash visit, no
    /// interior climbing).
    pub hits: u64,
    /// Verification entries that had to hash at least part of their path.
    pub misses: u64,
    /// Authenticated nodes dropped by capacity eviction.
    pub evicts: u64,
}

/// Snapshot for rolling a failed (fault-injected, retried) operation's
/// cache insertions back out — see [`MerkleTree::cache_checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct CacheCheckpoint {
    journal_len: usize,
    generation: u64,
    stats: NodeCacheStats,
}

/// TEE-resident set of `(level, index)` node coordinates whose stored
/// hashes are known to chain to the tagged trusted root.
///
/// Validity is anchored twice: the set is cleared on every epoch bump
/// (any `append`/`update`, i.e. any root change), and every lookup first
/// checks that the caller's `expected_root` equals the tag the entries
/// were authenticated against — a verification against any *other* root
/// (stale, forked, rolled back) bypasses the cache entirely and climbs
/// the full path, so the cache can never mask a rollback.
#[derive(Clone, Debug, Default)]
struct VerifiedNodeCache {
    enabled: bool,
    nodes: HashSet<(u32, u64)>,
    /// The root every cached node was authenticated against.
    root: Option<NodeHash>,
    capacity: usize,
    /// Coordinates inserted since the last checkpoint/commit, for
    /// stats-atomic rollback of failed batch attempts.
    journal: Vec<(u32, u64)>,
    /// Bumped whenever the set is cleared wholesale (epoch bump or
    /// capacity eviction); lets a rollback detect that journal replay
    /// is no longer sufficient and fall back to a full clear.
    generation: u64,
    stats: NodeCacheStats,
}

impl VerifiedNodeCache {
    /// True when lookups/insertions against `expected_root` may use the
    /// cache: it must be enabled and either untagged (empty) or tagged
    /// with exactly that root.
    fn usable_for(&self, expected_root: &NodeHash) -> bool {
        self.enabled && (self.root.is_none() || self.root.as_ref() == Some(expected_root))
    }

    fn contains(&self, level: u32, index: u64) -> bool {
        self.nodes.contains(&(level, index))
    }

    /// Drop everything (epoch bump / root change).
    fn clear(&mut self) {
        self.nodes.clear();
        self.journal.clear();
        self.root = None;
        self.generation = self.generation.wrapping_add(1);
    }

    fn insert(&mut self, level: u32, index: u64) {
        if !self.enabled || self.nodes.contains(&(level, index)) {
            return;
        }
        if self.nodes.len() >= self.capacity.max(1) {
            // Deterministic wholesale eviction: cheaper to re-authenticate
            // a few paths than to track LRU order inside the enclave.
            self.stats.evicts += self.nodes.len() as u64;
            let root = self.root;
            self.clear();
            self.root = root;
        }
        self.nodes.insert((level, index));
        self.journal.push((level, index));
    }
}

/// Incremental Merkle tree.
#[derive(Clone)]
pub struct MerkleTree {
    key: [u8; 32],
    arity: usize,
    /// `levels[0]` are the leaves; the last level has exactly one node.
    levels: Vec<Vec<NodeHash>>,
    /// Nodes visited by verify/update operations (cost-model input).
    node_visits: u64,
    /// Bumped on every structural change (append/update); tags cache
    /// validity.
    epoch: u64,
    cache: VerifiedNodeCache,
}

impl std::fmt::Debug for MerkleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MerkleTree(leaves: {}, arity: {}, depth: {})", self.num_leaves(), self.arity, self.levels.len())
    }
}

impl MerkleTree {
    /// An empty tree keyed with `key`, with the given fan-out (≥ 2).
    pub fn new(key: [u8; 32], arity: usize) -> Self {
        assert!(arity >= 2, "Merkle arity must be at least 2");
        MerkleTree {
            key,
            arity,
            levels: vec![Vec::new()],
            node_visits: 0,
            epoch: 0,
            cache: VerifiedNodeCache {
                enabled: false,
                capacity: DEFAULT_NODE_CACHE_CAPACITY,
                ..VerifiedNodeCache::default()
            },
        }
    }

    /// Binary tree (the paper's configuration).
    pub fn binary(key: [u8; 32]) -> Self {
        Self::new(key, 2)
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Cumulative node visits (verifications + updates).
    pub fn node_visits(&self) -> u64 {
        self.node_visits
    }

    /// Zero the visit counter.
    pub fn reset_counters(&mut self) {
        self.node_visits = 0;
    }

    /// Restore the visit counter to an earlier snapshot — used by the
    /// secure pager to keep batch reads stats-atomic: a failed batch
    /// rolls its partial Merkle work back out of the counters.
    pub fn restore_node_visits(&mut self, snapshot: u64) {
        self.node_visits = snapshot;
    }

    /// Current root epoch: bumped on every `append`/`update` (every root
    /// change). The verified-node cache is only ever valid within one
    /// epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enable/disable the verified-node cache (disabled by default on a
    /// raw tree; the secure pager enables it). Disabling clears it.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.cache.clear();
        }
        self.cache.enabled = enabled;
    }

    /// True when the verified-node cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.enabled
    }

    /// Bound the verified-node cache to `capacity` nodes (≥ 1). Shrinking
    /// below the current population evicts everything (counted).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.capacity = capacity.max(1);
        if self.cache.nodes.len() > self.cache.capacity {
            self.cache.stats.evicts += self.cache.nodes.len() as u64;
            let root = self.cache.root;
            self.cache.clear();
            self.cache.root = root;
        }
    }

    /// Number of currently cached (authenticated) nodes.
    pub fn cached_nodes(&self) -> usize {
        self.cache.nodes.len()
    }

    /// Cumulative cache hit/miss/evict tallies.
    pub fn cache_stats(&self) -> NodeCacheStats {
        self.cache.stats
    }

    /// Restore the cache tallies to an earlier snapshot (stats-atomic
    /// rollback of a failed attempt, alongside
    /// [`MerkleTree::restore_node_visits`]).
    pub fn restore_cache_stats(&mut self, snapshot: NodeCacheStats) {
        self.cache.stats = snapshot;
    }

    /// Begin a cache transaction: every insertion from here on is
    /// journaled until [`MerkleTree::cache_commit`] or
    /// [`MerkleTree::cache_rollback`].
    pub fn cache_checkpoint(&mut self) -> CacheCheckpoint {
        CacheCheckpoint {
            journal_len: self.cache.journal.len(),
            generation: self.cache.generation,
            stats: self.cache.stats,
        }
    }

    /// Keep every insertion made since the checkpoint and drop the
    /// journal (it is only needed to support rollback).
    pub fn cache_commit(&mut self) {
        self.cache.journal.clear();
    }

    /// Remove every node inserted since `checkpoint` and restore the
    /// tallies. If the cache was cleared wholesale in between (epoch
    /// bump or capacity eviction), the journal no longer describes the
    /// delta, so the whole cache is conservatively dropped — always
    /// safe: a smaller cache only costs extra node visits, never
    /// correctness.
    pub fn cache_rollback(&mut self, checkpoint: CacheCheckpoint) {
        if self.cache.generation != checkpoint.generation {
            self.cache.clear();
        } else {
            while self.cache.journal.len() > checkpoint.journal_len {
                let coord = self.cache.journal.pop().expect("journal non-empty");
                self.cache.nodes.remove(&coord);
            }
        }
        self.cache.stats = checkpoint.stats;
    }

    /// Epoch bump: any structural change invalidates every previously
    /// authenticated node.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.cache.clear();
    }

    fn leaf_hash(&self, index: u64, page_mac: &[u8; 32]) -> NodeHash {
        hmac_sha256_concat(&self.key, &[b"merkle-leaf", &index.to_be_bytes(), page_mac])
    }

    fn node_hash(&self, level: usize, children: &[NodeHash]) -> NodeHash {
        let mut h = HmacSha256::new(&self.key);
        h.update(b"merkle-node");
        h.update(&(level as u32).to_be_bytes());
        for c in children {
            h.update(c);
        }
        h.finalize()
    }

    /// Append a leaf for a new page; returns its index. Bumps the root
    /// epoch (clearing the verified-node cache).
    pub fn append(&mut self, page_mac: &[u8; 32]) -> u64 {
        self.bump_epoch();
        let index = self.levels[0].len() as u64;
        let leaf = self.leaf_hash(index, page_mac);
        self.levels[0].push(leaf);
        self.rebuild_path(index as usize);
        index
    }

    /// Update the leaf for an existing page after a page write. Bumps the
    /// root epoch (clearing the verified-node cache).
    pub fn update(&mut self, index: u64, page_mac: &[u8; 32]) {
        self.bump_epoch();
        let i = index as usize;
        assert!(i < self.levels[0].len(), "leaf index out of range");
        self.levels[0][i] = self.leaf_hash(index, page_mac);
        self.rebuild_path(i);
    }

    /// Recompute ancestors of leaf `i` (growing levels as needed) until the
    /// top level has a single node.
    fn rebuild_path(&mut self, mut i: usize) {
        let mut level = 0;
        while self.levels[level].len() > 1 {
            let cur_len = self.levels[level].len();
            let parent = i / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(cur_len);
            let hash = self.node_hash(level, &self.levels[level][start..end]);
            self.node_visits += (end - start) as u64 + 1;
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            let up = &mut self.levels[level + 1];
            if parent >= up.len() {
                debug_assert_eq!(parent, up.len(), "appends only extend by one parent");
                up.push(hash);
            } else {
                up[parent] = hash;
            }
            level += 1;
            i = parent;
        }
    }

    /// The root hash (`None` for an empty tree).
    pub fn root(&self) -> Option<NodeHash> {
        if self.num_leaves() == 0 {
            return None;
        }
        let top = self.levels.last().expect("at least one level");
        debug_assert_eq!(top.len(), 1);
        Some(top[0])
    }

    /// Mark the children of every hashed sibling group (and, when the
    /// climb reached it, the root) as authenticated against `root`. Only
    /// called after a successful verification: within one epoch the
    /// stored `levels` are internally consistent by construction, so
    /// every stored value that fed a hash chain ending at the trusted
    /// root is itself authentic.
    fn cache_populate(&mut self, touched: &[(u32, usize, usize)], root: &NodeHash, reached_top: bool) {
        self.cache.root = Some(*root);
        for &(level, start, end) in touched {
            for j in start..end {
                self.cache.insert(level, j as u64);
            }
        }
        if reached_top {
            self.cache.insert(self.levels.len() as u32 - 1, 0);
        }
    }

    /// Verify that `page_mac` is the authentic MAC for leaf `index` by
    /// recomputing the path to the root and comparing with `expected_root`.
    ///
    /// Counts the visited nodes — this is the per-read freshness check that
    /// dominates the paper's Figure 8/9c breakdowns. With the verified-node
    /// cache enabled *and* `expected_root` matching the cache's root tag,
    /// the climb stops at the first already-authenticated ancestor (a
    /// cached leaf costs exactly one leaf-hash visit); any other
    /// `expected_root` bypasses the cache and pays the full climb, so a
    /// stale or forked root is always re-checked from scratch.
    pub fn verify(&mut self, index: u64, page_mac: &[u8; 32], expected_root: &NodeHash) -> bool {
        let i = index as usize;
        if i >= self.levels[0].len() {
            return false;
        }
        let mut hash = self.leaf_hash(index, page_mac);
        self.node_visits += 1;
        if self.levels[0][i] != hash {
            return false;
        }
        let use_cache = self.cache.usable_for(expected_root);
        if use_cache {
            if self.cache.contains(0, index) {
                self.cache.stats.hits += 1;
                return true;
            }
            self.cache.stats.misses += 1;
        }
        let mut idx = i;
        let mut touched: Vec<(u32, usize, usize)> = Vec::new();
        for level in 0..self.levels.len() - 1 {
            let cur = &self.levels[level];
            let parent = idx / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(cur.len());
            let mut children: Vec<NodeHash> = cur[start..end].to_vec();
            children[idx - start] = hash;
            hash = self.node_hash(level, &children);
            self.node_visits += (end - start) as u64 + 1;
            touched.push((level as u32, start, end));
            idx = parent;
            if use_cache && self.cache.contains(level as u32 + 1, parent as u64) {
                // The computed parent must equal the stored value that was
                // previously authenticated against the tagged root.
                if self.levels[level + 1][parent] != hash {
                    return false;
                }
                self.cache_populate(&touched, expected_root, false);
                return true;
            }
        }
        let ok = ironsafe_crypto::ct_eq(&hash, expected_root);
        if ok && use_cache {
            self.cache_populate(&touched, expected_root, true);
        }
        ok
    }

    /// Verify a whole batch of `(index, mac)` pairs against
    /// `expected_root` in one shared-path climb. Returns `true` iff every
    /// pair would pass [`MerkleTree::verify`].
    ///
    /// Cost model: every entry (duplicates included) charges exactly one
    /// leaf-hash visit; each *distinct* touched sibling group is then
    /// hashed once per level — `O(touched nodes)` instead of
    /// `O(batch × depth × arity)`. With the verified-node cache enabled
    /// the per-epoch total is identical to an equivalent sequence of
    /// single [`MerkleTree::verify`] calls in any order, which is what
    /// keeps batched and looped secure reads charging the same
    /// [`PagerStats`](crate::pager::PagerStats).
    pub fn verify_batch(
        &mut self,
        indices: &[u64],
        macs: &[[u8; 32]],
        expected_root: &NodeHash,
    ) -> bool {
        debug_assert_eq!(indices.len(), macs.len(), "one MAC per index");
        if indices.is_empty() {
            return true;
        }
        // Leaf pass: one visit per entry, duplicates included (each entry
        // models one page read and its MAC recomputation).
        for (&index, mac) in indices.iter().zip(macs) {
            let i = index as usize;
            if i >= self.levels[0].len() {
                return false;
            }
            let h = self.leaf_hash(index, mac);
            self.node_visits += 1;
            if self.levels[0][i] != h {
                return false;
            }
        }
        let use_cache = self.cache.usable_for(expected_root);
        if use_cache {
            for &index in indices {
                if self.cache.contains(0, index) {
                    self.cache.stats.hits += 1;
                } else {
                    self.cache.stats.misses += 1;
                }
            }
        }
        // Climb frontier: distinct leaves that are not already
        // authenticated against this root.
        let mut frontier: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
        frontier.sort_unstable();
        frontier.dedup();
        if use_cache {
            frontier.retain(|&i| !self.cache.contains(0, i as u64));
        }
        let mut touched: Vec<(u32, usize, usize)> = Vec::new();
        let mut level = 0usize;
        while !frontier.is_empty() && level + 1 < self.levels.len() {
            let cur_len = self.levels[level].len();
            let mut next: Vec<usize> = Vec::with_capacity(frontier.len());
            let mut k = 0;
            while k < frontier.len() {
                let parent = frontier[k] / self.arity;
                while k < frontier.len() && frontier[k] / self.arity == parent {
                    k += 1;
                }
                let start = parent * self.arity;
                let end = (start + self.arity).min(cur_len);
                // The frontier entries inside this group all equal their
                // stored values (leaf pass / induction), so hashing the
                // stored children is exactly the serial recomputation.
                let h = self.node_hash(level, &self.levels[level][start..end]);
                self.node_visits += (end - start) as u64 + 1;
                if self.levels[level + 1][parent] != h {
                    return false;
                }
                touched.push((level as u32, start, end));
                if !(use_cache && self.cache.contains(level as u32 + 1, parent as u64)) {
                    next.push(parent);
                }
            }
            frontier = next;
            level += 1;
        }
        if !frontier.is_empty() {
            // Reached the top level: the (chained) stored root must match.
            debug_assert_eq!(frontier, [0]);
            let top = self.levels[level][0];
            if !ironsafe_crypto::ct_eq(&top, expected_root) {
                return false;
            }
        }
        if use_cache {
            // A non-empty frontier means the climb reached the top level
            // and the stored root was compared against `expected_root`.
            let reached_top = !frontier.is_empty();
            self.cache_populate(&touched, expected_root, reached_top);
        }
        true
    }

    /// Rebuild the whole tree from a list of page MACs (used when loading a
    /// database from the untrusted medium).
    pub fn rebuild_from_macs(key: [u8; 32], arity: usize, macs: &[[u8; 32]]) -> Self {
        let mut t = Self::new(key, arity);
        if macs.is_empty() {
            return t;
        }
        t.levels[0] = macs
            .iter()
            .enumerate()
            .map(|(i, m)| t.leaf_hash(i as u64, m))
            .collect();
        let mut level = 0;
        while t.levels[level].len() > 1 {
            let cur_len = t.levels[level].len();
            let mut up = Vec::with_capacity(cur_len.div_ceil(t.arity));
            for chunk_start in (0..cur_len).step_by(t.arity) {
                let end = (chunk_start + t.arity).min(cur_len);
                let h = t.node_hash(level, &t.levels[level][chunk_start..end]);
                up.push(h);
            }
            t.levels.push(up);
            level += 1;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> [u8; 32] {
        [i; 32]
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = MerkleTree::binary([0; 32]);
        assert_eq!(t.root(), None);
    }

    #[test]
    fn single_leaf_root_changes_with_leaf() {
        let mut t = MerkleTree::binary([0; 32]);
        t.append(&mac(1));
        let r1 = t.root().unwrap();
        t.update(0, &mac(2));
        assert_ne!(t.root().unwrap(), r1);
    }

    #[test]
    fn append_matches_rebuild() {
        for n in 1..40usize {
            let macs: Vec<[u8; 32]> = (0..n).map(|i| mac(i as u8)).collect();
            let mut inc = MerkleTree::binary([7; 32]);
            for m in &macs {
                inc.append(m);
            }
            let bulk = MerkleTree::rebuild_from_macs([7; 32], 2, &macs);
            assert_eq!(inc.root(), bulk.root(), "n = {n}");
        }
    }

    #[test]
    fn append_matches_rebuild_wide_arity() {
        for arity in [3usize, 4, 8, 16] {
            let macs: Vec<[u8; 32]> = (0..33).map(|i| mac(i as u8)).collect();
            let mut inc = MerkleTree::new([7; 32], arity);
            for m in &macs {
                inc.append(m);
            }
            let bulk = MerkleTree::rebuild_from_macs([7; 32], arity, &macs);
            assert_eq!(inc.root(), bulk.root(), "arity = {arity}");
        }
    }

    #[test]
    fn verify_accepts_genuine_leaves() {
        let macs: Vec<[u8; 32]> = (0..17).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        for (i, m) in macs.iter().enumerate() {
            assert!(t.verify(i as u64, m, &root), "leaf {i}");
        }
    }

    #[test]
    fn verify_rejects_wrong_mac() {
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(!t.verify(3, &mac(99), &root));
    }

    #[test]
    fn verify_rejects_displaced_leaf() {
        // The MAC of leaf 2 presented at index 5 must fail.
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(!t.verify(5, &mac(2), &root));
    }

    #[test]
    fn verify_rejects_stale_root() {
        let mut t = MerkleTree::binary([1; 32]);
        t.append(&mac(1));
        t.append(&mac(2));
        let old_root = t.root().unwrap();
        t.update(0, &mac(3));
        assert!(!t.verify(0, &mac(3), &old_root), "rollback detected");
        let new_root = t.root().unwrap();
        assert!(t.verify(0, &mac(3), &new_root));
    }

    #[test]
    fn update_only_affects_root_not_siblings() {
        let macs: Vec<[u8; 32]> = (0..16).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.update(7, &mac(70));
        let root = t.root().unwrap();
        for (i, m) in macs.iter().enumerate() {
            if i == 7 {
                assert!(t.verify(7, &mac(70), &root));
            } else {
                assert!(t.verify(i as u64, m, &root), "sibling {i} still valid");
            }
        }
    }

    #[test]
    fn different_keys_different_roots() {
        let macs: Vec<[u8; 32]> = (0..4).map(|i| mac(i as u8)).collect();
        let a = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let b = MerkleTree::rebuild_from_macs([2; 32], 2, &macs);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn node_visits_accumulate() {
        let macs: Vec<[u8; 32]> = (0..64).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.reset_counters();
        let root = t.root().unwrap();
        t.verify(0, &mac(0), &root);
        let binary_visits = t.node_visits();
        assert!(binary_visits > 6, "binary tree over 64 leaves is 6 levels deep");

        let mut wide = MerkleTree::rebuild_from_macs([1; 32], 16, &macs);
        wide.reset_counters();
        let wroot = wide.root().unwrap();
        wide.verify(0, &mac(0), &wroot);
        assert!(wide.depth() < t.depth(), "wide tree is shallower");
    }

    #[test]
    fn verify_batch_accepts_genuine_leaves_with_fewer_visits() {
        for arity in [2usize, 4, 8] {
            let macs: Vec<[u8; 32]> = (0..64).map(|i| mac(i as u8)).collect();
            let mut serial = MerkleTree::rebuild_from_macs([1; 32], arity, &macs);
            let mut batch = serial.clone();
            let root = serial.root().unwrap();
            serial.reset_counters();
            batch.reset_counters();
            for (i, m) in macs.iter().enumerate() {
                assert!(serial.verify(i as u64, m, &root));
            }
            let ids: Vec<u64> = (0..macs.len() as u64).collect();
            assert!(batch.verify_batch(&ids, &macs, &root), "arity {arity}");
            assert!(
                batch.node_visits() * 3 <= serial.node_visits(),
                "arity {arity}: shared-path batch {} vs per-leaf {}",
                batch.node_visits(),
                serial.node_visits()
            );
        }
    }

    #[test]
    fn verify_batch_rejects_single_corrupted_mac() {
        let macs: Vec<[u8; 32]> = (0..32).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        let ids: Vec<u64> = (0..32).collect();
        let mut bad = macs.clone();
        bad[13] = mac(200);
        assert!(!t.verify_batch(&ids, &bad, &root));
        assert!(t.verify_batch(&ids, &macs, &root), "pristine batch still accepted");
    }

    #[test]
    fn verify_batch_rejects_out_of_range_and_stale_root() {
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(!t.verify_batch(&[3, 99], &[mac(3), mac(99)], &root));
        let old_root = root;
        t.update(0, &mac(77));
        let ids: Vec<u64> = (0..8).collect();
        let mut cur = macs.clone();
        cur[0] = mac(77);
        assert!(!t.verify_batch(&ids, &cur, &old_root), "rollback rejected");
        assert!(t.verify_batch(&ids, &cur, &t.root().unwrap()));
    }

    #[test]
    fn verify_batch_handles_duplicates_and_empty() {
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(t.verify_batch(&[], &[], &root));
        t.reset_counters();
        assert!(t.verify_batch(&[5, 5, 5], &[mac(5), mac(5), mac(5)], &root));
        // Three leaf visits, but the shared climb happens once.
        let mut single = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        single.reset_counters();
        assert!(single.verify(5, &mac(5), &root));
        assert_eq!(t.node_visits(), single.node_visits() + 2);
    }

    #[test]
    fn cached_visit_totals_are_order_and_batch_independent() {
        // With the cache on, any mix of single/batch verifies of the same
        // multiset of leaves charges the same per-epoch node_visits total.
        for arity in [2usize, 3, 4, 16] {
            let macs: Vec<[u8; 32]> = (0..23).map(|i| mac(i as u8)).collect();
            let mut base = MerkleTree::rebuild_from_macs([1; 32], arity, &macs);
            base.set_cache_enabled(true);
            let root = base.root().unwrap();
            let ids: Vec<u64> = (0..macs.len() as u64).collect();

            let mut asc = base.clone();
            for (i, m) in macs.iter().enumerate() {
                assert!(asc.verify(i as u64, m, &root));
            }
            let mut desc = base.clone();
            for (i, m) in macs.iter().enumerate().rev() {
                assert!(desc.verify(i as u64, m, &root));
            }
            let mut batched = base.clone();
            assert!(batched.verify_batch(&ids, &macs, &root));
            let mut mixed = base.clone();
            assert!(mixed.verify_batch(&ids[..7], &macs[..7], &root));
            for (i, m) in macs.iter().enumerate().skip(7) {
                assert!(mixed.verify(i as u64, m, &root));
            }
            assert_eq!(asc.node_visits(), desc.node_visits(), "arity {arity}");
            assert_eq!(asc.node_visits(), batched.node_visits(), "arity {arity}");
            assert_eq!(asc.node_visits(), mixed.node_visits(), "arity {arity}");
        }
    }

    #[test]
    fn cache_hits_skip_the_climb_and_are_counted() {
        let macs: Vec<[u8; 32]> = (0..64).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.set_cache_enabled(true);
        let root = t.root().unwrap();
        let ids: Vec<u64> = (0..64).collect();
        assert!(t.verify_batch(&ids, &macs, &root));
        let warm_visits = t.node_visits();
        assert_eq!(t.cache_stats().misses, 64);
        assert_eq!(t.cache_stats().hits, 0);
        // Second pass: every leaf is authenticated — one visit each.
        assert!(t.verify_batch(&ids, &macs, &root));
        assert_eq!(t.node_visits(), warm_visits + 64);
        assert_eq!(t.cache_stats().hits, 64);
        // Single reads hit too.
        assert!(t.verify(17, &mac(17), &root));
        assert_eq!(t.node_visits(), warm_visits + 65);
        assert_eq!(t.cache_stats().hits, 65);
    }

    #[test]
    fn warm_cache_never_masks_corruption_or_rollback() {
        let macs: Vec<[u8; 32]> = (0..16).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.set_cache_enabled(true);
        let root = t.root().unwrap();
        let ids: Vec<u64> = (0..16).collect();
        assert!(t.verify_batch(&ids, &macs, &root));
        // Wrong MAC with a warm cache: the leaf-hash compare still runs.
        assert!(!t.verify(3, &mac(99), &root));
        let mut bad = macs.clone();
        bad[3] = mac(99);
        assert!(!t.verify_batch(&ids, &bad, &root));
        // Stale root with a warm cache: the root tag mismatches, the cache
        // is bypassed, and the full climb rejects.
        let old_root = root;
        t.update(3, &mac(123));
        assert_eq!(t.cached_nodes(), 0, "epoch bump cleared the cache");
        assert!(!t.verify(0, &mac(0), &old_root));
        assert!(!t.verify_batch(&[0, 1], &[mac(0), mac(1)], &old_root));
        let new_root = t.root().unwrap();
        assert!(t.verify(0, &mac(0), &new_root));
        // Re-warm against the new root, then present the old root again:
        // still rejected even though interior nodes are cached.
        let mut cur = macs.clone();
        cur[3] = mac(123);
        assert!(t.verify_batch(&ids, &cur, &new_root));
        assert!(!t.verify(0, &mac(0), &old_root), "cached nodes are tagged to the new root");
    }

    #[test]
    fn epoch_bumps_on_append_and_update() {
        let mut t = MerkleTree::binary([1; 32]);
        let e0 = t.epoch();
        t.append(&mac(1));
        assert_eq!(t.epoch(), e0 + 1);
        t.update(0, &mac(2));
        assert_eq!(t.epoch(), e0 + 2);
    }

    #[test]
    fn tiny_capacity_evicts_wholesale_and_counts() {
        let macs: Vec<[u8; 32]> = (0..64).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.set_cache_enabled(true);
        t.set_cache_capacity(4);
        let root = t.root().unwrap();
        for (i, m) in macs.iter().enumerate() {
            assert!(t.verify(i as u64, m, &root), "eviction never breaks verification");
        }
        assert!(t.cache_stats().evicts > 0, "capacity 4 must evict on a 64-leaf scan");
        assert!(t.cached_nodes() <= 4 + 1, "population bounded near capacity");
        // Shrinking below population also evicts (counted).
        t.set_cache_capacity(1);
        assert!(t.cached_nodes() <= 1);
    }

    #[test]
    fn cache_checkpoint_rollback_discards_attempt_insertions() {
        let macs: Vec<[u8; 32]> = (0..16).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.set_cache_enabled(true);
        let root = t.root().unwrap();
        assert!(t.verify(0, &mac(0), &root));
        t.cache_commit();
        let committed = t.cached_nodes();
        let stats_before = t.cache_stats();

        let cp = t.cache_checkpoint();
        assert!(t.verify_batch(&[8, 9, 10], &[mac(8), mac(9), mac(10)], &root));
        assert!(t.cached_nodes() > committed);
        t.cache_rollback(cp);
        assert_eq!(t.cached_nodes(), committed, "attempt insertions rolled back");
        assert_eq!(t.cache_stats(), stats_before, "tallies restored");
        // The rolled-back leaves verify again from scratch (miss, not hit).
        let visits = t.node_visits();
        assert!(t.verify(8, &mac(8), &root));
        assert!(t.node_visits() > visits + 1, "leaf 8 is no longer cached");

        // A wholesale clear between checkpoint and rollback falls back to
        // dropping everything (generation mismatch).
        let cp = t.cache_checkpoint();
        t.update(0, &mac(55));
        let root2 = t.root().unwrap();
        assert!(t.verify(1, &mac(1), &root2));
        t.cache_rollback(cp);
        assert_eq!(t.cached_nodes(), 0, "generation changed: conservative full clear");
        assert!(t.verify(1, &mac(1), &root2), "correctness unaffected");
    }

    #[test]
    fn disabled_cache_leaves_counters_untouched() {
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        let ids: Vec<u64> = (0..8).collect();
        assert!(t.verify_batch(&ids, &macs, &root));
        assert!(t.verify(0, &mac(0), &root));
        assert_eq!(t.cache_stats(), NodeCacheStats::default());
        assert_eq!(t.cached_nodes(), 0);
    }

    #[test]
    fn single_leaf_tree_caches_consistently() {
        let mut t = MerkleTree::binary([1; 32]);
        t.append(&mac(1));
        t.set_cache_enabled(true);
        let root = t.root().unwrap();
        assert!(t.verify_batch(&[0], &[mac(1)], &root));
        assert_eq!(t.cache_stats().misses, 1);
        assert!(t.verify(0, &mac(1), &root));
        assert_eq!(t.cache_stats().hits, 1, "batch warm-up serves the single read");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn incremental_equals_bulk(
                macs in proptest::collection::vec(any::<[u8; 32]>(), 1..100),
                arity in 2usize..8,
            ) {
                let mut inc = MerkleTree::new([9; 32], arity);
                for m in &macs {
                    inc.append(m);
                }
                let bulk = MerkleTree::rebuild_from_macs([9; 32], arity, &macs);
                prop_assert_eq!(inc.root(), bulk.root());
            }

            #[test]
            fn all_leaves_verify_after_random_updates(
                mut macs in proptest::collection::vec(any::<[u8; 32]>(), 2..50),
                updates in proptest::collection::vec((any::<usize>(), any::<[u8; 32]>()), 0..20),
            ) {
                let mut t = MerkleTree::rebuild_from_macs([3; 32], 2, &macs);
                for (idx, m) in updates {
                    let i = idx % macs.len();
                    macs[i] = m;
                    t.update(i as u64, &m);
                }
                let root = t.root().unwrap();
                for (i, m) in macs.iter().enumerate() {
                    prop_assert!(t.verify(i as u64, m, &root));
                }
            }

            /// `verify_batch` accepts exactly the (index, mac) sets a
            /// sequence of single `verify` calls accepts — including
            /// corrupted MACs, displaced leaves, and duplicates, with and
            /// without the cache.
            #[test]
            fn batch_accepts_iff_singles_accept(
                macs in proptest::collection::vec(any::<[u8; 32]>(), 1..40),
                arity in 2usize..6,
                picks in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..20),
                cache_on in any::<bool>(),
            ) {
                let n = macs.len();
                let mut base = MerkleTree::rebuild_from_macs([5; 32], arity, &macs);
                base.set_cache_enabled(cache_on);
                let root = base.root().unwrap();
                // Build a batch that mixes genuine and corrupted entries.
                let mut ids = Vec::new();
                let mut presented = Vec::new();
                for (raw, twist) in picks {
                    let i = raw % n;
                    ids.push(i as u64);
                    let mut m = macs[i];
                    if twist % 4 == 0 {
                        m[0] ^= twist | 1; // corrupted MAC
                    }
                    presented.push(m);
                }
                let mut singles = base.clone();
                let all_pass = ids
                    .iter()
                    .zip(&presented)
                    .all(|(&i, m)| singles.verify(i, m, &root));
                let mut batch = base.clone();
                prop_assert_eq!(batch.verify_batch(&ids, &presented, &root), all_pass);
            }

            /// One corrupted MAC anywhere in an otherwise-valid batch is
            /// rejected, warm cache or cold.
            #[test]
            fn batch_rejects_any_single_corruption(
                macs in proptest::collection::vec(any::<[u8; 32]>(), 2..40),
                arity in 2usize..6,
                victim in any::<usize>(),
                bit in 0usize..256,
                warm in any::<bool>(),
            ) {
                let n = macs.len();
                let mut t = MerkleTree::rebuild_from_macs([5; 32], arity, &macs);
                t.set_cache_enabled(true);
                let root = t.root().unwrap();
                let ids: Vec<u64> = (0..n as u64).collect();
                if warm {
                    prop_assert!(t.verify_batch(&ids, &macs, &root));
                }
                let mut bad = macs.clone();
                bad[victim % n][bit / 8] ^= 1 << (bit % 8);
                prop_assert!(!t.verify_batch(&ids, &bad, &root));
                prop_assert!(t.verify_batch(&ids, &macs, &root));
            }

            /// Interleaved updates bump the epoch: cached verification
            /// stays correct — current (index, mac, root) triples verify,
            /// every pre-update root is rejected even with a warm cache.
            #[test]
            fn cached_verification_invariant_under_interleaved_updates(
                mut macs in proptest::collection::vec(any::<[u8; 32]>(), 2..30),
                arity in 2usize..5,
                steps in proptest::collection::vec((any::<usize>(), any::<[u8; 32]>(), any::<bool>()), 1..15),
            ) {
                let n = macs.len();
                let mut t = MerkleTree::rebuild_from_macs([5; 32], arity, &macs);
                t.set_cache_enabled(true);
                let mut stale_roots = Vec::new();
                for (raw, m, batch) in steps {
                    let root = t.root().unwrap();
                    let ids: Vec<u64> = (0..n as u64).collect();
                    // Warm the cache against the current root.
                    if batch {
                        prop_assert!(t.verify_batch(&ids, &macs, &root));
                    } else {
                        for (i, mm) in macs.iter().enumerate() {
                            prop_assert!(t.verify(i as u64, mm, &root));
                        }
                    }
                    stale_roots.push(root);
                    let i = raw % n;
                    macs[i] = m;
                    t.update(i as u64, &m);
                    prop_assert_eq!(t.cached_nodes(), 0, "epoch bump cleared the cache");
                    let new_root = t.root().unwrap();
                    // Forced re-verify against the new root succeeds…
                    for (j, mm) in macs.iter().enumerate() {
                        prop_assert!(t.verify(j as u64, mm, &new_root));
                    }
                    // …and every historical root is rejected, warm cache
                    // notwithstanding.
                    for old in &stale_roots {
                        if old != &new_root {
                            prop_assert!(!t.verify(0, &macs[0], old));
                            prop_assert!(!t.verify_batch(&ids, &macs, old));
                        }
                    }
                }
            }
        }
    }
}
