//! SGX data sealing: authenticated encryption bound to the platform root
//! secret and the enclave measurement.
//!
//! Layout mirrors the SDK's `sgx_seal_data`: a random IV, AES-CTR
//! ciphertext and an HMAC over `IV ‖ ciphertext` with a key derived from
//! `(platform root, MRENCLAVE)` — so neither other code on the same CPU nor
//! the same code on another CPU can unseal.

use crate::{Result, TeeError};
use ironsafe_crypto::aes::Aes128;
use ironsafe_crypto::hkdf;
use ironsafe_crypto::hmac::hmac_sha256_concat;
use ironsafe_crypto::modes::ctr_xor;

/// A sealed ciphertext blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Random CTR nonce.
    pub iv: [u8; 16],
    /// AES-128-CTR ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over `iv ‖ ciphertext`.
    pub mac: [u8; 32],
}

/// Derive the seal key for `(platform root secret, measurement)`.
pub fn derive_seal_key(root_secret: &[u8; 32], measurement: &[u8; 32]) -> [u8; 32] {
    let mut info = b"sgx-seal-key".to_vec();
    info.extend_from_slice(measurement);
    hkdf::derive_key_256(root_secret, &info)
}

/// Seal `data` under `seal_key`.
pub fn seal(seal_key: &[u8; 32], data: &[u8], rng: &mut (impl rand::Rng + ?Sized)) -> SealedBlob {
    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);
    let enc_key: [u8; 16] = seal_key[..16].try_into().expect("seal key is 32 bytes");
    let mac_key = &seal_key[16..];
    let aes = Aes128::new(&enc_key);
    let mut ciphertext = data.to_vec();
    ctr_xor(&aes, &iv, &mut ciphertext);
    let mac = hmac_sha256_concat(mac_key, &[&iv, &ciphertext]);
    SealedBlob { iv, ciphertext, mac }
}

/// Unseal and authenticate a [`SealedBlob`].
pub fn unseal(seal_key: &[u8; 32], blob: &SealedBlob) -> Result<Vec<u8>> {
    let enc_key: [u8; 16] = seal_key[..16].try_into().expect("seal key is 32 bytes");
    let mac_key = &seal_key[16..];
    let expect = hmac_sha256_concat(mac_key, &[&blob.iv, &blob.ciphertext]);
    if !ironsafe_crypto::ct_eq(&expect, &blob.mac) {
        return Err(TeeError::UnsealFailed);
    }
    let aes = Aes128::new(&enc_key);
    let mut plain = blob.ciphertext.clone();
    ctr_xor(&aes, &blob.iv, &mut plain);
    Ok(plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let key = derive_seal_key(&[1; 32], &[2; 32]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let blob = seal(&key, b"hello", &mut rng);
        assert_eq!(unseal(&key, &blob).unwrap(), b"hello");
    }

    #[test]
    fn tampering_detected() {
        let key = derive_seal_key(&[1; 32], &[2; 32]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut blob = seal(&key, b"hello", &mut rng);
        blob.ciphertext[0] ^= 1;
        assert_eq!(unseal(&key, &blob), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn iv_tampering_detected() {
        let key = derive_seal_key(&[1; 32], &[2; 32]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut blob = seal(&key, b"hello", &mut rng);
        blob.iv[0] ^= 1;
        assert_eq!(unseal(&key, &blob), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn seal_keys_differ_per_measurement_and_platform() {
        assert_ne!(derive_seal_key(&[1; 32], &[2; 32]), derive_seal_key(&[1; 32], &[3; 32]));
        assert_ne!(derive_seal_key(&[1; 32], &[2; 32]), derive_seal_key(&[9; 32], &[2; 32]));
    }

    #[test]
    fn sealing_twice_uses_fresh_ivs() {
        let key = derive_seal_key(&[1; 32], &[2; 32]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = seal(&key, b"x", &mut rng);
        let b = seal(&key, b"x", &mut rng);
        assert_ne!(a.iv, b.iv);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let key = derive_seal_key(&[0; 32], &[0; 32]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let blob = seal(&key, b"", &mut rng);
        assert_eq!(unseal(&key, &blob).unwrap(), b"");
    }
}
