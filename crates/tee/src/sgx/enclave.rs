//! Enclave lifecycle and the SGX platform.
//!
//! An [`SgxPlatform`] stands in for one SGX-capable CPU: it owns the fused
//! root secret (from which sealing and quote-signing keys derive) and
//! creates [`Enclave`]s. An enclave records its launch-time
//! [`Measurement`], owns an [`EpcSimulator`] slice, and counts the
//! ECALL/OCALL transitions that the CSA cost model charges for.

use crate::image::{Measurement, SoftwareImage};
use crate::sgx::epc::EpcSimulator;
use crate::sgx::seal::{self, SealedBlob};
use crate::{Result, TeeError};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_faults::{FaultPlan, FaultSite};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Enclave creation parameters.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// EPC bytes available to this enclave (paper setup: 96 MiB usable).
    pub epc_limit_bytes: usize,
    /// Maximum heap the shielded runtime may address (SCONE: 4 GiB).
    pub heap_limit_bytes: usize,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            epc_limit_bytes: 96 * 1024 * 1024,
            heap_limit_bytes: 4 * 1024 * 1024 * 1024,
        }
    }
}

/// Transition and paging counters exposed for the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnclaveCounters {
    /// Number of enclave entries (ECALLs).
    pub ecalls: u64,
    /// Number of enclave exits (OCALLs).
    pub ocalls: u64,
    /// EPC page faults.
    pub epc_faults: u64,
    /// EPC hits.
    pub epc_hits: u64,
}

/// One SGX-capable machine.
///
/// The platform secret plays the role of the fused keys: the sealing key,
/// the quote-signing key and the platform identity all derive from it.
pub struct SgxPlatform {
    /// Stable platform identifier (like a PPID).
    pub platform_id: [u8; 16],
    root_secret: [u8; 32],
    group: Group,
    quote_keys: KeyPair,
}

impl std::fmt::Debug for SgxPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SgxPlatform({:02x?})", &self.platform_id[..4])
    }
}

impl SgxPlatform {
    /// Manufacture a platform from a seed (deterministic for tests).
    pub fn from_seed(group: &Group, seed: &[u8]) -> Self {
        let root = ironsafe_crypto::hkdf::derive_key_256(seed, b"sgx-root-secret");
        let mut platform_id = [0u8; 16];
        platform_id.copy_from_slice(&ironsafe_crypto::hkdf::derive_key_128(seed, b"sgx-platform-id"));
        let quote_keys = KeyPair::derive(group, &root, b"sgx-quote-key");
        SgxPlatform { platform_id, root_secret: root, group: group.clone(), quote_keys }
    }

    /// The Schnorr group this platform signs in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The platform's quote-signing keypair (the EPID/DCAP stand-in).
    pub fn quote_keys(&self) -> &KeyPair {
        &self.quote_keys
    }

    /// Build and initialize an enclave from `image`, measuring it.
    pub fn create_enclave(&self, image: &SoftwareImage, config: EnclaveConfig) -> Enclave {
        self.create_enclave_with_faults(image, config, FaultPlan::none())
    }

    /// [`SgxPlatform::create_enclave`] with a fault plan wired into the
    /// enclave's entry path (`tee.enclave.crash`, `tee.epc.abort`).
    pub fn create_enclave_with_faults(
        &self,
        image: &SoftwareImage,
        config: EnclaveConfig,
        fault_plan: FaultPlan,
    ) -> Enclave {
        Enclave {
            measurement: image.measure(),
            image_name: image.name.clone(),
            image_version: image.version,
            config: config.clone(),
            epc: Mutex::new(EpcSimulator::new(config.epc_limit_bytes)),
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            transitions: ironsafe_obs::Counter::new(),
            seal_key: seal::derive_seal_key(&self.root_secret, image.measure().as_bytes()),
            destroyed: AtomicU64::new(0),
            fault_plan,
        }
    }
}

/// A running enclave.
pub struct Enclave {
    measurement: Measurement,
    image_name: String,
    image_version: u32,
    config: EnclaveConfig,
    epc: Mutex<EpcSimulator>,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    transitions: ironsafe_obs::Counter,
    seal_key: [u8; 32],
    destroyed: AtomicU64,
    fault_plan: FaultPlan,
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Enclave({} v{}, {:?})", self.image_name, self.image_version, self.measurement)
    }
}

impl Enclave {
    /// The launch measurement (MRENCLAVE).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Name of the loaded image.
    pub fn image_name(&self) -> &str {
        &self.image_name
    }

    /// Version of the loaded image.
    pub fn image_version(&self) -> u32 {
        self.image_version
    }

    /// Creation config.
    pub fn config(&self) -> &EnclaveConfig {
        &self.config
    }

    fn check_alive(&self) -> Result<()> {
        if self.destroyed.load(Ordering::Relaxed) != 0 {
            Err(TeeError::InvalidState("enclave destroyed"))
        } else {
            Ok(())
        }
    }

    /// Record an enclave entry (ECALL).
    ///
    /// Under an active fault plan an entry can crash the enclave
    /// (`tee.enclave.crash` — the enclave is destroyed and must be
    /// rebuilt, e.g. by an
    /// [`EnclaveSupervisor`](crate::sgx::EnclaveSupervisor)) or abort
    /// transiently under EPC pressure (`tee.epc.abort`).
    pub fn enter(&self) -> Result<()> {
        self.check_alive()?;
        if self.fault_plan.should_fire(FaultSite::EnclaveCrash) {
            self.destroy();
            return Err(TeeError::InvalidState("enclave crashed (injected fault)"));
        }
        if self.fault_plan.should_fire(FaultSite::EpcAbort) {
            return Err(TeeError::EpcPressure("entry aborted (injected fault)"));
        }
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.transitions.inc();
        Ok(())
    }

    /// Record an enclave exit (OCALL).
    pub fn exit(&self) -> Result<()> {
        self.check_alive()?;
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.transitions.inc();
        Ok(())
    }

    /// Attach the enclave's telemetry counters to `registry`:
    /// `tee.enclave.transition` (ECALLs + OCALLs) and the EPC's
    /// `tee.epc.*` cells.
    pub fn register_metrics(&self, registry: &ironsafe_obs::Registry) {
        registry.register_counter("tee.enclave.transition", &self.transitions);
        self.epc.lock().register_metrics(registry);
    }

    /// Touch one abstract page of enclave memory; true on EPC fault.
    pub fn touch_page(&self, page: u64) -> bool {
        self.epc.lock().access(page)
    }

    /// Touch a run of pages; returns faults.
    pub fn touch_pages(&self, first: u64, count: u64) -> u64 {
        self.epc.lock().access_range(first, count)
    }

    /// Snapshot counters.
    pub fn counters(&self) -> EnclaveCounters {
        let epc = self.epc.lock();
        EnclaveCounters {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            epc_faults: epc.faults(),
            epc_hits: epc.hits(),
        }
    }

    /// Zero all counters (e.g. between benchmark runs).
    pub fn reset_counters(&self) {
        self.ecalls.store(0, Ordering::Relaxed);
        self.ocalls.store(0, Ordering::Relaxed);
        self.epc.lock().reset_counters();
    }

    /// Seal `data` so only an enclave with this measurement on this
    /// platform can recover it.
    pub fn seal(&self, data: &[u8], rng: &mut (impl rand::Rng + ?Sized)) -> SealedBlob {
        seal::seal(&self.seal_key, data, rng)
    }

    /// Unseal a blob sealed by [`Enclave::seal`].
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>> {
        seal::unseal(&self.seal_key, blob)
    }

    /// Tear down the enclave: wipes EPC residency and refuses further entry.
    pub fn destroy(&self) {
        self.destroyed.store(1, Ordering::Relaxed);
        self.epc.lock().clear();
    }
}

/// Shared handle to an enclave.
pub type EnclaveRef = Arc<Enclave>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn platform() -> SgxPlatform {
        SgxPlatform::from_seed(&Group::modp_1024(), b"host-0")
    }

    fn image() -> SoftwareImage {
        SoftwareImage::new("host-engine", 1, b"engine code".to_vec())
    }

    #[test]
    fn enclave_measurement_matches_image() {
        let e = platform().create_enclave(&image(), EnclaveConfig::default());
        assert_eq!(e.measurement(), image().measure());
    }

    #[test]
    fn transitions_are_counted() {
        let e = platform().create_enclave(&image(), EnclaveConfig::default());
        e.enter().unwrap();
        e.enter().unwrap();
        e.exit().unwrap();
        let c = e.counters();
        assert_eq!((c.ecalls, c.ocalls), (2, 1));
    }

    #[test]
    fn epc_faults_tracked_through_enclave() {
        let cfg = EnclaveConfig { epc_limit_bytes: 2 * 4096, heap_limit_bytes: 1 << 20 };
        let e = platform().create_enclave(&image(), cfg);
        assert_eq!(e.touch_pages(0, 3), 3);
        assert_eq!(e.touch_pages(0, 1), 1, "page 0 was evicted by LRU scan");
        assert_eq!(e.counters().epc_faults, 4);
    }

    #[test]
    fn seal_roundtrip_same_enclave() {
        let p = platform();
        let e = p.create_enclave(&image(), EnclaveConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let blob = e.seal(b"database master key", &mut rng);
        assert_eq!(e.unseal(&blob).unwrap(), b"database master key");
    }

    #[test]
    fn seal_is_bound_to_measurement_and_platform() {
        let p = platform();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let e1 = p.create_enclave(&image(), EnclaveConfig::default());
        let blob = e1.seal(b"secret", &mut rng);

        // Different code: unseal must fail.
        let other_image = SoftwareImage::new("host-engine", 2, b"patched".to_vec());
        let e2 = p.create_enclave(&other_image, EnclaveConfig::default());
        assert_eq!(e2.unseal(&blob), Err(TeeError::UnsealFailed));

        // Same code, different platform: unseal must fail.
        let p2 = SgxPlatform::from_seed(&Group::modp_1024(), b"host-1");
        let e3 = p2.create_enclave(&image(), EnclaveConfig::default());
        assert_eq!(e3.unseal(&blob), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn destroyed_enclave_refuses_entry() {
        let e = platform().create_enclave(&image(), EnclaveConfig::default());
        e.destroy();
        assert!(e.enter().is_err());
        assert!(e.exit().is_err());
    }

    #[test]
    fn platform_identity_is_stable() {
        let a = SgxPlatform::from_seed(&Group::modp_1024(), b"host-0");
        let b = SgxPlatform::from_seed(&Group::modp_1024(), b"host-0");
        assert_eq!(a.platform_id, b.platform_id);
        assert_eq!(a.quote_keys().public, b.quote_keys().public);
    }
}
