//! Chaos harness: sweep seeded fault plans across rates and assert the
//! system degrades gracefully — every query either returns rows
//! bit-identical to the fault-free run (the fault was absorbed by a
//! retry/restart) or a clean typed error. Never a panic, never silently
//! wrong rows.
//!
//! The sweep reuses one loaded system and swaps the fault plan between
//! combos: `FaultPlan` state (arrival counters, metrics) lives in the
//! plan, not the system, so each combo starts fresh.

use ironsafe::csa::cost::CostParams;
use ironsafe::csa::{CsaSystem, SystemConfig};
use ironsafe::deploy::{Client, Deployment};
use ironsafe::tpch::queries::{paper_queries, PaperQuery};
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_sql::Row;

const SEEDS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
const RATES: [f64; 5] = [0.0005, 0.002, 0.01, 0.05, 0.2];

fn query(id: u8) -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == id).unwrap()
}

/// A plan firing on every injectable surface a read-only split query
/// crosses: device, page integrity, freshness, and the secure channel.
fn storm_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_rate(FaultSite::DeviceRead, rate)
        .with_rate(FaultSite::PageBitFlip, rate)
        .with_rate(FaultSite::PageMacCorrupt, rate)
        .with_rate(FaultSite::FreshnessStale, rate)
        .with_rate(FaultSite::ChannelDrop, rate)
        .with_rate(FaultSite::ChannelCorrupt, rate)
        .with_rate(FaultSite::ChannelReorder, rate)
}

#[test]
fn fault_storm_sweep_yields_identical_rows_or_typed_errors() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let queries = [query(1), query(6)];
    let baselines: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| sys.run_query(q).expect("fault-free run").result.rows().to_vec())
        .collect();

    let mut combos = 0u32;
    let mut clean_runs = 0u32;
    let mut typed_errors = 0u32;
    for seed in SEEDS {
        for rate in RATES {
            combos += 1;
            let plan = storm_plan(seed, rate);
            sys.set_fault_plan(plan.clone());
            for (q, baseline) in queries.iter().zip(&baselines) {
                // A panic anywhere in here fails the test: graceful
                // degradation means every outcome is one of these two.
                match sys.run_query(q) {
                    Ok(report) => {
                        assert_eq!(
                            report.result.rows(),
                            &baseline[..],
                            "seed {seed} rate {rate}: recovered run must be bit-identical"
                        );
                        clean_runs += 1;
                    }
                    Err(e) => {
                        // Typed, displayable, and classified.
                        use ironsafe_faults::Transient;
                        let _ = e.is_transient();
                        assert!(!e.to_string().is_empty());
                        typed_errors += 1;
                    }
                }
            }
        }
    }
    assert_eq!(combos, 50, "acceptance floor: at least 50 seed x rate combos");
    // Low rates must mostly be absorbed; high rates must actually bite —
    // otherwise the storm is not exercising the recovery paths at all.
    assert!(clean_runs > 0, "some runs must recover to identical rows");
    assert!(typed_errors > 0, "some runs must surface typed errors");

    // The system itself is undamaged: clear the plan and re-verify.
    sys.set_fault_plan(FaultPlan::none());
    for (q, baseline) in queries.iter().zip(&baselines) {
        let report = sys.run_query(q).expect("post-storm fault-free run");
        assert_eq!(report.result.rows(), &baseline[..]);
    }
}

#[test]
fn storms_are_reproducible_for_a_given_seed() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let q = query(6);

    let mut outcomes = Vec::new();
    for round in 0..2 {
        let _ = round;
        let plan = storm_plan(3, 0.05);
        sys.set_fault_plan(plan.clone());
        let outcome = match sys.run_query(&q) {
            Ok(r) => Ok(r.result.rows().to_vec()),
            Err(e) => Err(e.to_string()),
        };
        let m = plan.metrics();
        outcomes.push((outcome, m.injected.get(), m.retried.get(), m.recovered.get()));
    }
    assert_eq!(outcomes[0], outcomes[1], "same seed, same plan: same faults, same outcome");
}

/// The freshness fast path is not a chaos hole: storms hitting a system
/// whose verified-node cache is already warm (and, in a second sweep, an
/// undersized cache in constant eviction churn) still degrade exactly as
/// the cold system does — identical rows or a typed error, and a clean
/// fault-free run afterwards.
#[test]
fn warm_cache_storms_still_detect_and_recover() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let queries = [query(1), query(6)];
    let baselines: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| sys.run_query(q).expect("fault-free run").result.rows().to_vec())
        .collect();
    // Re-run clean: the second pass rides the warm cache bit-identically.
    for (q, baseline) in queries.iter().zip(&baselines) {
        let again = sys.run_query(q).expect("warm fault-free run");
        assert_eq!(again.result.rows(), &baseline[..], "warm rerun is bit-identical");
    }

    let sweep = |sys: &mut CsaSystem, label: &str| {
        let mut typed_errors = 0u32;
        let mut clean_runs = 0u32;
        for seed in SEEDS {
            for rate in [0.0005, 0.05] {
                sys.set_fault_plan(storm_plan(seed, rate));
                for (q, baseline) in queries.iter().zip(&baselines) {
                    match sys.run_query(q) {
                        Ok(report) => {
                            assert_eq!(
                                report.result.rows(),
                                &baseline[..],
                                "{label}: seed {seed} rate {rate}: recovered run identical"
                            );
                            clean_runs += 1;
                        }
                        Err(e) => {
                            use ironsafe_faults::Transient;
                            let _ = e.is_transient();
                            assert!(!e.to_string().is_empty());
                            typed_errors += 1;
                        }
                    }
                }
            }
        }
        assert!(clean_runs > 0, "{label}: some storms must be absorbed");
        assert!(typed_errors > 0, "{label}: corruption/staleness must still be detected");
        // The system is undamaged: a clean run still matches.
        sys.set_fault_plan(FaultPlan::none());
        for (q, baseline) in queries.iter().zip(&baselines) {
            let report = sys.run_query(q).expect("post-storm fault-free run");
            assert_eq!(report.result.rows(), &baseline[..]);
        }
    };
    sweep(&mut sys, "warm cache");

    // Undersized cache: wholesale eviction fires constantly mid-scan.
    sys.storage_db().pager().lock().set_merkle_cache_capacity(8);
    sweep(&mut sys, "evicting cache");
}

#[test]
fn device_read_fault_recovers_with_visible_metrics() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let baseline = sys.run_query(&query(6)).unwrap().result.rows().to_vec();

    let plan = FaultPlan::seeded(1)
        .with_nth(FaultSite::DeviceRead, 2)
        .with_nth(FaultSite::DeviceRead, 9);
    sys.set_fault_plan(plan.clone());
    let report = sys.run_query(&query(6)).expect("both transient faults are absorbed");
    assert_eq!(report.result.rows(), &baseline[..]);
    assert_eq!(plan.metrics().injected.get(), 2);
    assert!(plan.metrics().recovered.get() >= 1);
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

#[test]
fn channel_drop_fault_recovers_with_visible_metrics() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let baseline = sys.run_query(&query(6)).unwrap().result.rows().to_vec();

    // Q6 offloads its filtered rows through the secure channel; drop the
    // first record in transit and let the retransmit carry it through.
    let plan = FaultPlan::seeded(1).with_nth(FaultSite::ChannelDrop, 1);
    sys.set_fault_plan(plan.clone());
    let report = sys.run_query(&query(6)).expect("dropped record is retransmitted");
    assert_eq!(report.result.rows(), &baseline[..]);
    assert!(plan.metrics().injected.get() >= 1);
    assert!(plan.metrics().recovered.get() >= 1);
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

#[test]
fn enclave_crash_and_rpmb_failures_recover_end_to_end() {
    // Whole-deployment plan: the second enclave entry crashes (restart +
    // sealed-state reload) and the first RPMB write is refused busy
    // (retried with a recomputed counter).
    let plan = FaultPlan::seeded(23)
        .with_nth(FaultSite::EnclaveCrash, 2)
        .with_nth(FaultSite::RpmbWrite, 1);
    let mut dep = Deployment::builder().fault_plan(plan.clone()).build().unwrap();
    dep.create_database("db", "read :- sessionKeyIs(alice)\nwrite :- sessionKeyIs(alice)");
    let alice = Client::new("alice");
    dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
    dep.submit(&alice, "db", "INSERT INTO t VALUES (7), (8), (9)", "").unwrap();
    let resp = dep.submit(&alice, "db", "SELECT a FROM t ORDER BY a", "").unwrap();
    assert_eq!(resp.result.rows().len(), 3);
    assert!(resp.verify_proof(&dep));
    assert!(dep.supervisor().restarts() >= 1, "crash forced an enclave restart");
    assert!(plan.metrics().injected.get() >= 2, "both scheduled faults fired");
    assert!(plan.metrics().recovered.get() >= 2, "both were recovered");
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

#[test]
fn persistent_faults_exhaust_cleanly_into_typed_errors() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let plan = FaultPlan::seeded(9).with_rate(FaultSite::DeviceRead, 1.0);
    sys.set_fault_plan(plan.clone());
    let err = sys.run_query(&query(6)).expect_err("every attempt fails");
    assert!(err.to_string().contains("device I/O"), "typed device error, got {err}");
    assert!(plan.metrics().exhausted.get() >= 1, "the retry budget was spent and reported");
}
