//! The mixed read/write `paperbench saturation` harness, exported as
//! the `BENCH_9.json` snapshot.
//!
//! Two sections. `"invariants"` holds only engine-pinned quantities:
//! one cell per writer burst with the snapshot read's result digest and
//! simulated cost — asserted bit-identical to the quiesced run at the
//! pinned epoch while the writer commits — plus the fresh reader's
//! digest tracking the committed state, and a group-commit amortization
//! block (same transaction stream at group size 1 vs 4: WAL appends and
//! RPMB binds divide by the group size; that is the write-amplification
//! dividend). It is byte-deterministic, so `--check` regenerates it and
//! compares byte for byte against the committed file (the write-path
//! regression gate). `"wallclock"` holds measured read-latency
//! percentiles under a concurrent writer stream; wall-clock numbers
//! vary run to run and are exempt from the gate.

use crate::figures::SEED;
use ironsafe_csa::{CostParams, CsaSystem, SharedCsaSystem, SystemConfig};
use ironsafe_obs::Registry;
use ironsafe_sql::parser::parse_statement;
use ironsafe_tpch::generate;
use std::time::Instant;

/// Default scale factor for the deterministic invariants sweep.
pub const WRITES_SF: f64 = 0.002;

/// Writer-burst sizes (committed transactions between snapshot reads).
pub const WRITE_BURSTS: [usize; 4] = [1, 2, 4, 8];

/// One writer-burst cell of the deterministic sweep.
#[derive(Debug, Clone)]
pub struct MixedCell {
    /// Transactions the writer committed while the read view was pinned.
    pub writer_txns: usize,
    /// Committed epoch after the burst.
    pub epoch: u64,
    /// Digest of the pinned snapshot read — asserted identical to the
    /// quiesced read at the pin epoch.
    pub read_digest: String,
    /// Simulated cost of the snapshot read — asserted identical to the
    /// quiesced run (retained pre-images charge their first-read cost).
    pub read_total_ns: f64,
    /// Digest of a fresh read after the burst (tracks committed state).
    pub fresh_digest: String,
}

/// Group-commit amortization: the same transaction stream journaled at
/// group size 1 vs 4.
#[derive(Debug, Clone)]
pub struct Amortization {
    /// Transactions in the stream.
    pub txns: u64,
    /// WAL commit records at group size 1 (= txns).
    pub appends_g1: u64,
    /// WAL commit records at group size 4.
    pub appends_g4: u64,
    /// WAL bytes at group size 1.
    pub bytes_g1: u64,
    /// WAL bytes at group size 4.
    pub bytes_g4: u64,
    /// RPMB binds at group size 1.
    pub rpmb_g1: u64,
    /// RPMB binds at group size 4.
    pub rpmb_g4: u64,
}

/// Measured read latency under one concurrent writer stream.
#[derive(Debug, Clone)]
pub struct MixedWallclock {
    /// Update transactions the writer thread committed during the window.
    pub writer_txns: usize,
    /// Reads timed across the reader threads.
    pub reads: usize,
    /// Median read latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile read latency, milliseconds.
    pub p95_ms: f64,
}

fn digest(result: &ironsafe_sql::QueryResult) -> String {
    let rendered = format!("{result:?}");
    let hash = ironsafe_crypto::sha256::sha256(rendered.as_bytes());
    hash[..8].iter().map(|b| format!("{b:02x}")).collect()
}

fn shared_system(sf: f64) -> SharedCsaSystem {
    let data = generate(sf, SEED);
    SharedCsaSystem::new(
        CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
            .expect("system builds"),
    )
}

const KEY: [u8; 32] = [0x9au8; 32];

/// The read whose answer changes with every committed update — a
/// snapshot that leaked a writer's progress would change digest.
fn read_stmt() -> ironsafe_sql::ast::Statement {
    parse_statement("SELECT n_regionkey FROM nation ORDER BY n_nationkey").expect("valid select")
}

/// The k-th writer transaction: a non-allocating in-place update.
fn update_stmt(k: usize) -> ironsafe_sql::ast::Statement {
    parse_statement(&format!(
        "UPDATE nation SET n_regionkey = {} WHERE n_nationkey = {}",
        (k * 7 + 3) % 5,
        k % 25
    ))
    .expect("valid update")
}

/// The deterministic sweep: for each burst size, pin a snapshot view,
/// commit the burst through the group-commit WAL, and assert the pinned
/// read reproduces the quiesced pre-burst run bit for bit — rows *and*
/// simulated `CostBreakdown` — while a fresh read tracks the committed
/// state. Then journal the same transaction stream at group size 1 and
/// 4 and record the WAL/RPMB amortization.
pub fn mixed_sweep(sf: f64, bursts: &[usize]) -> (Vec<MixedCell>, Amortization) {
    let shared = shared_system(sf);
    shared.set_group_size(1);
    shared.attach_wal(0xB9).expect("secure base journals");
    let sel = read_stmt();

    let mut cells = Vec::new();
    let mut k = 0usize;
    for &burst in bursts {
        // Quiesced baseline at the epoch about to be pinned.
        let (pre, _) = shared.run_statement(&sel, KEY).expect("quiesced read");
        let mut pinned = shared.pin_read_view().expect("pin");
        pinned.set_session_key(KEY);

        for _ in 0..burst {
            shared.run_statement(&update_stmt(k), KEY).expect("writer commit");
            k += 1;
        }

        let snap = pinned.run_statement(&sel).expect("pinned read");
        assert_eq!(
            digest(&snap.result),
            digest(&pre.result),
            "burst {burst}: snapshot rows drifted from the quiesced run"
        );
        assert_eq!(
            snap.breakdown, pre.breakdown,
            "burst {burst}: snapshot costs drifted from the quiesced run"
        );
        let (fresh, _) = shared.run_statement(&sel, KEY).expect("fresh read");
        cells.push(MixedCell {
            writer_txns: burst,
            epoch: shared.committed_epoch(),
            read_digest: digest(&snap.result),
            read_total_ns: snap.breakdown.total_ns(),
            fresh_digest: digest(&fresh.result),
        });
    }

    (cells, amortization(sf, k as u64))
}

/// Journal `txns` identical update transactions at group size 1 and 4;
/// the commit-record and RPMB-bind counts divide by the group size.
fn amortization(sf: f64, txns: u64) -> Amortization {
    let run = |group_size: usize| -> (u64, u64, u64) {
        let shared = shared_system(sf);
        shared.set_group_size(group_size);
        shared.attach_wal(0xA9).expect("secure base journals");
        let registry = Registry::new();
        shared.register_wal_metrics(&registry);
        let rpmb_before = shared.with_system(|s| s.storage_db().pager_stats().rpmb_ops);
        let before = registry.snapshot();
        for k in 0..txns as usize {
            shared.run_statement(&update_stmt(k), KEY).expect("writer commit");
        }
        shared.flush().expect("drain the tail group");
        let after = registry.snapshot();
        let rpmb_after = shared.with_system(|s| s.storage_db().pager_stats().rpmb_ops);
        let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
        (delta("wal.append"), delta("wal.append.bytes"), rpmb_after - rpmb_before)
    };
    let (appends_g1, bytes_g1, rpmb_g1) = run(1);
    let (appends_g4, bytes_g4, rpmb_g4) = run(4);
    assert!(
        appends_g4 < appends_g1 && rpmb_g4 < rpmb_g1,
        "group commit must amortize WAL appends and RPMB binds"
    );
    Amortization { txns, appends_g1, appends_g4, bytes_g1, bytes_g4, rpmb_g1, rpmb_g4 }
}

/// Measure read latency percentiles while a writer thread commits a
/// stream of updates: the non-blocking contract says the percentiles
/// stay flat (within noise) as the write load rises.
pub fn mixed_wallclock(sf: f64, writer_loads: &[usize]) -> Vec<MixedWallclock> {
    let shared = std::sync::Arc::new({
        let s = shared_system(sf);
        s.set_group_size(4);
        s.attach_wal(0xC9).expect("secure base journals");
        s
    });
    let sel = read_stmt();
    let reads_per_thread = 40usize;
    let reader_threads = 2usize;

    let mut out = Vec::new();
    for &load in writer_loads {
        let mut latencies_ms: Vec<f64> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let writer = {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move |_| {
                    for k in 0..load {
                        shared.run_statement(&update_stmt(k), KEY).expect("writer commit");
                    }
                })
            };
            let mut readers = Vec::new();
            for _ in 0..reader_threads {
                let shared = std::sync::Arc::clone(&shared);
                let sel = sel.clone();
                readers.push(scope.spawn(move |_| {
                    let mut lat = Vec::with_capacity(reads_per_thread);
                    for _ in 0..reads_per_thread {
                        let t = Instant::now();
                        shared.run_statement(&sel, KEY).expect("read never blocks");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    lat
                }));
            }
            writer.join().expect("writer thread");
            for r in readers {
                latencies_ms.extend(r.join().expect("reader thread"));
            }
        })
        .expect("scope");
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| latencies_ms[(p * (latencies_ms.len() - 1) as f64).round() as usize];
        out.push(MixedWallclock {
            writer_txns: load,
            reads: latencies_ms.len(),
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
        });
    }
    out
}

/// The byte-deterministic `"invariants"` JSON block (also embedded
/// verbatim in [`writes_json`]) — what the `--check` gate compares.
pub fn writes_invariants_json(sf: f64, cells: &[MixedCell], amort: &Amortization) -> String {
    let mut s = String::from("  \"invariants\": {\n");
    s.push_str(&format!("    \"sf\": {sf},\n    \"seed\": {SEED},\n    \"cells\": [\n"));
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"writer_txns\":{},\"epoch\":{},\"read_digest\":\"{}\",\
             \"read_total_ns\":{},\"fresh_digest\":\"{}\"}}{}\n",
            c.writer_txns,
            c.epoch,
            c.read_digest,
            c.read_total_ns,
            c.fresh_digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"amortization\": {{\"txns\":{},\"appends_g1\":{},\"appends_g4\":{},\
         \"bytes_g1\":{},\"bytes_g4\":{},\"rpmb_g1\":{},\"rpmb_g4\":{}}}\n",
        amort.txns,
        amort.appends_g1,
        amort.appends_g4,
        amort.bytes_g1,
        amort.bytes_g4,
        amort.rpmb_g1,
        amort.rpmb_g4
    ));
    s.push_str("  }");
    s
}

/// The full `BENCH_9.json` snapshot: the deterministic invariants block
/// plus the (run-dependent) wall-clock section.
pub fn writes_json(
    sf: f64,
    cells: &[MixedCell],
    amort: &Amortization,
    wallclock: &[MixedWallclock],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&writes_invariants_json(sf, cells, amort));
    s.push_str(",\n  \"wallclock\": [\n");
    for (i, w) in wallclock.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"writer_txns\":{},\"reads\":{},\"p50_ms\":{:.3},\"p95_ms\":{:.3}}}{}\n",
            w.writer_txns,
            w.reads,
            w.p50_ms,
            w.p95_ms,
            if i + 1 == wallclock.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn invariants_block_is_deterministic_and_gate_compatible() {
        let (cells_a, amort_a) = mixed_sweep(WRITES_SF, &[1, 2]);
        let (cells_b, amort_b) = mixed_sweep(WRITES_SF, &[1, 2]);
        let a = writes_invariants_json(WRITES_SF, &cells_a, &amort_a);
        let b = writes_invariants_json(WRITES_SF, &cells_b, &amort_b);
        assert_eq!(a, b, "invariants block must be byte-deterministic");

        // Group commit divides the per-transaction WAL/RPMB cost.
        assert_eq!(amort_a.appends_g1, amort_a.txns);
        assert!(amort_a.appends_g4 <= amort_a.txns / 4 + 1);
        assert!(amort_a.rpmb_g4 < amort_a.rpmb_g1);
        assert!(amort_a.bytes_g4 < amort_a.bytes_g1, "fewer records, less frame overhead");

        let wall = vec![MixedWallclock { writer_txns: 8, reads: 80, p50_ms: 1.0, p95_ms: 2.0 }];
        let full = writes_json(WRITES_SF, &cells_a, &amort_a, &wall);
        assert!(looks_like_valid_json(&full), "{full}");
        assert!(full.contains(&a), "snapshot must embed the invariants block verbatim");
    }
}
