//! HKDF-SHA256 (RFC 5869).
//!
//! IronSafe derives every working key from a small number of roots:
//! the TrustZone hardware-unique key (HUK) yields the RPMB authentication
//! key and the TA storage key (TASK); attestation session secrets yield
//! channel keys. HKDF's extract-then-expand structure keeps those
//! derivations domain-separated via the `info` parameter.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: compress input keying material into a pseudorandom key.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: stretch a pseudorandom key to `len` bytes (len ≤ 255*32).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = crate::hmac::HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        t = block.to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// One-shot HKDF: extract with `salt`, expand with `info` to `len` bytes.
pub fn hkdf_sha256(ikm: &[u8], salt: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

/// Derive a fixed 16-byte (AES-128) key.
pub fn derive_key_128(ikm: &[u8], info: &[u8]) -> [u8; 16] {
    let mut k = [0u8; 16];
    k.copy_from_slice(&hkdf_sha256(ikm, b"ironsafe-hkdf-salt", info, 16));
    k
}

/// Derive a fixed 32-byte (MAC / AES-256-class) key.
pub fn derive_key_256(ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 32];
    k.copy_from_slice(&hkdf_sha256(ikm, b"ironsafe-hkdf-salt", info, 32));
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf_sha256(&ikm, &salt, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf_sha256(&ikm, &[], &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn info_separates_domains() {
        assert_ne!(derive_key_128(b"root", b"rpmb"), derive_key_128(b"root", b"task"));
        assert_ne!(derive_key_256(b"root", b"a"), derive_key_256(b"root", b"b"));
    }

    #[test]
    fn expand_is_prefix_consistent() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let long = hkdf_expand(&prk, b"info", 100);
        let short = hkdf_expand(&prk, b"info", 40);
        assert_eq!(&long[..40], &short[..]);
    }
}
