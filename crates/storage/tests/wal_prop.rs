//! Property tests for the write-ahead log: replay is deterministic, and
//! at *any* byte-truncation point recovery either reproduces exactly the
//! state at a committed record boundary or fails with a typed error —
//! never a panic, never a half-applied transaction.

use ironsafe_storage::wal::{Checkpoint, CommitRecord, TailVerdict, Wal};
use ironsafe_storage::{StorageError, BLOCK_SIZE};
use proptest::collection::vec;
use proptest::prelude::*;

const DB_KEY: [u8; 16] = [0x5au8; 16];
const BASE_BLOCKS: usize = 2;

fn tagged_block(tag: u16) -> Vec<u8> {
    let mut b = vec![0u8; BLOCK_SIZE];
    b[..2].copy_from_slice(&tag.to_be_bytes());
    b[BLOCK_SIZE - 2..].copy_from_slice(&tag.to_be_bytes());
    b
}

/// Interpret a byte script as a commit sequence over a model device:
/// each byte either overwrites an existing page or appends a new one.
/// Returns (commits, model states after each commit), where a model
/// state is the full vector of block images.
fn build_commits(script: &[u8]) -> (Vec<CommitRecord>, Vec<Vec<Vec<u8>>>) {
    let mut model: Vec<Vec<u8>> = (0..BASE_BLOCKS as u16).map(tagged_block).collect();
    let mut commits = Vec::new();
    let mut states = Vec::new();
    let mut tag = 100u16;
    for (ci, chunk) in script.chunks(2).enumerate() {
        let mut writes = Vec::new();
        for byte in chunk {
            tag += 1;
            let block = tagged_block(tag);
            let id = if byte % 3 == 0 {
                model.push(block.clone());
                (model.len() - 1) as u64
            } else {
                let id = (*byte as usize) % model.len();
                model[id] = block.clone();
                id as u64
            };
            writes.push((id, block));
        }
        // In-place writes before appends, appends in ascending order —
        // the contract `recover_medium` replays by.
        writes.sort_by_key(|(id, _)| *id);
        commits.push(CommitRecord {
            epoch: 2 + ci as u64,
            root: [ci as u8; 32],
            writes,
            catalog: format!("catalog-{ci}").into_bytes(),
        });
        states.push(model.clone());
    }
    (commits, states)
}

fn build_wal(commits: &[CommitRecord]) -> (Wal, Vec<[u8; 32]>, Vec<usize>) {
    let mut wal = Wal::new(&DB_KEY, 11);
    let cp = Checkpoint {
        epoch: 1,
        root: [0xcc; 32],
        blocks: (0..BASE_BLOCKS as u16).map(tagged_block).collect(),
        catalog: b"catalog-base".to_vec(),
    };
    let mut heads = vec![wal.append_checkpoint(&cp).unwrap()];
    let mut ends = vec![wal.medium().len()];
    for c in commits {
        heads.push(wal.append_commit(c).unwrap());
        ends.push(wal.medium().len());
    }
    (wal, heads, ends)
}

fn device_blocks(dev: &ironsafe_storage::BlockDevice) -> Vec<Vec<u8>> {
    (0..dev.num_blocks()).map(|i| dev.raw_read(i).unwrap().to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At any truncation point L with the head bound at record k:
    /// * L below record k's end: typed `WalTorn`/`WalCorrupt`, never Ok;
    /// * L at/after record k's end: Ok, with the device bit-identical to
    ///   the model state after commit k — whatever partial record bytes
    ///   trail behind are discarded with a verdict.
    #[test]
    fn truncated_replay_is_prefix_consistent(
        script in vec(any::<u8>(), 2..12),
        k_pick in any::<u16>(),
        cut_pick in any::<u32>(),
    ) {
        let (commits, states) = build_commits(&script);
        let (wal, heads, ends) = build_wal(&commits);
        let k = 1 + (k_pick as usize) % commits.len(); // bind head at record k (>= 1 commit)
        let committed = heads[k];
        let full = wal.medium().len();
        let cut = (cut_pick as usize) % (full + 1);

        let mut medium = wal.into_medium();
        medium.raw_truncate(cut);
        let result = Wal::recover_medium(&DB_KEY, &medium, &committed);
        if cut < ends[k] {
            match result {
                Err(StorageError::WalTorn(_)) | Err(StorageError::WalCorrupt(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("untyped error: {e}"))),
                Ok(_) => return Err(TestCaseError::fail(
                    "recovered despite losing committed bytes".to_string(),
                )),
            }
        } else {
            let state = result.expect("committed prefix intact");
            prop_assert_eq!(state.replayed, k);
            prop_assert_eq!(state.epoch, 2 + (k as u64) - 1);
            let want_catalog = format!("catalog-{}", k - 1).into_bytes();
            prop_assert_eq!(state.catalog, want_catalog);
            prop_assert_eq!(device_blocks(&state.device), states[k - 1].clone());
            if cut == ends[k] {
                prop_assert_eq!(state.tail.verdict, TailVerdict::Clean);
            } else {
                prop_assert!(state.tail.verdict != TailVerdict::Clean);
            }
        }
    }

    /// Replay is a pure function of (medium, head): running it twice
    /// yields bit-identical devices, epochs and catalogs — the property
    /// that makes crash recovery idempotent (a crash *during* recovery
    /// just runs it again).
    #[test]
    fn replay_is_idempotent(script in vec(any::<u8>(), 2..10), k_pick in any::<u16>()) {
        let (commits, _) = build_commits(&script);
        let (wal, heads, _) = build_wal(&commits);
        let k = 1 + (k_pick as usize) % commits.len();
        let medium = wal.into_medium();
        let a = Wal::recover_medium(&DB_KEY, &medium, &heads[k]).unwrap();
        let b = Wal::recover_medium(&DB_KEY, &medium, &heads[k]).unwrap();
        prop_assert_eq!(device_blocks(&a.device), device_blocks(&b.device));
        prop_assert_eq!(a.epoch, b.epoch);
        prop_assert_eq!(a.root, b.root);
        prop_assert_eq!(a.catalog, b.catalog);
        prop_assert_eq!(a.replayed, b.replayed);
    }

    /// Single-byte tampering anywhere in the log is either harmless to
    /// the committed prefix (it hit the discarded tail) or surfaces as a
    /// typed WalCorrupt/WalTorn — never a wrong recovered state.
    #[test]
    fn tampered_replay_never_yields_wrong_state(
        script in vec(any::<u8>(), 2..10),
        offset_pick in any::<u32>(),
        xor in 1u8..=255,
    ) {
        let (commits, states) = build_commits(&script);
        let (wal, heads, ends) = build_wal(&commits);
        let k = commits.len(); // head at the last record
        let committed = heads[k];
        let mut medium = wal.into_medium();
        let offset = (offset_pick as usize) % medium.len();
        medium.raw_tamper(offset, xor);
        match Wal::recover_medium(&DB_KEY, &medium, &committed) {
            Err(StorageError::WalTorn(_)) | Err(StorageError::WalCorrupt(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("untyped error: {e}"))),
            Ok(state) => {
                // Only reachable when the flip landed past the committed
                // prefix — which can't happen with the head on the last
                // record unless the flip hit trailing frame bytes that
                // the committed parse never consumed (none exist here).
                prop_assert!(offset >= ends[k], "tamper inside committed prefix must fail");
                prop_assert_eq!(device_blocks(&state.device), states[k - 1].clone());
            }
        }
    }
}
