//! Arbitrary-precision unsigned integers with modular arithmetic.
//!
//! Little-endian `u64` limbs, always normalized (no trailing zero limbs;
//! zero is the empty limb vector). Provides exactly the operations the
//! Schnorr signature scheme needs: add/sub/mul, binary division,
//! and Montgomery-accelerated modular exponentiation.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized.
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, l) in self.limbs.iter().rev().enumerate() {
                if i == 0 {
                    write!(f, "{l:x}")?;
                } else {
                    write!(f, "{l:016x}")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Parse big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize as big-endian bytes without leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.limbs.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serialize as exactly `len` big-endian bytes (left-padded with zeros).
    ///
    /// Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a hexadecimal string (whitespace allowed).
    pub fn from_hex(s: &str) -> Self {
        let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(clean.chars().all(|c| c.is_ascii_hexdigit()), "invalid hex");
        let padded = if clean.len() % 2 == 1 { format!("0{clean}") } else { clean };
        let bytes: Vec<u8> = (0..padded.len() / 2)
            .map(|i| u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("checked hexdigit"))
            .collect();
        Self::from_bytes_be(&bytes)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (LSB = bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Compare magnitudes.
    pub fn cmp_mag(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_mag(other) != Ordering::Less, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by one bit.
    pub fn shl1(&self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            out.push((l << 1) | carry);
            carry = l >> 63;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Binary long division: returns `(quotient, remainder)`.
    ///
    /// Panics on division by zero. O(bits(self) · limbs(divisor)) — fine for
    /// the sizes used by the signature scheme.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (Self::zero(), self.clone());
        }
        let bits = self.bit_len();
        let mut quotient_limbs = vec![0u64; self.limbs.len()];
        let mut rem = Self::zero();
        for i in (0..bits).rev() {
            rem = rem.shl1();
            if self.bit(i) {
                if rem.limbs.is_empty() {
                    rem.limbs.push(1);
                } else {
                    rem.limbs[0] |= 1;
                }
            }
            if rem.cmp_mag(divisor) != Ordering::Less {
                rem = rem.sub(divisor);
                quotient_limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        let mut q = BigUint { limbs: quotient_limbs };
        q.normalize();
        (q, rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// `(self + other) mod m`; inputs must already be `< m`.
    pub fn mod_add(&self, other: &Self, m: &Self) -> Self {
        debug_assert!(self.cmp_mag(m) == Ordering::Less && other.cmp_mag(m) == Ordering::Less);
        let s = self.add(other);
        if s.cmp_mag(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// `(self * other) mod m` via full multiply + reduce.
    pub fn mod_mul(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m` using Montgomery multiplication (m must be odd).
    pub fn mod_exp(&self, exp: &Self, m: &Self) -> Self {
        let ctx = Montgomery::new(m);
        ctx.pow(&self.rem(m), exp)
    }
}

/// Montgomery-multiplication context for a fixed odd modulus.
pub struct Montgomery {
    n: Vec<u64>,
    n0_inv_neg: u64,
    /// R^2 mod n, where R = 2^(64·len).
    r2: Vec<u64>,
    modulus: BigUint,
}

impl Montgomery {
    /// Build a context; panics if the modulus is even or zero.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero(), "Montgomery modulus must be nonzero");
        assert!(modulus.limbs[0] & 1 == 1, "Montgomery modulus must be odd");
        let n = modulus.limbs.clone();
        let n0 = n[0];
        // Newton iteration for n0^{-1} mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv_neg = inv.wrapping_neg();
        // R^2 mod n computed with plain shifting arithmetic (one-time cost).
        let len = n.len();
        let mut r2 = BigUint::one();
        for _ in 0..(2 * 64 * len) {
            r2 = r2.shl1();
            if r2.cmp_mag(modulus) != Ordering::Less {
                r2 = r2.sub(modulus);
            }
        }
        let mut r2_limbs = r2.limbs;
        r2_limbs.resize(len, 0);
        Montgomery { n, n0_inv_neg, r2: r2_limbs, modulus: modulus.clone() }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    fn montmul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let len = self.n.len();
        debug_assert_eq!(a.len(), len);
        debug_assert_eq!(b.len(), len);
        // CIOS (coarsely integrated operand scanning).
        let mut t = vec![0u64; len + 2];
        for &ai in a.iter() {
            let mut carry = 0u128;
            for j in 0..len {
                let v = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = t[len] as u128 + carry;
            t[len] = v as u64;
            t[len + 1] = (v >> 64) as u64;

            let m = t[0].wrapping_mul(self.n0_inv_neg);
            let v = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = v >> 64;
            for j in 1..len {
                let v = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t[len] as u128 + carry;
            t[len - 1] = v as u64;
            t[len] = t[len + 1] + ((v >> 64) as u64);
            t[len + 1] = 0;
        }
        t.truncate(len + 1);
        // Conditional final subtraction.
        let mut result = BigUint { limbs: t };
        result.normalize();
        if result.cmp_mag(&self.modulus) != Ordering::Less {
            result = result.sub(&self.modulus);
        }
        let mut limbs = result.limbs;
        limbs.resize(len, 0);
        limbs
    }

    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut limbs = a.rem(&self.modulus).limbs;
        limbs.resize(self.n.len(), 0);
        self.montmul(&limbs, &self.r2)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        let mut out = BigUint { limbs: self.montmul(a, &one) };
        out.normalize();
        out
    }

    /// `base^exp mod n` (left-to-right square and multiply).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        let mut acc = base_m.clone();
        let bits = exp.bit_len();
        for i in (0..bits - 1).rev() {
            acc = self.montmul(&acc, &acc);
            if exp.bit(i) {
                acc = self.montmul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }

    /// `(a * b) mod n` through Montgomery representation.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.montmul(&am, &bm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn roundtrip_bytes() {
        for v in [0u64, 1, 255, 256, u64::MAX] {
            let b = n(v);
            assert_eq!(BigUint::from_bytes_be(&b.to_bytes_be()), b);
        }
        let big = BigUint::from_hex("0123456789abcdef0123456789abcdef01");
        assert_eq!(BigUint::from_bytes_be(&big.to_bytes_be()), big);
    }

    #[test]
    fn padded_serialization() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(2), vec![0, 0]);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(n(2).add(&n(3)), n(5));
        assert_eq!(n(5).sub(&n(3)), n(2));
        assert_eq!(n(u64::MAX).add(&n(1)).to_bytes_be(), vec![1, 0, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_crosses_limbs() {
        let a = BigUint::from_hex("ffffffffffffffff");
        let b = BigUint::from_hex("ffffffffffffffff");
        assert_eq!(a.mul(&b), BigUint::from_hex("fffffffffffffffe0000000000000001"));
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases: &[(u128, u128)] = &[
            (12345678901234567890, 97),
            (u128::MAX, 0xdeadbeefcafebabe),
            (1, 2),
            (100, 100),
            (0, 5),
        ];
        for &(a, b) in cases {
            let big_a = BigUint::from_bytes_be(&a.to_be_bytes());
            let big_b = BigUint::from_bytes_be(&b.to_be_bytes());
            let (q, r) = big_a.div_rem(&big_b);
            assert_eq!(q, BigUint::from_bytes_be(&(a / b).to_be_bytes()), "q for {a}/{b}");
            assert_eq!(r, BigUint::from_bytes_be(&(a % b).to_be_bytes()), "r for {a}%{b}");
        }
    }

    #[test]
    fn mod_exp_small_values() {
        // 3^7 mod 11 = 2187 mod 11 = 9
        assert_eq!(n(3).mod_exp(&n(7), &n(11)), n(9));
        // Fermat: a^(p-1) = 1 mod p for prime p.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 65537, 999999999] {
            assert_eq!(n(a).mod_exp(&p.sub(&n(1)), &p), n(1), "a={a}");
        }
        // base^0 = 1
        assert_eq!(n(5).mod_exp(&n(0), &n(7)), n(1));
    }

    #[test]
    fn mod_exp_multi_limb() {
        // 2^255 mod (2^127 - 1) — Mersenne prime M127. 2^127 ≡ 1, so
        // 2^255 = 2^(127*2+1) ≡ 2.
        let m127 = BigUint::from_hex("7fffffffffffffffffffffffffffffff");
        assert_eq!(n(2).mod_exp(&n(255), &m127), n(2));
    }

    #[test]
    fn montgomery_mul_matches_naive() {
        let m = BigUint::from_hex("f123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdf1");
        let ctx = Montgomery::new(&m);
        let a = BigUint::from_hex("abcdef0123456789abcdef0123456789");
        let b = BigUint::from_hex("123456789abcdef0123456789abcdef11234");
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn mod_add_wraps() {
        let m = n(10);
        assert_eq!(n(7).mod_add(&n(8), &m), n(5));
        assert_eq!(n(2).mod_add(&n(3), &m), n(5));
    }

    #[test]
    fn hex_parse_oddlen_and_whitespace() {
        assert_eq!(BigUint::from_hex("f"), n(15));
        assert_eq!(BigUint::from_hex("ff ff"), n(0xffff));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_biguint() -> impl Strategy<Value = BigUint> {
            proptest::collection::vec(any::<u8>(), 0..40).prop_map(|v| BigUint::from_bytes_be(&v))
        }

        proptest! {
            #[test]
            fn add_commutes(a in arb_biguint(), b in arb_biguint()) {
                prop_assert_eq!(a.add(&b), b.add(&a));
            }

            #[test]
            fn add_then_sub_roundtrips(a in arb_biguint(), b in arb_biguint()) {
                prop_assert_eq!(a.add(&b).sub(&b), a);
            }

            #[test]
            fn mul_commutes(a in arb_biguint(), b in arb_biguint()) {
                prop_assert_eq!(a.mul(&b), b.mul(&a));
            }

            #[test]
            fn div_rem_reconstructs(a in arb_biguint(), b in arb_biguint()) {
                prop_assume!(!b.is_zero());
                let (q, r) = a.div_rem(&b);
                prop_assert!(r.cmp_mag(&b) == std::cmp::Ordering::Less);
                prop_assert_eq!(q.mul(&b).add(&r), a);
            }

            #[test]
            fn bytes_roundtrip(a in arb_biguint()) {
                prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
            }

            #[test]
            fn montgomery_matches_naive(a in arb_biguint(), b in arb_biguint(), mut mbytes in proptest::collection::vec(any::<u8>(), 1..32)) {
                // Force odd, nonzero modulus > 1.
                let last = mbytes.len() - 1;
                mbytes[last] |= 1;
                let m = BigUint::from_bytes_be(&mbytes);
                prop_assume!(m.cmp_mag(&BigUint::one()) == std::cmp::Ordering::Greater);
                let ctx = Montgomery::new(&m);
                prop_assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
            }

            #[test]
            fn pow_small_exponent_matches_repeated_mul(a in arb_biguint(), e in 0u32..16, mut mbytes in proptest::collection::vec(any::<u8>(), 1..16)) {
                let last = mbytes.len() - 1;
                mbytes[last] |= 1;
                let m = BigUint::from_bytes_be(&mbytes);
                prop_assume!(m.cmp_mag(&BigUint::one()) == std::cmp::Ordering::Greater);
                let ctx = Montgomery::new(&m);
                let got = ctx.pow(&a, &BigUint::from_u64(e as u64));
                let mut expect = BigUint::one().rem(&m);
                for _ in 0..e {
                    expect = expect.mod_mul(&a, &m);
                }
                prop_assert_eq!(got, expect);
            }
        }
    }
}
