//! The `paperbench shards` harness: federation scaling sweep across
//! shard counts, exported as the `BENCH_7.json` snapshot.
//!
//! The snapshot has two sections. `"invariants"` holds only quantities
//! the federation pins bit-identical at any shard count — simulated
//! total, shipped rows/bytes, summed pages read, a result digest — plus
//! the N-dependent `fanout_overhead_ns` reported per shard count. It is
//! byte-deterministic, so `--check` regenerates it and compares it
//! byte for byte against the committed file (the federation regression
//! gate). `"wallclock"` holds measured throughput and p95 latency per
//! shard count; wall-clock numbers vary run to run and are exempt from
//! the gate.

use crate::figures::SEED;
use ironsafe_csa::SystemConfig;
use ironsafe_scale::{FederatedCsaSystem, FederationConfig};
use ironsafe_tpch::generate;
use ironsafe_tpch::queries::PaperQuery;
use std::time::Instant;

/// Default scale factor for the shards gate.
pub const SHARDS_SF: f64 = 0.002;

/// Shard counts the sweep covers.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const KEY: [u8; 32] = [0x5Cu8; 32];

/// Shard-count-invariant facts for one (query, N) cell, plus the one
/// honestly N-dependent number (`fanout_overhead_ns`).
#[derive(Debug, Clone)]
pub struct ShardInvariant {
    /// TPC-H query id.
    pub query_id: u8,
    /// Shard count the cell ran at.
    pub shards: usize,
    /// Simulated total (bit-identical across shard counts).
    pub total_ns: f64,
    /// N-dependent coordination cost, kept out of `total_ns`.
    pub fanout_overhead_ns: f64,
    /// Rows shipped shard→coordinator.
    pub rows_shipped: u64,
    /// Bytes through the canonical channel.
    pub bytes_shipped: u64,
    /// Summed pages read across serving nodes (conserved under range
    /// partitioning).
    pub pages_read: u64,
    /// SHA-256 (truncated) over the rendered result rows.
    pub result_digest: String,
}

/// Measured serving rate for one shard count.
#[derive(Debug, Clone)]
pub struct ShardWallclock {
    /// Shard count.
    pub shards: usize,
    /// Timed runs.
    pub runs: usize,
    /// Queries per wall-clock second across the timed runs.
    pub qps: f64,
    /// 95th-percentile per-query latency, milliseconds.
    pub p95_ms: f64,
}

fn digest(report: &ironsafe_scale::FederatedReport) -> String {
    let rendered = format!("{:?}", report.result);
    let hash = ironsafe_crypto::sha256::sha256(rendered.as_bytes());
    hash[..8].iter().map(|b| format!("{b:02x}")).collect()
}

fn paper_query(id: u8) -> PaperQuery {
    ironsafe_tpch::queries::query(id).expect("known query")
}

/// Run the sweep: every query id at every shard count on IronSafe
/// (scs) federations, asserting the determinism contract as it goes,
/// then time a wall-clock serving loop per shard count.
pub fn shards_sweep(
    sf: f64,
    counts: &[usize],
    ids: &[u8],
) -> (Vec<ShardInvariant>, Vec<ShardWallclock>) {
    let data = generate(sf, SEED);
    let mut invariants = Vec::new();
    let mut wallclock = Vec::new();
    for &n in counts {
        let fed = FederatedCsaSystem::build(
            FederationConfig::new(n, SystemConfig::IronSafe),
            &data,
        )
        .expect("federation builds");
        for &id in ids {
            let q = paper_query(id);
            let (report, _) = fed
                .run_query_federated(&q, KEY, 1)
                .unwrap_or_else(|e| panic!("shards={n} Q{id}: {e}"));
            invariants.push(ShardInvariant {
                query_id: id,
                shards: n,
                total_ns: report.breakdown.total_ns(),
                fanout_overhead_ns: report.fanout_overhead_ns,
                rows_shipped: report.rows_shipped,
                bytes_shipped: report.bytes_shipped,
                pages_read: report.pages_read_storage,
                result_digest: digest(&report),
            });
        }
        // Wall-clock serving rate: repeated Q6 at this shard count.
        let q = paper_query(6);
        let runs = 8usize;
        let mut latencies_ms = Vec::with_capacity(runs);
        let sweep_start = Instant::now();
        for _ in 0..runs {
            let t = Instant::now();
            fed.run_query_federated(&q, KEY, 1).expect("timed run");
            latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let elapsed = sweep_start.elapsed().as_secs_f64();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = latencies_ms[((runs as f64 * 0.95).ceil() as usize - 1).min(runs - 1)];
        wallclock.push(ShardWallclock { shards: n, runs, qps: runs as f64 / elapsed, p95_ms: p95 });
    }

    // Enforce the contract inside the harness too: every invariant cell
    // must match its 1-shard row except fanout overhead.
    for inv in &invariants {
        let base = invariants
            .iter()
            .find(|b| b.query_id == inv.query_id && b.shards == counts[0])
            .expect("baseline cell");
        assert_eq!(inv.total_ns, base.total_ns, "Q{} total drifted", inv.query_id);
        assert_eq!(inv.result_digest, base.result_digest, "Q{} rows drifted", inv.query_id);
        assert_eq!(inv.pages_read, base.pages_read, "Q{} page reads drifted", inv.query_id);
    }
    (invariants, wallclock)
}

/// The byte-deterministic `"invariants"` JSON block (also embedded
/// verbatim in [`shards_json`]) — what the `--check` gate compares.
pub fn shards_invariants_json(sf: f64, invariants: &[ShardInvariant]) -> String {
    let mut s = String::from("  \"invariants\": {\n");
    s.push_str(&format!("    \"sf\": {sf},\n    \"seed\": {SEED},\n    \"cells\": [\n"));
    for (i, inv) in invariants.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"query_id\":{},\"shards\":{},\"total_ns\":{},\"fanout_overhead_ns\":{},\
             \"rows_shipped\":{},\"bytes_shipped\":{},\"pages_read\":{},\"result_digest\":\"{}\"}}{}\n",
            inv.query_id,
            inv.shards,
            inv.total_ns,
            inv.fanout_overhead_ns,
            inv.rows_shipped,
            inv.bytes_shipped,
            inv.pages_read,
            inv.result_digest,
            if i + 1 == invariants.len() { "" } else { "," }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// The full `BENCH_7.json` snapshot: the deterministic invariants block
/// plus the (run-dependent) wall-clock section.
pub fn shards_json(
    sf: f64,
    invariants: &[ShardInvariant],
    wallclock: &[ShardWallclock],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&shards_invariants_json(sf, invariants));
    s.push_str(",\n  \"wallclock\": [\n");
    for (i, w) in wallclock.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\":{},\"runs\":{},\"qps\":{:.1},\"p95_ms\":{:.3}}}{}\n",
            w.shards,
            w.runs,
            w.qps,
            w.p95_ms,
            if i + 1 == wallclock.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn invariants_block_is_deterministic_and_gate_compatible() {
        let (inv_a, wall) = shards_sweep(SHARDS_SF, &[1, 2], &[6]);
        let (inv_b, _) = shards_sweep(SHARDS_SF, &[1, 2], &[6]);
        let a = shards_invariants_json(SHARDS_SF, &inv_a);
        let b = shards_invariants_json(SHARDS_SF, &inv_b);
        assert_eq!(a, b, "invariants block must be byte-deterministic");
        let full = shards_json(SHARDS_SF, &inv_a, &wall);
        assert!(looks_like_valid_json(&full), "{full}");
        assert!(full.contains(&a), "snapshot must embed the invariants block verbatim");
    }
}
