//! # ironsafe-monitor
//!
//! The trusted monitor (§4.2 of the paper): a supervising service, itself
//! running inside an SGX enclave, that is the single root of trust clients
//! need. It
//!
//! * remotely attests **hosts** (SGX quote verification + per-session key
//!   certification, Figure 4a) and **storage systems** (challenge/response
//!   over the secure-boot certificate chain, Figure 4b) — [`monitor`];
//! * evaluates client **execution policies** and owner **access policies**
//!   and rewrites queries to discharge their obligations — [`monitor`];
//! * manages **session keys** between host and storage and runs session
//!   cleanup;
//! * maintains a hash-chained, signed **audit log** a regulator can
//!   verify — [`audit`];
//! * issues per-query **proofs of compliance** — [`proof`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod monitor;
pub mod proof;

pub use audit::{AuditEntry, AuditLog};
pub use monitor::{Authorization, MonitorConfig, NodeInfo, Placement, SessionState, TrustedMonitor};
pub use proof::ProofOfCompliance;

/// Errors raised by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorError {
    /// A node failed attestation.
    Attestation(String),
    /// The client or query violates policy.
    PolicyViolation(String),
    /// Unknown entity (node, database, session...).
    Unknown(String),
    /// The session exists but is no longer usable (revoked or expired).
    SessionClosed {
        /// Which session was refused.
        session_id: u64,
        /// Why it is closed (`"revoked"` / `"expired"`).
        reason: &'static str,
    },
    /// Policy-language failure.
    Policy(ironsafe_policy::PolicyError),
    /// SQL-level failure while rewriting.
    Sql(ironsafe_sql::SqlError),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Attestation(m) => write!(f, "attestation: {m}"),
            MonitorError::PolicyViolation(m) => write!(f, "policy violation: {m}"),
            MonitorError::Unknown(m) => write!(f, "unknown entity: {m}"),
            MonitorError::SessionClosed { session_id, reason } => {
                write!(f, "session {session_id} is {reason}")
            }
            MonitorError::Policy(e) => write!(f, "policy: {e}"),
            MonitorError::Sql(e) => write!(f, "sql: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<ironsafe_policy::PolicyError> for MonitorError {
    fn from(e: ironsafe_policy::PolicyError) -> Self {
        MonitorError::Policy(e)
    }
}

impl From<ironsafe_sql::SqlError> for MonitorError {
    fn from(e: ironsafe_sql::SqlError) -> Self {
        MonitorError::Sql(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MonitorError>;
