//! Intel SGX model: enclaves, EPC paging, sealing, quotes, attestation
//! service.

pub mod attestation;
pub mod enclave;
pub mod epc;
pub mod seal;
pub mod supervisor;

pub use attestation::{AttestationService, Quote, QuoteVerification};
pub use enclave::{Enclave, EnclaveConfig, EnclaveCounters, SgxPlatform};
pub use epc::{EpcSimulator, BACKGROUND_PAGE_BASE};
pub use seal::SealedBlob;
pub use supervisor::EnclaveSupervisor;
