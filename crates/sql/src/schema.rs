//! Schemas and rows.

use crate::value::{DataType, Value};
use crate::{Result, SqlError};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercase).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Column {
    /// Build a column (name is lowercased).
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into().to_ascii_lowercase(), ty }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a (possibly qualified) column name to its index.
    ///
    /// `"t.col"` resolves by its last segment; plain `"col"` matches
    /// directly. TPC-H column names are globally unique so unqualified
    /// resolution is unambiguous; an ambiguous match is an error.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        let needle = name.rsplit('.').next().expect("split yields at least one").to_ascii_lowercase();
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name == needle {
                if found.is_some() {
                    return Err(SqlError::Plan(format!("ambiguous column `{name}`")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| SqlError::Plan(format!("unknown column `{name}`")))
    }

    /// Concatenate two schemas (for joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

/// A row of values, positionally matching a [`Schema`].
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("l_orderkey", DataType::Int),
            Column::new("l_quantity", DataType::Float),
            Column::new("l_shipdate", DataType::Text),
        ])
    }

    #[test]
    fn resolve_plain_and_qualified() {
        let s = schema();
        assert_eq!(s.resolve("l_quantity").unwrap(), 1);
        assert_eq!(s.resolve("lineitem.l_quantity").unwrap(), 1);
        assert_eq!(s.resolve("L_QUANTITY").unwrap(), 1);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(schema().resolve("nope").is_err());
    }

    #[test]
    fn ambiguous_column_errors() {
        let dup = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("id", DataType::Int),
        ]);
        assert!(matches!(dup.resolve("id"), Err(SqlError::Plan(_))));
    }

    #[test]
    fn join_concatenates() {
        let a = schema();
        let b = Schema::new(vec![Column::new("o_orderkey", DataType::Int)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.resolve("o_orderkey").unwrap(), 3);
    }
}
