//! Attestation protocol benchmarks (Table 4's components as Criterion
//! measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_tee::image::SoftwareImage;
use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
use ironsafe_tee::trustzone::ta::verify_attestation;
use ironsafe_tee::trustzone::{AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage};
use rand::SeedableRng;

fn bench_host_attestation(c: &mut Criterion) {
    let group = Group::modp_1024();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let platform = SgxPlatform::from_seed(&group, b"bench-host");
    let enclave = platform
        .create_enclave(&SoftwareImage::new("engine", 1, b"x".to_vec()), EnclaveConfig::default());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);

    let mut g = c.benchmark_group("attest_host");
    g.sample_size(20);
    g.bench_function("quote_generate", |b| {
        b.iter(|| Quote::generate(&platform, &enclave, std::hint::black_box(b"report"), &mut rng))
    });
    let quote = Quote::generate(&platform, &enclave, b"report", &mut rng);
    g.bench_function("quote_verify", |b| {
        b.iter(|| ias.verify_quote(std::hint::black_box(&quote)).unwrap())
    });
    g.finish();
}

fn bench_storage_attestation(c: &mut Criterion) {
    let group = Group::modp_1024();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mfr = Manufacturer::from_seed(&group, b"bench-vendor");
    let vendor = KeyPair::derive(&group, b"bench-vendor", b"tz-manufacturer-root");
    let device = mfr.make_device("bench-dev", 8, &mut rng);
    let images = BootImages {
        trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"a".to_vec()), &mut rng),
        trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"o".to_vec()), &mut rng),
        normal_world: SoftwareImage::new("nw", 5, vec![0u8; 1024 * 1024]),
    };

    let mut g = c.benchmark_group("attest_storage");
    g.sample_size(10);
    g.bench_function("secure_boot", |b| {
        b.iter(|| SecureBoot::boot(&device, &mfr.root_public(), std::hint::black_box(&images), &mut rng).unwrap())
    });
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).unwrap();
    let ta = AttestationTa::new(&booted);
    g.bench_function("ta_respond", |b| {
        b.iter(|| ta.respond(std::hint::black_box([5u8; 32]), &mut rng))
    });
    let challenge = [5u8; 32];
    let response = ta.respond(challenge, &mut rng);
    g.bench_function("verify_response_and_chain", |b| {
        b.iter(|| {
            verify_attestation(&group, &mfr.root_public(), &challenge, std::hint::black_box(&response)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_host_attestation, bench_storage_attestation);
criterion_main!(benches);
