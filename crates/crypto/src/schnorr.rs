//! Schnorr signatures over a [`Group`].
//!
//! Classic scheme: for secret `x` and public `y = g^x`,
//! a signature on `m` is `(R, s)` with `R = g^k`, `e = H(R ‖ y ‖ m) mod q`,
//! `s = k + e·x mod q`; verification checks `g^s == R · y^e (mod p)`.
//!
//! These signatures back IronSafe's attestation quotes (signed by the
//! simulated hardware keys), the trusted monitor's proofs of compliance,
//! and the certificate chains produced during secure boot.

use crate::bignum::BigUint;
use crate::group::Group;
use crate::sha256::sha256_concat;
use crate::{CryptoError, Result};

/// A Schnorr secret key: scalar `x` in `[1, q)`.
#[derive(Clone)]
pub struct SecretKey {
    group: Group,
    x: BigUint,
}

/// A Schnorr public key: group element `y = g^x`.
#[derive(Clone, PartialEq, Eq)]
pub struct PublicKey {
    y: BigUint,
}

/// A signature `(R, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    r: BigUint,
    s: BigUint,
}

/// A keypair.
#[derive(Clone)]
pub struct KeyPair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.y.to_bytes_be();
        let show = &b[..b.len().min(6)];
        write!(f, "PublicKey({})", show.iter().map(|x| format!("{x:02x}")).collect::<String>())
    }
}

impl KeyPair {
    /// Generate a keypair in `group` from `rng`.
    pub fn generate<R: rand::Rng + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let x = group.random_scalar(rng);
        let y = group.pow_g(&x);
        KeyPair { secret: SecretKey { group: group.clone(), x }, public: PublicKey { y } }
    }

    /// Deterministically derive a keypair from seed material.
    ///
    /// Used to turn the simulated hardware-unique key (HUK) or ROTPK seed
    /// into a stable signing identity for a device.
    pub fn derive(group: &Group, seed: &[u8], info: &[u8]) -> Self {
        let material = crate::hkdf::hkdf_sha256(seed, b"ironsafe-keypair", info, group.scalar_len() * 2);
        let x = group.reduce_scalar(&BigUint::from_bytes_be(&material));
        let x = if x.is_zero() { BigUint::one() } else { x };
        let y = group.pow_g(&x);
        KeyPair { secret: SecretKey { group: group.clone(), x }, public: PublicKey { y } }
    }
}

fn challenge(group: &Group, r: &BigUint, y: &BigUint, msg: &[u8]) -> BigUint {
    let elen = group.element_len();
    let digest = sha256_concat(&[
        b"ironsafe-schnorr-v1",
        &r.to_bytes_be_padded(elen),
        &y.to_bytes_be_padded(elen),
        msg,
    ]);
    group.reduce_scalar(&BigUint::from_bytes_be(&digest))
}

impl SecretKey {
    /// Sign `msg` using randomness from `rng`.
    pub fn sign<R: rand::Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> Signature {
        let g = &self.group;
        let k = g.random_scalar(rng);
        let r = g.pow_g(&k);
        let e = challenge(g, &r, &g.pow_g(&self.x), msg);
        let s = k.mod_add(&g.reduce_scalar(&e.mul(&self.x)), g.q());
        Signature { r, s }
    }

    /// The corresponding public key.
    pub fn public(&self) -> PublicKey {
        PublicKey { y: self.group.pow_g(&self.x) }
    }
}

impl PublicKey {
    /// Verify `sig` over `msg`.
    pub fn verify(&self, group: &Group, msg: &[u8], sig: &Signature) -> Result<()> {
        if !group.is_element(&sig.r) || sig.s.cmp_mag(group.q()) != std::cmp::Ordering::Less {
            return Err(CryptoError::VerificationFailed);
        }
        let e = challenge(group, &sig.r, &self.y, msg);
        let lhs = group.pow_g(&sig.s);
        let rhs = group.mul(&sig.r, &group.pow(&self.y, &e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }

    /// Serialize (fixed width for the group).
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        self.y.to_bytes_be_padded(group.element_len())
    }

    /// Deserialize and validate group membership.
    pub fn from_bytes(group: &Group, bytes: &[u8]) -> Result<Self> {
        let y = BigUint::from_bytes_be(bytes);
        if group.is_element(&y) {
            Ok(PublicKey { y })
        } else {
            Err(CryptoError::InvalidKey("not a group element"))
        }
    }
}

impl Signature {
    /// Serialize as `R ‖ s` with fixed widths.
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        let mut out = self.r.to_bytes_be_padded(group.element_len());
        out.extend_from_slice(&self.s.to_bytes_be_padded(group.scalar_len()));
        out
    }

    /// Deserialize; length must be exactly `element_len + scalar_len`.
    pub fn from_bytes(group: &Group, bytes: &[u8]) -> Result<Self> {
        let want = group.element_len() + group.scalar_len();
        if bytes.len() != want {
            return Err(CryptoError::MalformedCiphertext("bad signature length"));
        }
        let (rb, sb) = bytes.split_at(group.element_len());
        Ok(Signature { r: BigUint::from_bytes_be(rb), s: BigUint::from_bytes_be(sb) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let g = Group::modp_1024();
        let mut r = rng();
        let kp = KeyPair::generate(&g, &mut r);
        let sig = kp.secret.sign(b"attestation quote", &mut r);
        assert!(kp.public.verify(&g, b"attestation quote", &sig).is_ok());
    }

    #[test]
    fn wrong_message_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let kp = KeyPair::generate(&g, &mut r);
        let sig = kp.secret.sign(b"msg", &mut r);
        assert_eq!(kp.public.verify(&g, b"other", &sig), Err(CryptoError::VerificationFailed));
    }

    #[test]
    fn wrong_key_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let kp1 = KeyPair::generate(&g, &mut r);
        let kp2 = KeyPair::generate(&g, &mut r);
        let sig = kp1.secret.sign(b"msg", &mut r);
        assert!(kp2.public.verify(&g, b"msg", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let kp = KeyPair::generate(&g, &mut r);
        let sig = kp.secret.sign(b"msg", &mut r);
        let mut bytes = sig.to_bytes(&g);
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let bad = Signature::from_bytes(&g, &bytes).unwrap();
        assert!(kp.public.verify(&g, b"msg", &bad).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let g = Group::modp_1024();
        let mut r = rng();
        let kp = KeyPair::generate(&g, &mut r);
        let sig = kp.secret.sign(b"m", &mut r);
        let sig2 = Signature::from_bytes(&g, &sig.to_bytes(&g)).unwrap();
        assert_eq!(sig, sig2);
        let pk2 = PublicKey::from_bytes(&g, &kp.public.to_bytes(&g)).unwrap();
        assert_eq!(kp.public, pk2);
    }

    #[test]
    fn derived_keys_are_stable_and_domain_separated() {
        let g = Group::modp_1024();
        let a1 = KeyPair::derive(&g, b"huk-device-1", b"attest");
        let a2 = KeyPair::derive(&g, b"huk-device-1", b"attest");
        let b = KeyPair::derive(&g, b"huk-device-1", b"storage");
        let c = KeyPair::derive(&g, b"huk-device-2", b"attest");
        assert_eq!(a1.public, a2.public);
        assert_ne!(a1.public, b.public);
        assert_ne!(a1.public, c.public);
    }

    #[test]
    fn signature_wrong_length_rejected() {
        let g = Group::modp_1024();
        assert!(Signature::from_bytes(&g, &[0u8; 10]).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[test]
            fn roundtrip_any_message(msg in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
                let g = Group::tiny_test();
                let mut r = rand::rngs::StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&g, &mut r);
                let sig = kp.secret.sign(&msg, &mut r);
                prop_assert!(kp.public.verify(&g, &msg, &sig).is_ok());
            }

            #[test]
            fn flipped_message_bit_rejected(mut msg in proptest::collection::vec(any::<u8>(), 1..64), seed in any::<u64>(), idx in any::<usize>()) {
                let g = Group::tiny_test();
                let mut r = rand::rngs::StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&g, &mut r);
                let sig = kp.secret.sign(&msg, &mut r);
                let i = idx % msg.len();
                msg[i] ^= 1;
                prop_assert!(kp.public.verify(&g, &msg, &sig).is_err());
            }
        }
    }
}
