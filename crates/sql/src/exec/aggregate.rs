//! Hash aggregation.

use crate::ast::{AggFunc, Expr};
use crate::exec::{BoxOp, Operator};
use crate::expr::eval;
use crate::schema::{Column, Row, Schema};
use crate::value::{DataType, Value};
use crate::Result;
use std::collections::{HashMap, HashSet};

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input expression (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

/// Accumulator for one aggregate in one group. `pub(crate)` so the
/// morsel-parallel aggregate replays the exact same state machine.
pub(crate) enum AggState {
    Count(i64),
    Sum { int: i64, float: f64, all_int: bool, seen: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum { int: 0, float: 0.0, all_int: true, seen: false },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum { int, float, all_int, seen } => {
                *seen = true;
                match v {
                    Value::Int(i) => {
                        *int = int.wrapping_add(*i);
                        *float += *i as f64;
                    }
                    _ => {
                        *all_int = false;
                        *float += v.as_f64()?;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_f64()?;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.sort_cmp(c) == std::cmp::Ordering::Less) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.sort_cmp(c) == std::cmp::Ordering::Greater) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum { int, float, all_int, seen } => {
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(int)
                } else {
                    Value::Float(float)
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Output schema of an aggregation: the group columns followed by the
/// aggregate columns. Shared by [`HashAggregate`] and the morsel-parallel
/// aggregate so both plans expose identical schemas.
pub(crate) fn agg_output_schema(group_names: &[String], aggs: &[AggSpec]) -> Schema {
    let mut columns = Vec::with_capacity(group_names.len() + aggs.len());
    for name in group_names {
        // Output types are dynamic; Text is a safe declared default.
        columns.push(Column::new(name.clone(), DataType::Text));
    }
    for a in aggs {
        let ty = match a.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            _ => DataType::Float,
        };
        columns.push(Column::new(a.name.clone(), ty));
    }
    Schema::new(columns)
}

struct Group {
    keys: Row,
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<Vec<u8>>>>,
}

/// Grouping accumulator: the single-threaded core of hash aggregation,
/// fed one row at a time in input order. Both the serial operator and
/// the morsel-parallel merge drive this same state machine, which is
/// what makes parallel aggregation bit-identical to serial — group
/// first-seen order, NULL gating, DISTINCT dedup order and the exact
/// (non-associative) float accumulation order are all decided here.
pub(crate) struct GroupAcc {
    groups: HashMap<Vec<u8>, Group>,
    order: Vec<Vec<u8>>, // first-seen group order
}

impl GroupAcc {
    /// `global` (no GROUP BY) pre-seeds the single output group so empty
    /// input still yields one row.
    pub(crate) fn new(aggs: &[AggSpec], global: bool) -> Self {
        let mut acc = GroupAcc { groups: HashMap::new(), order: Vec::new() };
        if global {
            acc.groups.insert(
                Vec::new(),
                Group {
                    keys: Vec::new(),
                    states: aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    distinct_seen: aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
                },
            );
            acc.order.push(Vec::new());
        }
        acc
    }

    /// Fold one input row: `key` is the concatenated group-key encoding,
    /// `key_vals` the evaluated group expressions (cloned on first sight
    /// of the group only), `agg_vals` one evaluated input per aggregate
    /// (`COUNT(*)` rows pass `Int(1)`).
    pub(crate) fn update(
        &mut self,
        aggs: &[AggSpec],
        key: &[u8],
        key_vals: &[Value],
        agg_vals: &[Value],
    ) -> Result<()> {
        if !self.groups.contains_key(key) {
            self.order.push(key.to_vec());
            self.groups.insert(
                key.to_vec(),
                Group {
                    keys: key_vals.to_vec(),
                    states: aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    distinct_seen: aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
                },
            );
        }
        let group = self.groups.get_mut(key).expect("just ensured");
        for (i, spec) in aggs.iter().enumerate() {
            let v = &agg_vals[i];
            if spec.arg.is_none() || !v.is_null() {
                if let Some(seen) = &mut group.distinct_seen[i] {
                    let mut kb = Vec::new();
                    v.key_bytes(&mut kb);
                    if !seen.insert(kb) {
                        continue;
                    }
                }
                group.states[i].update(v)?;
            }
        }
        Ok(())
    }

    /// Emit one output row per group, in first-seen order.
    pub(crate) fn finish(mut self) -> Vec<Row> {
        let mut rows = Vec::with_capacity(self.order.len());
        for key in self.order {
            let g = self.groups.remove(&key).expect("tracked key");
            let mut row = g.keys;
            for s in g.states {
                row.push(s.finish());
            }
            rows.push(row);
        }
        rows
    }
}

/// Hash aggregate: groups by `group_exprs`, computes `aggs` per group.
///
/// Output schema: the group expressions (named `g0..gN` unless overridden)
/// followed by the aggregates (named per spec). With no group expressions,
/// exactly one output row is produced even for empty input (SQL global
/// aggregate semantics).
pub struct HashAggregate {
    input: Option<BoxOp>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    output: std::vec::IntoIter<Row>,
    emitted: u64,
}

impl HashAggregate {
    /// Build the operator. `group_names` label the group-by outputs.
    pub fn new(input: BoxOp, group_exprs: Vec<Expr>, group_names: Vec<String>, aggs: Vec<AggSpec>) -> Self {
        assert_eq!(group_exprs.len(), group_names.len());
        let schema = agg_output_schema(&group_names, &aggs);
        HashAggregate {
            input: Some(input),
            group_exprs,
            aggs,
            schema,
            output: Vec::new().into_iter(),
            emitted: 0,
        }
    }

    fn materialize(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("materialize called once");
        let mut acc = GroupAcc::new(&self.aggs, self.group_exprs.is_empty());
        let mut agg_vals = Vec::with_capacity(self.aggs.len());
        let mut key = Vec::new();
        let mut key_vals = Vec::with_capacity(self.group_exprs.len());
        while let Some(row) = input.next()? {
            let schema = input.schema();
            key.clear();
            key_vals.clear();
            for e in &self.group_exprs {
                let v = eval(e, schema, &row)?;
                v.key_bytes(&mut key);
                key_vals.push(v);
            }
            agg_vals.clear();
            for spec in &self.aggs {
                agg_vals.push(match &spec.arg {
                    None => Value::Int(1), // COUNT(*) counts rows
                    Some(e) => eval(e, schema, &row)?,
                });
            }
            acc.update(&self.aggs, &key, &key_vals, &agg_vals)?;
        }
        self.output = acc.finish().into_iter();
        Ok(())
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let groups: Vec<String> = self.group_exprs.iter().map(crate::ast::expr_to_sql).collect();
        let aggs: Vec<String> = self.aggs.iter().map(|a| a.name.clone()).collect();
        format!(
            "HashAggregate: group by [{}], compute [{}]",
            groups.join(", "),
            aggs.join(", ")
        )
    }

    fn children(&self) -> Vec<&BoxOp> {
        self.input.as_ref().map(|i| vec![i]).unwrap_or_default()
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.input.is_some() {
            self.materialize()?;
        }
        let row = self.output.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, Values};
    use crate::parser::parse_expression;

    fn input() -> BoxOp {
        let schema = Schema::new(vec![
            Column::new("grp", DataType::Text),
            Column::new("x", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Text("a".into()), Value::Int(1)],
            vec![Value::Text("b".into()), Value::Int(10)],
            vec![Value::Text("a".into()), Value::Int(2)],
            vec![Value::Text("b".into()), Value::Int(20)],
            vec![Value::Text("a".into()), Value::Int(3)],
            vec![Value::Text("a".into()), Value::Null],
        ];
        Box::new(Values::new(schema, rows))
    }

    fn spec(func: AggFunc, arg: Option<&str>, distinct: bool, name: &str) -> AggSpec {
        AggSpec {
            func,
            arg: arg.map(|a| parse_expression(a).unwrap()),
            distinct,
            name: name.into(),
        }
    }

    #[test]
    fn grouped_aggregates() {
        let agg = HashAggregate::new(
            input(),
            vec![parse_expression("grp").unwrap()],
            vec!["grp".into()],
            vec![
                spec(AggFunc::Count, None, false, "cnt"),
                spec(AggFunc::Sum, Some("x"), false, "total"),
                spec(AggFunc::Avg, Some("x"), false, "mean"),
                spec(AggFunc::Min, Some("x"), false, "lo"),
                spec(AggFunc::Max, Some("x"), false, "hi"),
            ],
        );
        let (schema, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(schema.columns.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["grp", "cnt", "total", "mean", "lo", "hi"]);
        assert_eq!(rows.len(), 2);
        // First-seen order: a then b.
        assert_eq!(rows[0][0].as_str().unwrap(), "a");
        assert_eq!(rows[0][1], Value::Int(4), "COUNT(*) counts the NULL row");
        assert_eq!(rows[0][2], Value::Int(6), "SUM skips NULL");
        assert_eq!(rows[0][3], Value::Float(2.0), "AVG skips NULL");
        assert_eq!(rows[0][4], Value::Int(1));
        assert_eq!(rows[0][5], Value::Int(3));
        assert_eq!(rows[1][2], Value::Int(30));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let empty = Box::new(Values::new(schema, vec![]));
        let agg = HashAggregate::new(
            empty,
            vec![],
            vec![],
            vec![spec(AggFunc::Count, None, false, "cnt"), spec(AggFunc::Sum, Some("x"), false, "s")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(rows.len(), 1, "global aggregate always yields one row");
        assert_eq!(rows[0][0], Value::Int(0));
        assert!(rows[0][1].is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_nothing() {
        let schema = Schema::new(vec![Column::new("g", DataType::Int), Column::new("x", DataType::Int)]);
        let empty = Box::new(Values::new(schema, vec![]));
        let agg = HashAggregate::new(
            empty,
            vec![parse_expression("g").unwrap()],
            vec!["g".into()],
            vec![spec(AggFunc::Count, None, false, "cnt")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn count_distinct() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Null],
        ];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![],
            vec![],
            vec![
                spec(AggFunc::Count, Some("x"), true, "distinct_x"),
                spec(AggFunc::Count, Some("x"), false, "all_x"),
            ],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0], Value::Int(2));
        assert_eq!(out[0][1], Value::Int(3), "plain COUNT(x) skips NULL");
    }

    #[test]
    fn sum_over_expression() {
        let agg = HashAggregate::new(
            input(),
            vec![],
            vec![],
            vec![spec(AggFunc::Sum, Some("x * 2"), false, "s")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(rows[0][0], Value::Int(72));
    }

    #[test]
    fn sum_promotes_to_float_on_mixed() {
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]);
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(2.5)]];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(v, vec![], vec![], vec![spec(AggFunc::Sum, Some("x"), false, "s")]);
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0], Value::Float(3.5));
    }

    #[test]
    fn min_max_on_text() {
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let rows = vec![
            vec![Value::Text("1995-03-15".into())],
            vec![Value::Text("1994-01-01".into())],
            vec![Value::Text("1996-06-30".into())],
        ];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![],
            vec![],
            vec![spec(AggFunc::Min, Some("d"), false, "lo"), spec(AggFunc::Max, Some("d"), false, "hi")],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0].as_str().unwrap(), "1994-01-01");
        assert_eq!(out[0][1].as_str().unwrap(), "1996-06-30");
    }

    #[test]
    fn null_group_keys_group_together() {
        let schema = Schema::new(vec![Column::new("g", DataType::Int)]);
        let rows = vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(1)]];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![parse_expression("g").unwrap()],
            vec!["g".into()],
            vec![spec(AggFunc::Count, None, false, "cnt")],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], Value::Int(2), "two NULL-keyed rows in one group");
    }
}
