//! # ironsafe-policy
//!
//! IronSafe's declarative policy specification language (§4.3 of the
//! paper): the Rust counterpart of the paper's Python interpreter, living
//! inside the trusted monitor's TCB.
//!
//! A policy is a set of rules `perm :- condition` where `perm` is `read`,
//! `write` or `exec` and the condition combines the paper's predicates
//! with `&` (all) and `|` (any):
//!
//! ```text
//! read  :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)
//! write :- sessionKeyIs(Ka)
//! exec  :- fwVersionStorage(3) & fwVersionHost(2) & storageLocIs(EU)
//! ```
//!
//! Predicates split into *checks* (identity, location, firmware) decided
//! against an [`eval::EvalContext`], and *obligations* (`le`, `reuseMap`,
//! `logUpdate`) that always hold but oblige the monitor to rewrite the
//! query or append to the audit log — implemented in [`rewrite`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod parser;
pub mod rewrite;

pub use ast::{Cond, Perm, PolicyRule, PolicySet, Predicate};
pub use eval::{EvalContext, Obligation, PolicyDecision};
pub use parser::parse_policy;

/// Errors raised by the policy subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The policy text failed to parse.
    Parse(String),
    /// A predicate was used with the wrong arguments.
    BadPredicate(String),
    /// Query rewriting failed.
    Rewrite(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Parse(m) => write!(f, "policy parse error: {m}"),
            PolicyError::BadPredicate(m) => write!(f, "bad predicate: {m}"),
            PolicyError::Rewrite(m) => write!(f, "policy rewrite error: {m}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PolicyError>;
