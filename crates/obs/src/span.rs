//! Hierarchical spans over simulated and wall-clock time.
//!
//! A [`Trace`] collects spans for one logical activity (a query, a
//! figure run, an attestation round-trip). Install it on the current
//! thread with [`Trace::install`]; while the guard lives,
//! [`Span::enter`] opens nested scopes:
//!
//! ```
//! use ironsafe_obs::span::{add_sim_ns, Span, Trace};
//!
//! let trace = Trace::new();
//! {
//!     let _g = trace.install();
//!     let _q = Span::enter("query/q1");
//!     {
//!         let _s = Span::enter("scan/lineitem");
//!         add_sim_ns("ndp", 1_500.0);
//!     }
//! }
//! let snap = trace.snapshot();
//! assert_eq!(snap.sim_total_ns(), 1_500.0);
//! ```
//!
//! Wall-clock nanoseconds are recorded automatically for every span;
//! simulated nanoseconds are attributed explicitly via [`add_sim_ns`]
//! (or [`Span::add_sim_ns`]) tagged with a category such as `"ndp"`,
//! `"freshness"`, `"crypto"`, `"transitions"`, `"epc"` or `"other"` —
//! the same axes as the paper's cost breakdown. Simulated time forms a
//! single monotone timeline per trace: each attribution advances the
//! trace's simulated cursor, which gives every span a simulated start
//! offset usable for Chrome trace export.
//!
//! **No-trace behaviour:** with no trace installed, `Span::enter`
//! returns a disarmed guard and all recording calls are no-ops that
//! perform no heap allocation (verified by `tests/zero_alloc.rs`).

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// One finished (or in-flight) span inside a [`TraceSnapshot`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Slash-separated name as passed to [`Span::enter`].
    pub name: String,
    /// Index of the parent span in the trace, if any.
    pub parent: Option<usize>,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    /// Wall-clock start, nanoseconds since the trace was created.
    pub start_wall_ns: u64,
    /// Wall-clock duration in nanoseconds (0 while in flight).
    pub wall_ns: u64,
    /// Simulated-time start: the trace's simulated cursor when this
    /// span was entered.
    pub start_sim_ns: f64,
    /// Simulated nanoseconds attributed directly to this span
    /// (children's attributions are *not* included).
    pub sim_ns: f64,
    /// Per-category breakdown of `sim_ns`, in attribution order.
    pub categories: Vec<(&'static str, f64)>,
    /// True once the span guard has dropped.
    pub closed: bool,
}

impl SpanRecord {
    fn add_category(&mut self, category: &'static str, ns: f64) {
        self.sim_ns += ns;
        if let Some(slot) = self.categories.iter_mut().find(|(c, _)| *c == category) {
            slot.1 += ns;
        } else {
            self.categories.push((category, ns));
        }
    }
}

#[derive(Debug)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    sim_cursor_ns: f64,
}

/// A collection of hierarchical spans sharing one simulated timeline.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Mutex<TraceInner>>,
    epoch: Instant,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// New empty trace; the wall-clock epoch is now.
    pub fn new() -> Self {
        Trace {
            inner: Arc::new(Mutex::new(TraceInner {
                spans: Vec::new(),
                sim_cursor_ns: 0.0,
            })),
            epoch: Instant::now(),
        }
    }

    /// Make this trace the current thread's active trace until the
    /// returned guard drops. Nested installs stack (the previous trace
    /// is restored).
    pub fn install(&self) -> TraceGuard {
        let previous = ACTIVE.with(|a| {
            a.borrow_mut().replace(ActiveTrace {
                trace: self.clone(),
                stack: Vec::new(),
            })
        });
        TraceGuard { previous }
    }

    /// The trace installed on the current thread, if any — a cloneable
    /// handle for propagating the active trace into worker threads
    /// (each worker calls [`Trace::install`] on its own thread; spans
    /// from every thread land in the same trace).
    pub fn current() -> Option<Trace> {
        ACTIVE.with(|a| a.borrow().as_ref().map(|t| t.trace.clone()))
    }

    /// Total simulated nanoseconds attributed so far.
    pub fn sim_total_ns(&self) -> f64 {
        self.inner.lock().sim_cursor_ns
    }

    /// Frozen copy of all spans recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            spans: self.inner.lock().spans.clone(),
        }
    }
}

/// Guard restoring the previously installed trace on drop.
pub struct TraceGuard {
    previous: Option<ActiveTrace>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.previous.take();
        });
    }
}

struct ActiveTrace {
    trace: Trace,
    stack: Vec<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// RAII scope handle returned by [`Span::enter`].
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    /// Index into the active trace, or `usize::MAX` when disarmed.
    idx: usize,
}

const DISARMED: usize = usize::MAX;

impl Span {
    /// Open a nested span named `name` on the current thread's trace.
    ///
    /// Without an installed trace this is a no-op: the returned guard is
    /// disarmed and nothing is allocated.
    pub fn enter(name: &str) -> Span {
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            let Some(active) = borrow.as_mut() else {
                return Span { idx: DISARMED };
            };
            let parent = active.stack.last().copied();
            let mut inner = active.trace.inner.lock();
            let start_wall_ns = active.trace.epoch.elapsed().as_nanos() as u64;
            let start_sim_ns = inner.sim_cursor_ns;
            let idx = inner.spans.len();
            let depth = parent.map_or(0, |p| inner.spans[p].depth + 1);
            inner.spans.push(SpanRecord {
                name: name.to_string(),
                parent,
                depth,
                start_wall_ns,
                wall_ns: 0,
                start_sim_ns,
                sim_ns: 0.0,
                categories: Vec::new(),
                closed: false,
            });
            drop(inner);
            active.stack.push(idx);
            Span { idx }
        })
    }

    /// Attribute `ns` simulated nanoseconds of `category` to this span
    /// and advance the trace's simulated cursor.
    pub fn add_sim_ns(&self, category: &'static str, ns: f64) {
        if self.idx == DISARMED {
            return;
        }
        ACTIVE.with(|a| {
            let borrow = a.borrow();
            if let Some(active) = borrow.as_ref() {
                let mut inner = active.trace.inner.lock();
                inner.sim_cursor_ns += ns;
                inner.spans[self.idx].add_category(category, ns);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.idx == DISARMED {
            return;
        }
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            if let Some(active) = borrow.as_mut() {
                // Tolerate out-of-order drops: remove this span wherever
                // it sits in the stack.
                if let Some(pos) = active.stack.iter().rposition(|&i| i == self.idx) {
                    active.stack.remove(pos);
                }
                let mut inner = active.trace.inner.lock();
                let start = inner.spans[self.idx].start_wall_ns;
                let now = active.trace.epoch.elapsed().as_nanos() as u64;
                inner.spans[self.idx].wall_ns = now.saturating_sub(start);
                inner.spans[self.idx].closed = true;
            }
        });
    }
}

/// Attribute `ns` simulated nanoseconds of `category` to the innermost
/// open span on the current thread. No-op (and allocation-free) when no
/// trace is installed or no span is open.
pub fn add_sim_ns(category: &'static str, ns: f64) {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        if let Some(active) = borrow.as_ref() {
            if let Some(&idx) = active.stack.last() {
                let mut inner = active.trace.inner.lock();
                inner.sim_cursor_ns += ns;
                inner.spans[idx].add_category(category, ns);
            }
        }
    });
}

/// Frozen view of a [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans in creation order (parents precede children).
    pub spans: Vec<SpanRecord>,
}

impl TraceSnapshot {
    /// Total simulated nanoseconds attributed across all spans.
    pub fn sim_total_ns(&self) -> f64 {
        self.spans.iter().map(|s| s.sim_ns).sum()
    }

    /// Simulated nanoseconds attributed directly to spans whose name
    /// matches `pred`.
    pub fn sim_ns_where(&self, pred: impl Fn(&SpanRecord) -> bool) -> f64 {
        self.spans.iter().filter(|s| pred(s)).map(|s| s.sim_ns).sum()
    }

    /// Sum of simulated nanoseconds per category, over all spans,
    /// sorted by category name.
    pub fn category_totals(&self) -> Vec<(&'static str, f64)> {
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for span in &self.spans {
            for &(cat, ns) in &span.categories {
                if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == cat) {
                    slot.1 += ns;
                } else {
                    totals.push((cat, ns));
                }
            }
        }
        totals.sort_by_key(|&(c, _)| c);
        totals
    }

    /// Simulated nanoseconds attributed to this span *and* all its
    /// descendants.
    pub fn sim_ns_inclusive(&self, idx: usize) -> f64 {
        let mut total = self.spans[idx].sim_ns;
        for (i, s) in self.spans.iter().enumerate() {
            if s.parent == Some(idx) {
                total += self.sim_ns_inclusive(i);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_hierarchy_and_sim_time() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let q = Span::enter("query/q1");
            q.add_sim_ns("other", 10.0);
            {
                let s = Span::enter("scan/lineitem");
                s.add_sim_ns("ndp", 100.0);
                add_sim_ns("crypto", 40.0); // free-function form, innermost span
            }
            {
                let _f = Span::enter("freshness");
                add_sim_ns("freshness", 5.0);
            }
        }
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "query/q1");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[1].sim_ns, 140.0);
        assert_eq!(snap.spans[1].start_sim_ns, 10.0);
        assert_eq!(snap.sim_total_ns(), 155.0);
        assert_eq!(snap.sim_ns_inclusive(0), 155.0);
        assert_eq!(
            snap.category_totals(),
            vec![("crypto", 40.0), ("freshness", 5.0), ("ndp", 100.0), ("other", 10.0)]
        );
        assert!(snap.spans.iter().all(|s| s.closed));
    }

    #[test]
    fn no_trace_is_noop() {
        let s = Span::enter("orphan");
        s.add_sim_ns("ndp", 99.0);
        add_sim_ns("ndp", 99.0);
        drop(s);
        // Installing afterwards starts clean.
        let trace = Trace::new();
        let _g = trace.install();
        assert_eq!(trace.snapshot().spans.len(), 0);
        assert_eq!(trace.sim_total_ns(), 0.0);
    }

    #[test]
    fn install_stacks_and_restores() {
        let outer = Trace::new();
        let inner = Trace::new();
        let _og = outer.install();
        {
            let _s = Span::enter("outer-span");
            {
                let _ig = inner.install();
                let _t = Span::enter("inner-span");
                add_sim_ns("ndp", 1.0);
            }
            add_sim_ns("other", 2.0);
        }
        assert_eq!(inner.snapshot().spans.len(), 1);
        assert_eq!(inner.sim_total_ns(), 1.0);
        let outer_snap = outer.snapshot();
        assert_eq!(outer_snap.spans.len(), 1);
        assert_eq!(outer_snap.spans[0].sim_ns, 2.0);
    }

    #[test]
    fn wall_time_recorded() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let _s = Span::enter("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = trace.snapshot();
        assert!(snap.spans[0].wall_ns >= 1_000_000, "{}", snap.spans[0].wall_ns);
    }

    #[test]
    fn traces_are_per_thread() {
        let trace = Trace::new();
        let _g = trace.install();
        let handle = std::thread::spawn(|| {
            // No trace installed on this thread.
            let s = Span::enter("other-thread");
            s.add_sim_ns("ndp", 5.0);
        });
        handle.join().unwrap();
        assert_eq!(trace.snapshot().spans.len(), 0);
    }

    #[test]
    fn current_propagates_into_worker_threads() {
        assert!(Trace::current().is_none());
        let trace = Trace::new();
        let _g = trace.install();
        let handle = Trace::current().expect("installed");
        let worker = std::thread::spawn(move || {
            let _wg = handle.install();
            let _s = Span::enter("exec/morsel_worker0");
            add_sim_ns("other", 3.0);
        });
        worker.join().unwrap();
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "exec/morsel_worker0");
        assert_eq!(snap.sim_total_ns(), 3.0);
    }
}
