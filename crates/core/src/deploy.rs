//! End-to-end deployment: the Figure 2 workflow wired together.

use crate::{IronSafeError, Result};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_csa::{CostParams, CsaSystem, QueryReport, SharedCsaSystem, SystemConfig};
use ironsafe_monitor::monitor::{MonitorConfig, QueryRequest};
use ironsafe_monitor::{ProofOfCompliance, TrustedMonitor};
use ironsafe_policy::parse_policy;
use ironsafe_serve::{QueryServer, ServeConfig};
use ironsafe_sql::{Database, QueryResult};
use ironsafe_storage::SecurePager;
use ironsafe_faults::FaultPlan;
use ironsafe_tee::image::SoftwareImage;
use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, EnclaveSupervisor, Quote, SgxPlatform};
use ironsafe_tee::trustzone::{AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A data producer or consumer, identified by its key.
#[derive(Debug, Clone)]
pub struct Client {
    /// Identity key (the policy language's `sessionKeyIs` argument).
    pub key: String,
}

impl Client {
    /// A client with identity `key`.
    pub fn new(key: impl Into<String>) -> Self {
        Client { key: key.into() }
    }
}

/// The answer a client receives: results plus a proof of compliance.
#[derive(Debug)]
pub struct Response {
    /// Query results.
    pub result: QueryResult,
    /// Signed proof that the execution environment satisfied the policy.
    pub proof: ProofOfCompliance,
    /// Execution report (data movement, simulated cost).
    pub report: QueryReport,
    /// The query and policy the proof covers (for verification).
    query_text: String,
    policy_text: String,
}

impl Response {
    /// Verify the proof against the deployment's monitor key.
    pub fn verify_proof(&self, deployment: &Deployment) -> bool {
        self.proof.verify(
            &deployment.group,
            &deployment.monitor.public_key(),
            &self.query_text,
            &self.policy_text,
        )
    }
}

/// Builder for a [`Deployment`].
pub struct DeploymentBuilder {
    region: String,
    params: CostParams,
    seed: u64,
    host_fw: u32,
    storage_fw: u32,
    fault_plan: FaultPlan,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        DeploymentBuilder {
            region: "EU".into(),
            params: CostParams::default(),
            seed: 0x1705,
            host_fw: 5,
            storage_fw: 5,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl DeploymentBuilder {
    /// Deploy host and storage in `region`.
    pub fn region(mut self, region: impl Into<String>) -> Self {
        self.region = region.into();
        self
    }

    /// Override cost-model parameters.
    pub fn cost_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Deterministic seed for all generated key material.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Firmware versions reported by the nodes.
    pub fn firmware(mut self, host: u32, storage: u32) -> Self {
        self.host_fw = host;
        self.storage_fw = storage;
        self
    }

    /// Install a deterministic fault-injection plan covering the whole
    /// deployment: the secure pager (device/page/freshness sites), the
    /// supervised host enclave (crash, EPC pressure) and the RPMB
    /// device. [`FaultPlan::none`] by default.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Manufacture the hardware, boot it, and attest everything.
    pub fn build(self) -> Result<Deployment> {
        let group = Group::modp_1024();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- Host: SGX platform + supervised host-engine enclave. ------
        let platform = Arc::new(SgxPlatform::from_seed(&group, b"ironsafe-host-platform"));
        let host_image = SoftwareImage::new("host-engine", self.host_fw, b"ironsafe host engine".to_vec());
        let mut supervisor = EnclaveSupervisor::new(
            Arc::clone(&platform),
            host_image.clone(),
            EnclaveConfig {
                epc_limit_bytes: self.params.epc_limit_bytes,
                ..EnclaveConfig::default()
            },
            self.fault_plan.clone(),
        );
        let mut ias = AttestationService::new(&group);
        ias.register_platform(&platform);

        // --- Storage: TrustZone device, secure boot. --------------------
        let mfr = Manufacturer::from_seed(&group, b"ironsafe-storage-vendor");
        let vendor = KeyPair::derive(&group, b"ironsafe-storage-vendor", b"tz-manufacturer-root");
        let device = mfr.make_device("storage-0", 8, &mut rng);
        let images = BootImages {
            trusted_firmware: SignedImage::sign(
                &group,
                &vendor.secret,
                SoftwareImage::new("atf", 2, b"arm trusted firmware".to_vec()),
                &mut rng,
            ),
            trusted_os: SignedImage::sign(
                &group,
                &vendor.secret,
                SoftwareImage::new("optee", 34, b"op-tee 3.4".to_vec()),
                &mut rng,
            ),
            normal_world: SoftwareImage::new(
                "storage-normal-world",
                self.storage_fw,
                b"linux + csa runtime + storage engine".to_vec(),
            ),
        };
        let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng)
            .map_err(|e| IronSafeError::Monitor(ironsafe_monitor::MonitorError::Attestation(e.to_string())))?;

        // --- Monitor: pin the trusted stack, attest both nodes. ---------
        let config = MonitorConfig {
            expected_host_measurement: host_image.measure(),
            expected_nw_measurement: booted.nw_measurement,
            latest_fw: self.host_fw.max(self.storage_fw),
        };
        let mut monitor = TrustedMonitor::new(&group, self.seed ^ 0x0170, ias, mfr.root_public(), config);
        let host_session_keys = KeyPair::generate(&group, &mut rng);
        let commitment = ironsafe_crypto::sha256::sha256(&host_session_keys.public.to_bytes(&group));
        let quote = Quote::generate(&platform, supervisor.enclave(), &commitment, &mut rng);
        let host_cert = monitor.attest_host("host-0", &self.region, &quote, &host_session_keys.public)?;
        let challenge = monitor.storage_challenge();
        let response = AttestationTa::new(&booted).respond(challenge, &mut rng);
        monitor.attest_storage("storage-0", &self.region, &response)?;

        // --- Query processing system (scs: split + secure). -------------
        let storage_db = Database::new(
            SecurePager::create(
                {
                    let mut d = mfr.make_device("storage-0-medium", 8, &mut rng);
                    let _ = &mut d;
                    d
                },
                self.seed,
            )
            .map_err(|e| IronSafeError::Csa(ironsafe_csa::CsaError::Storage(e)))?,
        );
        let mut system = CsaSystem::from_database(SystemConfig::IronSafe, storage_db, self.params);
        system.set_fault_plan(self.fault_plan.clone());

        // Seal the deployment identity into the supervisor: after an
        // injected enclave crash, the restarted instance reloads this
        // blob (same platform seal key, same measurement) and the
        // deployment keeps serving without re-attestation.
        supervisor.seal_state(format!("ironsafe-deployment/{}", self.region).as_bytes(), &mut rng);

        let _ = host_cert;
        Ok(Deployment { group, monitor, system, supervisor, clock: 0 })
    }
}

/// A fully attested IronSafe deployment.
pub struct Deployment {
    group: Group,
    monitor: TrustedMonitor,
    system: CsaSystem,
    /// The supervised host enclave: crash → restart + sealed-state
    /// reload, EPC pressure → bounded retry.
    supervisor: EnclaveSupervisor,
    clock: i64,
}

impl Deployment {
    /// Start building a deployment.
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// The trusted monitor (regulator interface, attestation state).
    pub fn monitor(&self) -> &TrustedMonitor {
        &self.monitor
    }

    /// The CSA system (cost model, counters).
    pub fn system(&self) -> &CsaSystem {
        &self.system
    }

    /// Mutable CSA system access (benchmark harnesses).
    pub fn system_mut(&mut self) -> &mut CsaSystem {
        &mut self.system
    }

    /// The supervised host enclave (restart counter, sealed state).
    pub fn supervisor(&self) -> &EnclaveSupervisor {
        &self.supervisor
    }

    /// Register a database and its owner access policy with the monitor.
    ///
    /// Panics on unparsable policy text — policies are deployment inputs,
    /// not runtime data.
    pub fn create_database(&mut self, name: &str, access_policy: &str) {
        let policy = parse_policy(access_policy).expect("valid access policy");
        self.monitor.register_database(name, policy);
    }

    /// Bind a client identity to its reuse-bitmap bit.
    pub fn register_service_bit(&mut self, client: &Client, bit: u32) {
        self.monitor.register_service_bit(&client.key, bit);
    }

    /// Advance the logical clock (the `T` of `le(T, TIMESTAMP)`).
    pub fn set_time(&mut self, t: i64) {
        self.clock = t;
    }

    /// Current logical time.
    pub fn time(&self) -> i64 {
        self.clock
    }

    /// The paper's step 1–5 workflow: submit a query with an execution
    /// policy, get results plus a proof of compliance.
    pub fn submit(
        &mut self,
        client: &Client,
        database: &str,
        sql: &str,
        exec_policy: &str,
    ) -> Result<Response> {
        let request = QueryRequest {
            client_key: client.key.clone(),
            database: database.to_string(),
            sql: sql.to_string(),
            exec_policy: exec_policy.to_string(),
            access_time: self.clock,
        };
        let auth = self.monitor.authorize(&request)?;
        // The host engine runs inside the supervised enclave: entry is
        // where injected crashes and EPC pressure surface, and where
        // the supervisor transparently restarts (reloading its sealed
        // state) or retries before the query executes.
        self.supervisor.enter()?;
        self.system.set_session_key(auth.session_key);
        let report = match self.system.run_statement(&auth.statement) {
            Ok(report) => {
                self.supervisor.exit()?;
                report
            }
            Err(e) => {
                let _ = self.supervisor.exit();
                return Err(e.into());
            }
        };
        self.monitor.cleanup_session(auth.session_id)?;
        Ok(Response {
            result: report.result.clone(),
            proof: auth.proof,
            report,
            query_text: sql.to_string(),
            policy_text: exec_policy.to_string(),
        })
    }

    /// Turn this deployment into a running multi-session query server.
    ///
    /// The monitor and the CSA system move behind shared ownership: one
    /// system, one dataset, any number of concurrent sessions (see
    /// `ironsafe-serve`). The single-client [`submit`](Deployment::submit)
    /// workflow is what each admitted request runs through — policy
    /// check, rewrite, per-query session key, audit — just scheduled by
    /// the server's worker pool instead of the caller's thread.
    pub fn serve(self, config: ServeConfig) -> QueryServer {
        QueryServer::start(
            Arc::new(SharedCsaSystem::new(self.system)),
            Arc::new(parking_lot::Mutex::new(self.monitor)),
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> Deployment {
        let mut dep = Deployment::builder().build().unwrap();
        dep.create_database(
            "db",
            "read :- sessionKeyIs(alice) | sessionKeyIs(bob)\nwrite :- sessionKeyIs(alice)",
        );
        dep
    }

    #[test]
    fn end_to_end_insert_and_select() {
        let mut dep = deployment();
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT, b TEXT)", "").unwrap();
        dep.submit(&alice, "db", "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')", "").unwrap();
        let bob = Client::new("bob");
        let resp = dep.submit(&bob, "db", "SELECT b FROM t WHERE a >= 2 ORDER BY a", "").unwrap();
        assert_eq!(resp.result.rows().len(), 2);
        assert!(resp.verify_proof(&dep));
    }

    #[test]
    fn writes_denied_for_readers() {
        let mut dep = deployment();
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
        let bob = Client::new("bob");
        assert!(dep.submit(&bob, "db", "INSERT INTO t VALUES (1)", "").is_err());
        assert!(dep.submit(&Client::new("mallory"), "db", "SELECT a FROM t", "").is_err());
    }

    #[test]
    fn audit_log_records_the_workflow() {
        let mut dep = deployment();
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
        let _ = dep.submit(&Client::new("mallory"), "db", "SELECT a FROM t", "");
        let audit = dep.monitor().audit();
        assert!(audit.verify());
        assert!(audit.entries().iter().any(|e| e.message.contains("host attested")));
        assert!(audit.entries().iter().any(|e| e.message.contains("storage attested")));
        assert!(audit.entries().iter().any(|e| e.message.starts_with("GRANT")));
        assert!(audit.entries().iter().any(|e| e.message.starts_with("DENY")));
    }

    #[test]
    fn deployment_serves_concurrent_clients() {
        let mut dep = deployment();
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT, b TEXT)", "").unwrap();
        dep.submit(&alice, "db", "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')", "").unwrap();

        let server = dep.serve(ServeConfig::default());
        let a = server.open_session("alice", "db");
        let b = server.open_session("bob", "db");
        let tickets: Vec<_> = (0..4)
            .flat_map(|_| {
                [
                    server
                        .submit(a.id, ironsafe_serve::Job::Sql("SELECT a FROM t WHERE a >= 2".into()))
                        .unwrap(),
                    server
                        .submit(b.id, ironsafe_serve::Job::Sql("SELECT b FROM t ORDER BY a".into()))
                        .unwrap(),
                ]
            })
            .collect();
        for t in tickets {
            let resp = t.wait();
            let report = resp.outcome.expect("served query succeeds");
            assert!(!report.result.rows().is_empty());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.admitted.get(), 8);
        assert_eq!(metrics.completed.get(), 8);
    }

    #[test]
    fn injected_enclave_crash_is_recovered_by_the_supervisor() {
        use ironsafe_faults::{FaultPlan, FaultSite};

        // The third enclave entry crashes; the supervisor restarts the
        // enclave, reloads its sealed deployment state and the query
        // stream continues uninterrupted.
        let mut dep = Deployment::builder()
            .fault_plan(FaultPlan::seeded(11).with_nth(FaultSite::EnclaveCrash, 3))
            .build()
            .unwrap();
        dep.create_database("db", "read :- sessionKeyIs(alice)\nwrite :- sessionKeyIs(alice)");
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
        dep.submit(&alice, "db", "INSERT INTO t VALUES (1), (2)", "").unwrap();
        let resp = dep.submit(&alice, "db", "SELECT a FROM t ORDER BY a", "").unwrap();
        assert_eq!(resp.result.rows().len(), 2);
        assert!(resp.verify_proof(&dep));
        assert!(dep.supervisor().restarts() >= 1, "the crash must have forced a restart");
        assert_eq!(
            dep.supervisor().state(),
            Some(&b"ironsafe-deployment/EU"[..]),
            "sealed state survives the restart"
        );
    }

    #[test]
    fn exec_policy_is_enforced() {
        let mut dep = deployment();
        let alice = Client::new("alice");
        dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
        // EU deployment satisfies an EU policy, not a US one.
        assert!(dep.submit(&alice, "db", "SELECT a FROM t", "exec :- hostLocIs(EU)").is_ok());
        assert!(dep.submit(&alice, "db", "SELECT a FROM t", "exec :- hostLocIs(US)").is_err());
    }
}
