//! Criterion wrapper over the paper-figure harnesses: `cargo bench`
//! exercises every table and figure pipeline end-to-end (at a small scale
//! factor so the full suite stays fast).

use criterion::{criterion_group, criterion_main, Criterion};
use ironsafe_bench::*;
use std::time::Duration;

const BENCH_SF: f64 = 0.001;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("fig6_speedups", |b| b.iter(|| fig6(BENCH_SF)));
    g.bench_function("fig7_io_reduction", |b| b.iter(|| fig7(BENCH_SF)));
    g.bench_function("fig8_breakdown", |b| b.iter(|| fig8(BENCH_SF)));
    g.bench_function("fig9b_selectivity", |b| b.iter(|| fig9b(BENCH_SF, &[20, 60, 100])));
    g.bench_function("fig9c_storage_breakdown", |b| b.iter(|| fig9c(BENCH_SF, &[2, 9])));
    g.bench_function("fig10_cores", |b| b.iter(|| fig10(BENCH_SF, &[1, 16])));
    g.bench_function("fig11_memory", |b| b.iter(|| fig11(BENCH_SF, &[128 * 1024, 2 * 1024 * 1024])));
    g.bench_function("table4_attestation", |b| b.iter(table4));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
