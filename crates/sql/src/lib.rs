//! # ironsafe-sql
//!
//! A from-scratch relational engine playing the role SQLite plays in the
//! paper: SQL text in, rows out, with all table data living in 4 KiB pages
//! behind the [`ironsafe_storage::Pager`] abstraction — so the exact same
//! engine runs over plaintext storage (the non-secure baselines) and over
//! the encrypted + Merkle-protected secure store (IronSafe's storage
//! engine), just as the paper swaps SQLCipher under SQLite's pager.
//!
//! Pipeline: [`token`] → [`parser`] → [`ast`] → [`plan`] → [`exec`]
//! (volcano-style iterators) over [`heap`] storage described by the
//! [`catalog`].
//!
//! Supported SQL (chosen to cover the paper's 16 TPC-H queries and the
//! GDPR workloads): `CREATE TABLE`, `INSERT`, `UPDATE`, `DELETE`, and
//! `SELECT` with multi-table joins, `WHERE` (AND/OR/NOT, comparison,
//! `BETWEEN`, `IN`, `LIKE`), arithmetic, `CASE WHEN`, aggregates
//! (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`), `GROUP BY`, `HAVING`, `ORDER BY`,
//! `LIMIT`. Dates are ISO-8601 strings (lexicographic order is date
//! order), matching how the workload generator emits them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod catalog;
pub mod db;
pub mod exec;
pub mod expr;
pub mod heap;
pub mod meta;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod token;
pub mod value;

pub use db::{Database, QueryResult};
pub use schema::{Column, Row, Schema};
pub use value::{DataType, Value};

/// Errors raised by the SQL engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer rejected the input.
    Lex(String),
    /// Parser rejected the input.
    Parse(String),
    /// Planning failed (unknown table/column, unsupported shape).
    Plan(String),
    /// Runtime evaluation failed (type error, division by zero...).
    Eval(String),
    /// Underlying storage failure.
    Storage(ironsafe_storage::StorageError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "plan error: {m}"),
            SqlError::Eval(m) => write!(f, "eval error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ironsafe_storage::StorageError> for SqlError {
    fn from(e: ironsafe_storage::StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;
