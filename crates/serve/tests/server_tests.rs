//! End-to-end server tests: lifecycle refusal, backpressure,
//! determinism under concurrency, and the drain invariant.

mod common;

use common::{attested_monitor, shared_system};
use ironsafe_csa::{QueryReport, SystemConfig};
use ironsafe_monitor::MonitorError;
use ironsafe_serve::{AdmitError, Job, QueryServer, ServeConfig, ServeError};
use ironsafe_tpch::queries::{paper_queries, PaperQuery};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn server(config: ServeConfig, sys: SystemConfig) -> QueryServer {
    QueryServer::start(
        shared_system(sys, 0.002),
        Arc::new(Mutex::new(attested_monitor())),
        config,
    )
}

fn query(id: u8) -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == id).unwrap()
}

/// A seeded arrival schedule: (session index, query id), shuffled.
fn schedule(sessions: usize, per_session: usize, seed: u64) -> Vec<(usize, u8)> {
    let ids = [1u8, 6, 12];
    let mut jobs: Vec<(usize, u8)> = (0..sessions)
        .flat_map(|s| (0..per_session).map(move |i| (s, ids[(s + i) % ids.len()])))
        .collect();
    // Fisher–Yates with the seeded rng (the rand shim has no shuffle).
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..jobs.len()).rev() {
        let j = rng.gen_range(0..=i);
        jobs.swap(i, j);
    }
    jobs
}

/// Run one seeded schedule through a fresh server; returns per-job
/// reports in schedule order plus the final (admitted, completed).
fn run_schedule(sessions: usize, per_session: usize, seed: u64) -> (Vec<QueryReport>, u64, u64) {
    let srv = server(
        ServeConfig { workers: 4, queue_capacity: per_session + 2, ..Default::default() },
        SystemConfig::StorageOnlySecure,
    );
    let handles: Vec<_> =
        (0..sessions).map(|i| srv.open_session(&format!("client-{i}"), "db")).collect();
    let tickets: Vec<_> = schedule(sessions, per_session, seed)
        .into_iter()
        .map(|(s, qid)| srv.submit(handles[s].id, Job::Query(query(qid))).unwrap())
        .collect();
    let reports: Vec<QueryReport> =
        tickets.into_iter().map(|t| t.wait().outcome.expect("query must succeed")).collect();
    let metrics = srv.shutdown();
    (reports, metrics.admitted.get(), metrics.completed.get())
}

#[test]
fn stress_run_drains_and_is_deterministic_across_runs() {
    // ≥ 4 sessions × ≥ 8 queries each, twice, same seed.
    let (first, admitted_a, completed_a) = run_schedule(4, 8, 2022);
    let (second, admitted_b, completed_b) = run_schedule(4, 8, 2022);
    assert_eq!(admitted_a, 32);
    assert_eq!(completed_a, admitted_a, "every admitted query must complete");
    assert_eq!(admitted_b, completed_b);
    assert_eq!(first.len(), second.len());
    let mut total_a = 0.0;
    let mut total_b = 0.0;
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.result, b.result, "results must be bit-identical run-to-run");
        assert_eq!(a.breakdown, b.breakdown, "cost breakdowns must be bit-identical");
        total_a += a.total_ns();
        total_b += b.total_ns();
    }
    assert_eq!(total_a, total_b, "simulated-time totals must match run-to-run");
}

#[test]
fn concurrent_server_matches_serial_execution() {
    // The server's answers (and per-query CostBreakdowns) must be
    // bit-identical to running the same queries serially on one system.
    let sessions = 4;
    let per_session = 4;
    let (reports, _, _) = run_schedule(sessions, per_session, 7);
    let sched = schedule(sessions, per_session, 7);

    let serial_sys = shared_system(SystemConfig::StorageOnlySecure, 0.002);
    for ((_, qid), concurrent) in sched.iter().zip(&reports) {
        let (serial, _) = serial_sys.run_query(&query(*qid), [0x5e; 32]).unwrap();
        assert_eq!(serial.result, concurrent.result, "q{qid} result differs from serial");
        assert_eq!(serial.breakdown, concurrent.breakdown, "q{qid} breakdown differs from serial");
    }
}

#[test]
fn parallel_sessions_match_serial_and_dop_is_clamped() {
    let srv = server(ServeConfig { workers: 3, ..Default::default() }, SystemConfig::IronSafe);
    // Requested DOP is clamped to the worker-pool size.
    let fast = srv.open_session_with_dop("client-par", "db", 64);
    assert_eq!(srv.session_dop(fast.id), Some(3));
    let slow = srv.open_session("client-ser", "db");
    assert_eq!(srv.session_dop(slow.id), Some(1));

    for qid in [1u8, 6] {
        let par = srv.submit(fast.id, Job::Query(query(qid))).unwrap().wait();
        let ser = srv.submit(slow.id, Job::Query(query(qid))).unwrap().wait();
        let par = par.outcome.expect("parallel query must succeed");
        let ser = ser.outcome.expect("serial query must succeed");
        assert_eq!(par.result, ser.result, "q{qid}: DOP must not change rows");
        assert_eq!(par.breakdown, ser.breakdown, "q{qid}: DOP must not change simulated cost");
    }
    srv.shutdown();
}

#[test]
fn revoked_session_yields_clean_errors_not_panics() {
    let srv = server(ServeConfig::default(), SystemConfig::StorageOnlySecure);
    let s = srv.open_session("client-0", "db");

    // Revoke through the server: later admissions are refused outright.
    srv.revoke_session(s.id).unwrap();
    match srv.submit(s.id, Job::Query(query(6))) {
        Err(AdmitError::SessionClosed { session_id, reason }) => {
            assert_eq!(session_id, s.id);
            assert_eq!(reason, "revoked");
        }
        other => panic!("expected SessionClosed, got {other:?}"),
    }

    // Revocation racing an in-queue job: revoke at the monitor only, so
    // the server still admits — the worker's touch then surfaces a
    // clean per-request error in the response.
    let s2 = srv.open_session("client-1", "db");
    srv.sessions().revoke(s2.id).unwrap();
    let ticket = srv.submit(s2.id, Job::Query(query(6))).unwrap();
    match ticket.wait().outcome {
        Err(ServeError::Monitor(MonitorError::SessionClosed { reason: "revoked", .. })) => {}
        other => panic!("expected per-request SessionClosed error, got {other:?}"),
    }
    let metrics = srv.shutdown();
    assert_eq!(metrics.completed.get(), metrics.admitted.get());
}

#[test]
fn idle_sessions_expire_and_are_refused() {
    let srv = server(
        ServeConfig { idle_timeout: 0, ..Default::default() },
        SystemConfig::StorageOnlySecure,
    );
    let s = srv.open_session("client-0", "db");
    let expired = srv.expire_idle();
    assert!(expired.contains(&s.id));
    match srv.submit(s.id, Job::Query(query(6))) {
        Err(AdmitError::SessionClosed { reason, .. }) => assert_eq!(reason, "expired"),
        other => panic!("expected SessionClosed(expired), got {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn backpressure_rejects_instead_of_blocking() {
    // No workers: nothing drains, so admission decisions are exact.
    let srv = server(
        ServeConfig { workers: 0, queue_capacity: 2, max_pending: 3, ..Default::default() },
        SystemConfig::HostOnlyNonSecure,
    );
    let a = srv.open_session("client-a", "db");
    let b = srv.open_session("client-b", "db");

    let _t1 = srv.submit(a.id, Job::Query(query(6))).unwrap();
    let _t2 = srv.submit(a.id, Job::Query(query(6))).unwrap();
    // Session a's bounded queue is full.
    assert_eq!(
        srv.submit(a.id, Job::Query(query(6))).unwrap_err(),
        AdmitError::QueueFull { session_id: a.id }
    );
    // Server-wide backlog cap: one more queued job anywhere hits Busy.
    let _t3 = srv.submit(b.id, Job::Query(query(6))).unwrap();
    assert_eq!(srv.submit(b.id, Job::Query(query(6))).unwrap_err(), AdmitError::Busy);

    assert_eq!(srv.metrics().admitted.get(), 3);
    assert_eq!(srv.metrics().rejected.get(), 2);
    assert_eq!(srv.metrics().queue_depth.get(), 3);
}

#[test]
fn unknown_session_rejected() {
    let srv = server(
        ServeConfig { workers: 0, ..Default::default() },
        SystemConfig::HostOnlyNonSecure,
    );
    assert_eq!(
        srv.submit(999, Job::Query(query(6))).unwrap_err(),
        AdmitError::UnknownSession(999)
    );
}

#[test]
fn shutdown_drains_queued_work() {
    // Queue several jobs, then shut down immediately without waiting:
    // the drain must still answer every ticket.
    let srv = server(ServeConfig::default(), SystemConfig::HostOnlyNonSecure);
    let s = srv.open_session("client-0", "db");
    let tickets: Vec<_> =
        (0..6).map(|_| srv.submit(s.id, Job::Query(query(6))).unwrap()).collect();
    let metrics = srv.shutdown();
    assert_eq!(metrics.admitted.get(), 6);
    assert_eq!(metrics.completed.get(), 6);
    for t in tickets {
        t.wait().outcome.unwrap();
    }
}

#[test]
fn sql_path_enforces_policy_and_audits() {
    let monitor = Arc::new(Mutex::new(attested_monitor()));
    let srv = QueryServer::start(
        shared_system(SystemConfig::StorageOnlySecure, 0.002),
        Arc::clone(&monitor),
        ServeConfig::default(),
    );
    // Ka may read and write; Kz is denied by the access policy.
    let ka = srv.open_session("Ka", "db");
    let kz = srv.open_session("Kz", "db");

    let ok = srv
        .submit(ka.id, Job::Sql("SELECT COUNT(*) FROM region".into()))
        .unwrap()
        .wait();
    let report = ok.outcome.expect("authorized SELECT succeeds");
    match report.result {
        ironsafe_sql::QueryResult::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }

    let denied = srv
        .submit(kz.id, Job::Sql("SELECT COUNT(*) FROM region".into()))
        .unwrap()
        .wait();
    match denied.outcome {
        Err(ServeError::Monitor(MonitorError::PolicyViolation(_))) => {}
        other => panic!("expected policy violation, got {other:?}"),
    }

    // Per-session span roots recorded for both sessions.
    let trace = srv.session_trace(ka.id).unwrap();
    assert!(trace.spans.iter().any(|sp| sp.name.starts_with(&format!("session-{}", ka.id))));

    let metrics = srv.shutdown();
    assert_eq!(metrics.completed.get(), metrics.admitted.get());
    // The monitor's audit chain survived the concurrent appends, and
    // both the grant and the denial landed in it.
    let m = monitor.lock();
    assert!(m.audit().verify());
    assert!(m.audit().entries().iter().any(|e| e.message.starts_with("GRANT")));
    assert!(m.audit().entries().iter().any(|e| e.message.starts_with("DENY")));
}

#[test]
fn revoking_with_jobs_queued_drains_them_with_typed_errors() {
    // Revoke at the monitor only, so the server's admission path still
    // accepts jobs for the session — every one of them is queued against
    // an already-dead session and must drain with a clean per-request
    // SessionClosed error, never a panic or a dropped ticket.
    let srv = server(ServeConfig::default(), SystemConfig::StorageOnlySecure);
    let s = srv.open_session("client-0", "db");
    srv.sessions().revoke(s.id).unwrap();

    let tickets: Vec<_> =
        (0..5).map(|_| srv.submit(s.id, Job::Query(query(6))).unwrap()).collect();
    for t in tickets {
        match t.wait().outcome {
            Err(ServeError::Monitor(MonitorError::SessionClosed { reason: "revoked", .. })) => {}
            other => panic!("queued job must fail SessionClosed, got {other:?}"),
        }
    }

    // Server-side revocation on top refuses any further admission.
    srv.revoke_session(s.id).unwrap();
    match srv.submit(s.id, Job::Query(query(6))) {
        Err(AdmitError::SessionClosed { reason, .. }) => assert_eq!(reason, "revoked"),
        other => panic!("expected SessionClosed admission error, got {other:?}"),
    }

    let metrics = srv.shutdown();
    assert_eq!(metrics.admitted.get(), 5, "all five queued jobs were admitted");
    assert_eq!(metrics.completed.get(), metrics.admitted.get(), "drain invariant");
}

#[test]
fn slo_histograms_record_every_completed_job() {
    let srv = server(ServeConfig::default(), SystemConfig::HostOnlyNonSecure);
    let s = srv.open_session("client-0", "db");
    let tickets: Vec<_> =
        (0..4).map(|_| srv.submit(s.id, Job::Query(query(6))).unwrap()).collect();
    for t in tickets {
        t.wait().outcome.unwrap();
    }
    let metrics = srv.shutdown();
    let wait = metrics.queue_wait_ns.snapshot();
    let service = metrics.service_ns.snapshot();
    assert_eq!(wait.count, 4, "one queue-wait sample per executed job");
    assert_eq!(service.count, 4, "one service-time sample per executed job");
    assert!(service.sum > 0, "executing a query takes nonzero wall time");
}

#[test]
fn failed_request_dumps_flight_recorder_into_audit_trail() {
    use ironsafe_faults::{FaultPlan, FaultSite};

    let monitor = Arc::new(Mutex::new(attested_monitor()));
    let system = shared_system(SystemConfig::IronSafe, 0.002);
    let srv = QueryServer::start(Arc::clone(&system), Arc::clone(&monitor), ServeConfig::default());
    let a = srv.open_session("client-a", "db");

    // Exhaust the retry budget on every page read: the request fails and
    // the worker drains the TEE-resident flight recorder into the audit
    // trail, attributed to the failing client.
    system.with_system_mut(|s| {
        s.set_fault_plan(FaultPlan::seeded(5).with_rate(FaultSite::PageMacCorrupt, 1.0));
    });
    let failed = srv.submit(a.id, Job::Query(query(6))).unwrap().wait();
    assert!(failed.outcome.is_err(), "storm must fail the request");

    assert!(srv.metrics().flight_dumps.get() >= 1, "dump counted");
    {
        let m = monitor.lock();
        assert!(m.audit().verify(), "audit chain stays valid after the dump");
        let flight: Vec<_> =
            m.audit().entries().iter().filter(|e| e.stream == "flight").cloned().collect();
        assert!(!flight.is_empty(), "flight-recorder lines land in the audit trail");
        assert!(flight.iter().all(|e| e.client_key == "client-a"));
        assert!(
            flight.iter().any(|e| e.message.contains("integrity violation")),
            "events name the integrity fault: {flight:?}"
        );
    }

    // The recorder was drained: a healthy follow-up failure-free run
    // leaves nothing new to dump.
    system.with_system_mut(|s| s.set_fault_plan(FaultPlan::none()));
    let ok = srv.submit(a.id, Job::Query(query(6))).unwrap().wait();
    ok.outcome.expect("cleared plan runs clean");
    assert!(system.take_flight_dump().is_empty(), "recorder drained by the audit dump");

    srv.shutdown();
}

#[test]
fn injected_integrity_fault_degrades_one_request_and_is_audited() {
    use ironsafe_faults::{FaultPlan, FaultSite};

    let monitor = Arc::new(Mutex::new(attested_monitor()));
    let system = shared_system(SystemConfig::IronSafe, 0.002);
    let srv = QueryServer::start(Arc::clone(&system), Arc::clone(&monitor), ServeConfig::default());
    let a = srv.open_session("client-a", "db");
    let b = srv.open_session("client-b", "db");

    // Every page read MAC-corrupts: retries exhaust, the request fails.
    system.with_system_mut(|s| {
        s.set_fault_plan(FaultPlan::seeded(5).with_rate(FaultSite::PageMacCorrupt, 1.0));
    });
    let failed = srv.submit(a.id, Job::Query(query(6))).unwrap().wait();
    match failed.outcome {
        Err(ServeError::Exec(m)) => {
            assert!(m.contains("integrity"), "typed integrity error, got {m:?}")
        }
        other => panic!("expected per-request integrity failure, got {other:?}"),
    }

    // The violation was recorded in the monitor's audit log.
    assert!(srv.metrics().violations_audited.get() >= 1);
    {
        let m = monitor.lock();
        assert!(m.audit().verify(), "audit chain stays valid");
        assert!(
            m.audit()
                .entries()
                .iter()
                .any(|e| e.stream == "violation" && e.message.contains("integrity")),
            "violation entry must be in the audit log"
        );
    }

    // Only that request failed: with the plan cleared, the other
    // session's query runs to completion over the same shared system.
    system.with_system_mut(|s| s.set_fault_plan(FaultPlan::none()));
    let ok = srv.submit(b.id, Job::Query(query(6))).unwrap().wait();
    ok.outcome.expect("healthy session is unaffected by the earlier fault");

    let metrics = srv.shutdown();
    assert_eq!(metrics.completed.get(), metrics.admitted.get());
}
