//! The paper's TPC-H query set in the engine's dialect.
//!
//! The paper runs 16 of the 22 TPC-H queries (the rest don't partition
//! usefully). We express the same set; queries whose reference SQL needs
//! subqueries (Q2, Q4, Q13, Q16, Q18, Q21) are rewritten into
//! shape-preserving join/aggregate forms or explicit two-stage scripts —
//! the same flattening the paper's manual partitioning performs. Constant
//! date arithmetic (e.g. `date '1998-12-01' - interval '90' day`) is
//! pre-computed, as dates are ISO text in the engine.

/// One stage of a (possibly multi-stage) query script.
#[derive(Debug, Clone)]
pub struct QueryStage {
    /// The `SELECT` text.
    pub sql: String,
    /// When set, materialize this stage's result as a host-side temp
    /// table with this name instead of returning it.
    pub into: Option<String>,
}

impl QueryStage {
    fn output(sql: &str) -> Self {
        QueryStage { sql: sql.to_string(), into: None }
    }

    fn temp(sql: &str, into: &str) -> Self {
        QueryStage { sql: sql.to_string(), into: Some(into.to_string()) }
    }
}

/// A named query from the paper's evaluation.
#[derive(Debug, Clone)]
pub struct PaperQuery {
    /// TPC-H query number.
    pub id: u8,
    /// Short descriptor.
    pub name: &'static str,
    /// Stages; the last stage produces the result.
    pub stages: Vec<QueryStage>,
}

/// The query set used across the paper's figures.
pub fn paper_queries() -> Vec<PaperQuery> {
    vec![
        PaperQuery {
            id: 1,
            name: "pricing summary report",
            stages: vec![QueryStage::output(
                "SELECT l_returnflag, l_linestatus, \
                   SUM(l_quantity) AS sum_qty, \
                   SUM(l_extendedprice) AS sum_base_price, \
                   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                   SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
                   AVG(l_quantity) AS avg_qty, \
                   AVG(l_extendedprice) AS avg_price, \
                   AVG(l_discount) AS avg_disc, \
                   COUNT(*) AS count_order \
                 FROM lineitem \
                 WHERE l_shipdate <= '1998-09-02' \
                 GROUP BY l_returnflag, l_linestatus \
                 ORDER BY l_returnflag, l_linestatus",
            )],
        },
        PaperQuery {
            id: 2,
            name: "minimum cost supplier (flattened)",
            stages: vec![QueryStage::output(
                "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone \
                 FROM part, supplier, partsupp, nation, region \
                 WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey \
                   AND p_size = 15 AND p_type LIKE '%BRASS' \
                   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                   AND r_name = 'EUROPE' \
                 ORDER BY s_acctbal DESC, n_name, s_name, p_partkey \
                 LIMIT 100",
            )],
        },
        PaperQuery {
            id: 3,
            name: "shipping priority",
            stages: vec![QueryStage::output(
                "SELECT l_orderkey, \
                   SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                   o_orderdate, o_shippriority \
                 FROM customer, orders, lineitem \
                 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
                   AND l_orderkey = o_orderkey \
                   AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15' \
                 GROUP BY l_orderkey, o_orderdate, o_shippriority \
                 ORDER BY revenue DESC, o_orderdate \
                 LIMIT 10",
            )],
        },
        PaperQuery {
            id: 4,
            name: "order priority checking (semi-join form)",
            stages: vec![QueryStage::output(
                "SELECT o_orderpriority, COUNT(DISTINCT o_orderkey) AS order_count \
                 FROM orders, lineitem \
                 WHERE o_orderkey = l_orderkey \
                   AND o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' \
                   AND l_commitdate < l_receiptdate \
                 GROUP BY o_orderpriority \
                 ORDER BY o_orderpriority",
            )],
        },
        PaperQuery {
            id: 5,
            name: "local supplier volume",
            stages: vec![QueryStage::output(
                "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM customer, orders, lineitem, supplier, nation, region \
                 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                   AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
                   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                   AND r_name = 'ASIA' \
                   AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' \
                 GROUP BY n_name \
                 ORDER BY revenue DESC",
            )],
        },
        PaperQuery {
            id: 6,
            name: "forecasting revenue change",
            stages: vec![QueryStage::output(
                "SELECT SUM(l_extendedprice * l_discount) AS revenue \
                 FROM lineitem \
                 WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
                   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
            )],
        },
        PaperQuery {
            id: 7,
            name: "volume shipping",
            stages: vec![QueryStage::output(
                "SELECT n_name AS supp_nation, YEAR(l_shipdate) AS l_year, \
                   SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM supplier, lineitem, orders, nation \
                 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
                   AND s_nationkey = n_nationkey \
                   AND n_name IN ('FRANCE', 'GERMANY') \
                   AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' \
                 GROUP BY n_name, YEAR(l_shipdate) \
                 ORDER BY supp_nation, l_year",
            )],
        },
        PaperQuery {
            id: 8,
            name: "national market share",
            stages: vec![QueryStage::output(
                "SELECT YEAR(o_orderdate) AS o_year, \
                   SUM(CASE WHEN n_name = 'BRAZIL' \
                       THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
                     / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share \
                 FROM part, supplier, lineitem, orders, nation \
                 WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey \
                   AND l_orderkey = o_orderkey AND s_nationkey = n_nationkey \
                   AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' \
                   AND p_type = 'ECONOMY ANODIZED STEEL' \
                 GROUP BY YEAR(o_orderdate) \
                 ORDER BY o_year",
            )],
        },
        PaperQuery {
            id: 9,
            name: "product type profit measure",
            stages: vec![QueryStage::output(
                "SELECT n_name AS nation, YEAR(o_orderdate) AS o_year, \
                   SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit \
                 FROM part, supplier, lineitem, partsupp, orders, nation \
                 WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey \
                   AND ps_partkey = l_partkey AND p_partkey = l_partkey \
                   AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
                   AND p_name LIKE '%green%' \
                 GROUP BY n_name, YEAR(o_orderdate) \
                 ORDER BY nation, o_year DESC",
            )],
        },
        PaperQuery {
            id: 10,
            name: "returned item reporting",
            stages: vec![QueryStage::output(
                "SELECT c_custkey, c_name, \
                   SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                   c_acctbal, n_name, c_address, c_phone \
                 FROM customer, orders, lineitem, nation \
                 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                   AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' \
                   AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
                 GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address \
                 ORDER BY revenue DESC \
                 LIMIT 20",
            )],
        },
        PaperQuery {
            id: 12,
            name: "shipping modes and order priority",
            stages: vec![QueryStage::output(
                "SELECT l_shipmode, \
                   SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' \
                       THEN 1 ELSE 0 END) AS high_line_count, \
                   SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' \
                       THEN 1 ELSE 0 END) AS low_line_count \
                 FROM orders, lineitem \
                 WHERE o_orderkey = l_orderkey \
                   AND l_shipmode IN ('MAIL', 'SHIP') \
                   AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
                   AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' \
                 GROUP BY l_shipmode \
                 ORDER BY l_shipmode",
            )],
        },
        PaperQuery {
            id: 13,
            name: "customer distribution (two-stage)",
            stages: vec![
                QueryStage::temp(
                    "SELECT o_custkey AS ck, COUNT(*) AS c_count \
                     FROM orders \
                     WHERE o_comment NOT LIKE '%blue%green%' \
                     GROUP BY o_custkey",
                    "cust_orders",
                ),
                QueryStage::output(
                    "SELECT c_count, COUNT(*) AS custdist \
                     FROM cust_orders \
                     GROUP BY c_count \
                     ORDER BY custdist DESC, c_count DESC",
                ),
            ],
        },
        PaperQuery {
            id: 14,
            name: "promotion effect",
            stages: vec![QueryStage::output(
                "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' \
                     THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
                   / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
                 FROM lineitem, part \
                 WHERE l_partkey = p_partkey \
                   AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'",
            )],
        },
        PaperQuery {
            id: 16,
            name: "parts/supplier relationship",
            stages: vec![QueryStage::output(
                "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
                 FROM partsupp, part \
                 WHERE p_partkey = ps_partkey \
                   AND p_brand <> 'Brand#45' \
                   AND p_type NOT LIKE 'MEDIUM POLISHED%' \
                   AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
                 GROUP BY p_brand, p_type, p_size \
                 ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
            )],
        },
        PaperQuery {
            id: 18,
            name: "large volume customer (two-stage)",
            stages: vec![
                QueryStage::temp(
                    "SELECT l_orderkey AS big_okey, SUM(l_quantity) AS total_qty \
                     FROM lineitem \
                     GROUP BY l_orderkey \
                     HAVING SUM(l_quantity) > 250",
                    "big_orders",
                ),
                QueryStage::output(
                    "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, total_qty \
                     FROM big_orders, orders, customer \
                     WHERE big_okey = o_orderkey AND c_custkey = o_custkey \
                     ORDER BY o_totalprice DESC, o_orderdate \
                     LIMIT 100",
                ),
            ],
        },
        PaperQuery {
            id: 19,
            name: "discounted revenue",
            stages: vec![QueryStage::output(
                "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM lineitem, part \
                 WHERE p_partkey = l_partkey \
                   AND l_shipinstruct = 'DELIVER IN PERSON' \
                   AND l_shipmode IN ('AIR', 'REG AIR') \
                   AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) \
                     OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10) \
                     OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))",
            )],
        },
        PaperQuery {
            id: 21,
            name: "suppliers who kept orders waiting (flattened)",
            stages: vec![QueryStage::output(
                "SELECT s_name, COUNT(*) AS numwait \
                 FROM supplier, lineitem, orders, nation \
                 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
                   AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate \
                   AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
                 GROUP BY s_name \
                 ORDER BY numwait DESC, s_name \
                 LIMIT 100",
            )],
        },
    ]
}

/// Fetch one query by TPC-H number.
pub fn query(id: u8) -> Option<PaperQuery> {
    paper_queries().into_iter().find(|q| q.id == id)
}

/// Run a (multi-stage) query against a database, materializing temp
/// stages, and return the final result.
pub fn run_query(
    db: &mut ironsafe_sql::Database,
    q: &PaperQuery,
) -> ironsafe_sql::Result<ironsafe_sql::QueryResult> {
    let mut temps = Vec::new();
    let mut last = None;
    for stage in &q.stages {
        let result = db.execute(&stage.sql)?;
        match &stage.into {
            Some(name) => {
                db.create_table(name, result.schema())?;
                let rows = match &result {
                    ironsafe_sql::QueryResult::Rows { rows, .. } => rows.clone(),
                    _ => Vec::new(),
                };
                db.insert_rows(name, rows)?;
                temps.push(name.clone());
            }
            None => last = Some(result),
        }
    }
    // Session cleanup: drop the temp tables (the paper's monitor does the
    // same after each client request).
    for t in temps {
        db.execute(&format!("DROP TABLE {t}"))?;
    }
    last.ok_or_else(|| ironsafe_sql::SqlError::Plan("query has no output stage".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, load_into};
    use ironsafe_sql::Database;
    use ironsafe_storage::pager::PlainPager;

    #[test]
    fn all_queries_parse() {
        for q in paper_queries() {
            for stage in &q.stages {
                ironsafe_sql::parser::parse_statement(&stage.sql)
                    .unwrap_or_else(|e| panic!("Q{} stage failed to parse: {e}", q.id));
            }
        }
    }

    #[test]
    fn query_set_matches_paper() {
        let ids: Vec<u8> = paper_queries().iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 16, 18, 19, 21]);
    }

    #[test]
    fn all_queries_execute_on_generated_data() {
        let data = generate(0.002, 42);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &data).unwrap();
        for q in paper_queries() {
            let r = run_query(&mut db, &q).unwrap_or_else(|e| panic!("Q{} failed: {e}", q.id));
            // Every query must produce a schema; most produce rows at SF 0.002.
            assert!(!r.schema().is_empty(), "Q{} has empty schema", q.id);
        }
    }

    #[test]
    fn q1_aggregates_are_consistent() {
        let data = generate(0.002, 42);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &data).unwrap();
        let q = query(1).unwrap();
        let r = run_query(&mut db, &q).unwrap();
        assert!(!r.rows().is_empty());
        for row in r.rows() {
            let sum_qty = row[2].as_f64().unwrap();
            let avg_qty = row[6].as_f64().unwrap();
            let count = row[9].as_i64().unwrap() as f64;
            assert!((sum_qty / count - avg_qty).abs() < 1e-6, "sum/count == avg");
            let base = row[3].as_f64().unwrap();
            let disc = row[4].as_f64().unwrap();
            assert!(disc <= base, "discounted <= base");
        }
    }

    #[test]
    fn q6_returns_single_revenue_row() {
        let data = generate(0.002, 42);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &data).unwrap();
        let r = run_query(&mut db, &query(6).unwrap()).unwrap();
        assert_eq!(r.rows().len(), 1);
        assert!(r.rows()[0][0].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn q13_two_stage_cleans_up_temp() {
        let data = generate(0.002, 42);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &data).unwrap();
        let r = run_query(&mut db, &query(13).unwrap()).unwrap();
        assert!(!r.rows().is_empty());
        assert!(!db.catalog().has_table("cust_orders"), "temp table dropped");
    }

    #[test]
    fn q18_threshold_filters_orders() {
        let data = generate(0.002, 42);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &data).unwrap();
        let r = run_query(&mut db, &query(18).unwrap()).unwrap();
        for row in r.rows() {
            assert!(row[5].as_f64().unwrap() > 250.0, "only big orders survive");
        }
    }
}
