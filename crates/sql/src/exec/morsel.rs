//! Morsel-driven parallel scan and aggregation.
//!
//! The serial operators pull one row at a time through one core. For
//! read-only plans over heap tables, this module splits the heap's page
//! list into fixed-size **morsels**, hands them to a pool of worker
//! threads (bounded by [`Dop`] and the machine's available
//! parallelism), and merges per-morsel results in morsel order — which
//! *is* page order, which *is* the serial row order.
//!
//! Each worker claims morsels off a shared atomic cursor, batch-reads
//! the morsel's pages through [`Pager::read_pages`] (one pager lock per
//! morsel, pipelined decrypt + verify for secure pagers), then decodes,
//! filters, and pre-evaluates expressions outside the lock with a reused
//! scratch row. With [`ExecOptions::vectorized`] set, each morsel is
//! instead decoded **once** into a column-major
//! [`ColumnBatch`](crate::batch::ColumnBatch) and predicates/aggregate
//! inputs run vector-at-a-time over a selection bitmap
//! ([`crate::expr::filter_vec`] / [`crate::expr::eval_vec`]) — same
//! rows, same stats, fewer per-row allocations and dispatches.
//!
//! **Determinism invariant**: parallel execution buys wall-clock time
//! only — `QueryResult` rows, `CostBreakdown`s and `PagerStats` deltas
//! are bit-identical to serial execution at any DOP. Scans preserve row
//! order by construction. Aggregation is the subtle part: float
//! accumulation is not associative and group order is first-seen, so
//! workers only *pre-evaluate* per-row expressions; a single-threaded
//! merge replays the exact serial [`GroupAcc`] state machine in row
//! order. Page-level counters commute, so batched out-of-order reads
//! leave every stats delta unchanged.

use crate::ast::Expr;
use crate::batch::ColumnBatch;
use crate::exec::aggregate::{agg_output_schema, AggSpec, GroupAcc};
use crate::exec::{BoxOp, Operator};
use crate::expr::{bind, eval_bound, eval_vec, filter_vec, BoundExpr};
use crate::heap::{scan_page_columns, scan_page_rows, HeapFile, SharedPager};
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::{Result, SqlError};
use ironsafe_obs::{Counter, Registry, Span, Trace, TraceCtx};
use ironsafe_storage::pager::PageId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pages per morsel when [`ExecOptions::morsel_pages`] is not overridden.
pub const DEFAULT_MORSEL_PAGES: usize = 16;

/// Degree of parallelism for morsel execution. `Dop::new(1)` (the
/// default) keeps every plan on the serial operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dop(usize);

impl Dop {
    /// Clamp `n` to at least 1.
    pub fn new(n: usize) -> Self {
        Dop(n.max(1))
    }

    /// Worker count.
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Dop {
    fn default() -> Self {
        Dop(1)
    }
}

/// Live `exec.morsel.*` counters bumped by morsel workers.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Parallel scans dispatched (`exec.morsel.scans`).
    pub scans: Counter,
    /// Morsels claimed by workers (`exec.morsel.dispatched`).
    pub morsels: Counter,
    /// Rows decoded by morsel workers (`exec.morsel.rows`).
    pub rows: Counter,
}

impl ExecMetrics {
    /// Attach every cell to `registry` under its `exec.morsel.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("exec.morsel.scans", &self.scans);
        registry.register_counter("exec.morsel.dispatched", &self.morsels);
        registry.register_counter("exec.morsel.rows", &self.rows);
    }
}

/// Per-morsel scan telemetry: `(rows_in, rows_out)` around the
/// pushed-down predicate, indexed by morsel number.
///
/// The adaptive planner attaches one of these to a fragment scan's
/// [`ExecOptions`]; after the scan it reads the slots to compare each
/// morsel's *observed* selectivity against its estimate and decide
/// whether the remaining placement still pays (mid-flight re-planning).
/// Slots are keyed by morsel index, not completion order, so the
/// recorded sequence is identical at any DOP — a re-plan decision
/// derived from it is deterministic.
#[derive(Debug, Default)]
pub struct ScanWatch {
    slots: Mutex<Vec<(u64, u64)>>,
}

impl ScanWatch {
    /// Fresh watch with no recorded morsels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one morsel's pre-/post-predicate row counts. Safe to call
    /// from any worker; last write per index wins (each morsel is
    /// executed exactly once, so there is no contention in practice).
    pub fn record(&self, morsel: usize, rows_in: u64, rows_out: u64) {
        let mut slots = self.slots.lock();
        if slots.len() <= morsel {
            slots.resize(morsel + 1, (0, 0));
        }
        slots[morsel] = (rows_in, rows_out);
    }

    /// Drain the recorded `(rows_in, rows_out)` slots, in morsel order.
    pub fn take(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut *self.slots.lock())
    }

    /// Copy of the recorded slots without draining them.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.slots.lock().clone()
    }
}

/// Knobs for morsel execution, threaded from the session/system down to
/// the planner.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker count; 1 selects the serial operators.
    pub dop: Dop,
    /// Pages per morsel.
    pub morsel_pages: usize,
    /// Spawn exactly `dop` workers even beyond the machine's available
    /// parallelism. Off by default: the pool is additionally capped at
    /// `std::thread::available_parallelism()`, because surplus threads
    /// on saturated cores cost context switches without buying any
    /// wall-clock time. Tests force it on to exercise cross-thread
    /// determinism regardless of the host's core count.
    pub oversubscribe: bool,
    /// Decode morsels into column batches and evaluate predicates and
    /// aggregate inputs vector-at-a-time ([`crate::expr::eval_vec`])
    /// instead of row-at-a-time. Output rows, `CostBreakdown`s and
    /// `PagerStats` deltas stay bit-identical to the scalar operators —
    /// vectorization, like parallelism, buys wall-clock only.
    pub vectorized: bool,
    /// Live counters shared by every scan run under these options.
    pub metrics: ExecMetrics,
    /// When set, scans record per-morsel `(rows_in, rows_out)` into the
    /// watch. Forces the morsel driver even at DOP 1 (the serial morsel
    /// path is bit-identical to the serial operators, so this changes
    /// telemetry only, never rows or stats).
    pub watch: Option<Arc<ScanWatch>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            dop: Dop::default(),
            morsel_pages: DEFAULT_MORSEL_PAGES,
            oversubscribe: false,
            vectorized: false,
            metrics: ExecMetrics::default(),
            watch: None,
        }
    }
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Parallel execution with `dop` workers.
    pub fn with_dop(dop: usize) -> Self {
        ExecOptions { dop: Dop::new(dop), ..Self::default() }
    }

    /// Same options with vectorized execution switched `on`.
    pub fn with_vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// True when plans should use the morsel operators.
    pub fn parallel(&self) -> bool {
        self.dop.get() > 1
    }

    /// Same options with a [`ScanWatch`] attached.
    pub fn with_watch(mut self, watch: Arc<ScanWatch>) -> Self {
        self.watch = Some(watch);
        self
    }
}

/// A contiguous run of heap page indexes, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First page index.
    pub start: usize,
    /// One past the last page index.
    pub end: usize,
}

/// Split `num_pages` heap pages into fixed-size morsels. Every page
/// index in `0..num_pages` lands in exactly one morsel; concatenating
/// the morsels in order yields `0..num_pages`.
pub fn partition_pages(num_pages: usize, morsel_pages: usize) -> Vec<Morsel> {
    let size = morsel_pages.max(1);
    let mut morsels = Vec::with_capacity(num_pages.div_ceil(size));
    let mut start = 0;
    while start < num_pages {
        let end = (start + size).min(num_pages);
        morsels.push(Morsel { start, end });
        start = end;
    }
    morsels
}

/// One heap scan the morsel engine can parallelize: the table's heap,
/// the pager it lives on, the scan schema, and an optional pushed-down
/// predicate evaluated inside the workers.
#[derive(Clone)]
pub struct MorselSource {
    /// Scan output schema (the table's columns).
    pub schema: Schema,
    /// The table's page list.
    pub heap: HeapFile,
    /// Pager the pages live on.
    pub pager: SharedPager,
    /// Pushed-down filter; rows failing it are dropped inside workers
    /// without being cloned out of the scratch buffer.
    pub pred: Option<Expr>,
}

/// Run `per_row` over every row of `source` (post-predicate), folding
/// each morsel's rows into a fresh `M`, morsels in parallel. Returns the
/// per-morsel accumulators in morsel order — i.e. in serial row order —
/// so callers merge without re-sorting. The first error, by morsel
/// order, is returned. Folding into per-morsel state (rather than
/// emitting per-row values) lets callers amortize allocations across a
/// whole morsel.
fn run_morsels<M, F>(source: &MorselSource, opts: &ExecOptions, per_row: F) -> Result<Vec<M>>
where
    M: Default + Send,
    F: Fn(&Row, &mut M) -> Result<()> + Sync,
{
    let payload = source.pager.lock().payload_size();
    let ncols = source.schema.len();
    let morsels = partition_pages(source.heap.pages.len(), opts.morsel_pages);
    opts.metrics.scans.inc();

    // Bind the predicate once: per-row evaluation then skips column-name
    // resolution entirely (see `crate::expr::bind`).
    let pred: Option<BoundExpr> = match &source.pred {
        Some(p) => Some(bind(p, &source.schema)?),
        None => None,
    };
    let pred = pred.as_ref();

    // Per-morsel kernel: one batched read under the pager lock — on a
    // secure pager the whole morsel shares a single Merkle climb
    // (`verify_batch`), so contiguous page ids also minimize freshness
    // hashing — then decode + filter + fold outside it with a reused
    // scratch row. Each morsel refines the ambient [`TraceCtx`] with its
    // index and runs inside its own span; a failed morsel (fault
    // exhaustion, violation) tags the span before it closes, so chaos
    // traces stay well-formed trees.
    let work = |i: usize, m: &Morsel, scratch: &mut Row| -> Result<M> {
        let _ctx = TraceCtx::current().map(|c| c.with_morsel(i as u64).install());
        let span = Span::enter("exec/morsel");
        let body = |scratch: &mut Row| -> Result<M> {
            let ids: Vec<PageId> = source.heap.pages[m.start..m.end].to_vec();
            let mut buf = vec![0u8; ids.len() * payload];
            source.pager.lock().read_pages(&ids, &mut buf).map_err(SqlError::from)?;
            opts.metrics.morsels.inc();
            let mut acc = M::default();
            let mut rows_seen = 0u64;
            let mut rows_kept = 0u64;
            for page in buf.chunks_exact(payload) {
                scan_page_rows(page, ncols, scratch, |row| {
                    rows_seen += 1;
                    if let Some(pred) = pred {
                        if !eval_bound(pred, row)?.is_truthy() {
                            return Ok(());
                        }
                    }
                    rows_kept += 1;
                    per_row(row, &mut acc)
                })?;
            }
            opts.metrics.rows.add(rows_seen);
            if let Some(watch) = &opts.watch {
                watch.record(i, rows_seen, rows_kept);
            }
            Ok(acc)
        };
        let result = body(scratch);
        if result.is_err() {
            span.fail("exec.morsel.failed");
        }
        result
    };

    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = if opts.oversubscribe { usize::MAX } else { hw };
    let nworkers = opts.dop.get().min(morsels.len()).min(cap).max(1);
    if nworkers <= 1 {
        let mut scratch: Row = Vec::with_capacity(ncols);
        let mut out = Vec::with_capacity(morsels.len());
        for (i, m) in morsels.iter().enumerate() {
            out.push(work(i, m, &mut scratch)?);
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<Result<M>>>> =
        morsels.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let trace = Trace::current();
    // The trace ctx is thread-local: capture the query's ctx here and
    // re-install it inside each worker so morsel spans stitch into the
    // same query id across threads.
    let ctx = TraceCtx::current();
    crossbeam::thread::scope(|s| {
        for w in 0..nworkers {
            let trace = trace.clone();
            let (slots, cursor, morsels, work) = (&slots, &cursor, &morsels, &work);
            s.spawn(move |_| {
                // Workers join the parent's trace so their spans land in
                // the same timeline; they attribute no simulated time
                // (parallelism buys wall-clock, not simulated time).
                let _guard = trace.as_ref().map(|t| t.install());
                let _ctx_guard = ctx.map(|c| c.install());
                let name = format!("exec/morsel_worker{w}");
                let _span = Span::enter(&name);
                let mut scratch: Row = Vec::with_capacity(ncols);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= morsels.len() {
                        break;
                    }
                    *slots[i].lock() = Some(work(i, &morsels[i], &mut scratch));
                }
            });
        }
    })
    .expect("morsel workers do not panic");

    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner().expect("every morsel was claimed") {
            Ok(m) => out.push(m),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Vectorized twin of [`run_morsels`]: each morsel's pages are decoded
/// **once** into a column-major [`ColumnBatch`], the pushed-down
/// predicate runs vector-at-a-time over a selection bitmap
/// ([`filter_vec`]), and `per_batch` folds the surviving lanes into a
/// fresh `M`. Lane order within a batch is page order, and batches are
/// returned in morsel order, so callers see serial row order exactly as
/// with the scalar driver. Spans, trace contexts and `exec.morsel.*`
/// counters are bumped identically to [`run_morsels`] (rows counts all
/// decoded lanes, pre-filter).
fn run_morsels_vec<M, F>(source: &MorselSource, opts: &ExecOptions, per_batch: F) -> Result<Vec<M>>
where
    M: Default + Send,
    F: Fn(&ColumnBatch, &[bool], &mut M) -> Result<()> + Sync,
{
    let payload = source.pager.lock().payload_size();
    let ncols = source.schema.len();
    let morsels = partition_pages(source.heap.pages.len(), opts.morsel_pages);
    opts.metrics.scans.inc();

    let pred: Option<BoundExpr> = match &source.pred {
        Some(p) => Some(bind(p, &source.schema)?),
        None => None,
    };
    let pred = pred.as_ref();

    // Per-morsel kernel: one batched read under the pager lock (same
    // shared Merkle climb as the scalar driver), then a single columnar
    // decode and one vectorized predicate pass outside it.
    let work = |i: usize, m: &Morsel| -> Result<M> {
        let _ctx = TraceCtx::current().map(|c| c.with_morsel(i as u64).install());
        let span = Span::enter("exec/morsel");
        let body = || -> Result<M> {
            let ids: Vec<PageId> = source.heap.pages[m.start..m.end].to_vec();
            let mut buf = vec![0u8; ids.len() * payload];
            source.pager.lock().read_pages(&ids, &mut buf).map_err(SqlError::from)?;
            opts.metrics.morsels.inc();
            let mut batch = ColumnBatch::new(ncols);
            for page in buf.chunks_exact(payload) {
                scan_page_columns(page, ncols, &mut batch)?;
            }
            opts.metrics.rows.add(batch.len() as u64);
            let mut sel = vec![true; batch.len()];
            if let Some(pred) = pred {
                filter_vec(pred, &batch, &mut sel)?;
            }
            if let Some(watch) = &opts.watch {
                let kept = sel.iter().filter(|live| **live).count() as u64;
                watch.record(i, batch.len() as u64, kept);
            }
            let mut acc = M::default();
            per_batch(&batch, &sel, &mut acc)?;
            Ok(acc)
        };
        let result = body();
        if result.is_err() {
            span.fail("exec.morsel.failed");
        }
        result
    };

    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = if opts.oversubscribe { usize::MAX } else { hw };
    let nworkers = opts.dop.get().min(morsels.len()).min(cap).max(1);
    if nworkers <= 1 {
        let mut out = Vec::with_capacity(morsels.len());
        for (i, m) in morsels.iter().enumerate() {
            out.push(work(i, m)?);
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<Result<M>>>> =
        morsels.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let trace = Trace::current();
    let ctx = TraceCtx::current();
    crossbeam::thread::scope(|s| {
        for w in 0..nworkers {
            let trace = trace.clone();
            let (slots, cursor, morsels, work) = (&slots, &cursor, &morsels, &work);
            s.spawn(move |_| {
                let _guard = trace.as_ref().map(|t| t.install());
                let _ctx_guard = ctx.map(|c| c.install());
                let name = format!("exec/morsel_worker{w}");
                let _span = Span::enter(&name);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= morsels.len() {
                        break;
                    }
                    *slots[i].lock() = Some(work(i, &morsels[i]));
                }
            });
        }
    })
    .expect("morsel workers do not panic");

    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner().expect("every morsel was claimed") {
            Ok(m) => out.push(m),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Parallel sequential scan: emits exactly the rows (in exactly the
/// order) of `SeqScan` + an optional `Filter`, using the morsel pool.
/// Materializes on first pull.
pub struct MorselScan {
    source: MorselSource,
    opts: ExecOptions,
    output: std::vec::IntoIter<Row>,
    started: bool,
    emitted: u64,
}

impl MorselScan {
    /// Build a parallel scan over `source`.
    pub fn new(source: MorselSource, opts: ExecOptions) -> Self {
        MorselScan { source, opts, output: Vec::new().into_iter(), started: false, emitted: 0 }
    }
}

impl Operator for MorselScan {
    fn schema(&self) -> &Schema {
        &self.source.schema
    }

    fn describe(&self) -> String {
        let pred = match &self.source.pred {
            Some(p) => format!(", filter {}", crate::ast::expr_to_sql(p)),
            None => String::new(),
        };
        let vect = if self.opts.vectorized { ", vectorized" } else { "" };
        format!(
            "MorselScan ({} pages, {} rows, dop {}{vect}{pred})",
            self.source.heap.page_count(),
            self.source.heap.row_count,
            self.opts.dop.get()
        )
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            let chunks = if self.opts.vectorized {
                run_morsels_vec(&self.source, &self.opts, |batch, sel, out: &mut Vec<Row>| {
                    for (lane, live) in sel.iter().enumerate() {
                        if *live {
                            out.push(batch.owned_row(lane));
                        }
                    }
                    Ok(())
                })?
            } else {
                run_morsels(&self.source, &self.opts, |row, out: &mut Vec<Row>| {
                    out.push(row.clone());
                    Ok(())
                })?
            };
            let mut rows = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
            for mut c in chunks {
                rows.append(&mut c);
            }
            self.output = rows.into_iter();
        }
        let row = self.output.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }
}

/// One morsel's pre-evaluated aggregation inputs, stored flat: group-key
/// encodings concatenated in `keys` (row boundaries in `key_ends`) and
/// evaluated values row-major in `vals` (group values then aggregate
/// inputs, fixed width per row).
#[derive(Default)]
struct TupleArena {
    keys: Vec<u8>,
    key_ends: Vec<usize>,
    vals: Vec<Value>,
}

/// Parallel hash aggregation over a single heap scan.
///
/// Workers pre-evaluate the expensive per-row work — page decode,
/// predicate, group-key encoding, aggregate inputs — and the merge
/// replays the serial [`GroupAcc`] state machine single-threaded in row
/// order. Group first-seen order, DISTINCT dedup, NULL gating and float
/// accumulation order are therefore identical to [`HashAggregate`]
/// (`crate::exec::HashAggregate`) at any DOP.
pub struct ParallelHashAggregate {
    source: MorselSource,
    opts: ExecOptions,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    output: std::vec::IntoIter<Row>,
    started: bool,
    emitted: u64,
}

impl ParallelHashAggregate {
    /// Build the operator; mirrors `HashAggregate::new` but reads its
    /// input via the morsel pool instead of a child operator.
    pub fn new(
        source: MorselSource,
        opts: ExecOptions,
        group_exprs: Vec<Expr>,
        group_names: Vec<String>,
        aggs: Vec<AggSpec>,
    ) -> Self {
        assert_eq!(group_exprs.len(), group_names.len());
        let schema = agg_output_schema(&group_names, &aggs);
        ParallelHashAggregate {
            source,
            opts,
            group_exprs,
            aggs,
            schema,
            output: Vec::new().into_iter(),
            started: false,
            emitted: 0,
        }
    }

    fn materialize(&mut self) -> Result<()> {
        let schema = &self.source.schema;
        // Bind group keys and aggregate inputs once; workers then
        // evaluate index-resolved expressions per row.
        let groups: Vec<BoundExpr> =
            self.group_exprs.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?;
        let args: Vec<Option<BoundExpr>> = self
            .aggs
            .iter()
            .map(|spec| spec.arg.as_ref().map(|e| bind(e, schema)).transpose())
            .collect::<Result<_>>()?;
        // Workers: evaluate group keys and aggregate inputs into flat
        // per-morsel arenas — scalar row-at-a-time, or vectorized with
        // one `eval_vec` pass per expression per batch. Both fill the
        // arena in lane order with bit-identical values, so the merge
        // below cannot tell them apart.
        let arenas = if self.opts.vectorized {
            // Column refs read batch lanes directly (no intermediate
            // vector, no text copy until the arena needs the value);
            // computed expressions evaluate once per batch over the
            // surviving selection.
            enum Slot<'e> {
                Col(usize),
                One,
                Expr(&'e BoundExpr),
            }
            let slots: Vec<Slot> = groups
                .iter()
                .map(|e| match e {
                    BoundExpr::Col(i) => Slot::Col(*i),
                    e => Slot::Expr(e),
                })
                .chain(args.iter().map(|a| match a {
                    None => Slot::One, // COUNT(*) counts rows
                    Some(BoundExpr::Col(i)) => Slot::Col(*i),
                    Some(e) => Slot::Expr(e),
                }))
                .collect();
            let ngroups = groups.len();
            run_morsels_vec(&self.source, &self.opts, |batch, sel, arena: &mut TupleArena| {
                let mut vecs: Vec<Option<Vec<Value>>> = Vec::with_capacity(slots.len());
                for s in &slots {
                    vecs.push(match s {
                        Slot::Expr(e) => Some(eval_vec(e, batch, sel)?),
                        _ => None,
                    });
                }
                for (lane, live) in sel.iter().enumerate() {
                    if !*live {
                        continue;
                    }
                    for (k, s) in slots.iter().enumerate() {
                        let v = match s {
                            Slot::Col(i) => batch.value_at(*i, lane),
                            Slot::One => Value::Int(1),
                            Slot::Expr(_) => std::mem::replace(
                                &mut vecs[k].as_mut().expect("expr slot")[lane],
                                Value::Null,
                            ),
                        };
                        if k < ngroups {
                            v.key_bytes(&mut arena.keys);
                        }
                        arena.vals.push(v);
                    }
                    arena.key_ends.push(arena.keys.len());
                }
                Ok(())
            })?
        } else {
            run_morsels(&self.source, &self.opts, |row, arena: &mut TupleArena| {
                for e in &groups {
                    let v = eval_bound(e, row)?;
                    v.key_bytes(&mut arena.keys);
                    arena.vals.push(v);
                }
                for arg in &args {
                    arena.vals.push(match arg {
                        None => Value::Int(1), // COUNT(*) counts rows
                        Some(e) => eval_bound(e, row)?,
                    });
                }
                arena.key_ends.push(arena.keys.len());
                Ok(())
            })?
        };
        // Merge: replay the serial accumulator in row order.
        let ngroups = self.group_exprs.len();
        let width = ngroups + self.aggs.len();
        let mut acc = GroupAcc::new(&self.aggs, self.group_exprs.is_empty());
        for arena in arenas {
            let mut start = 0;
            for (i, &end) in arena.key_ends.iter().enumerate() {
                let vals = &arena.vals[i * width..(i + 1) * width];
                acc.update(&self.aggs, &arena.keys[start..end], &vals[..ngroups], &vals[ngroups..])?;
                start = end;
            }
        }
        self.output = acc.finish().into_iter();
        Ok(())
    }
}

impl Operator for ParallelHashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let groups: Vec<String> = self.group_exprs.iter().map(crate::ast::expr_to_sql).collect();
        let aggs: Vec<String> = self.aggs.iter().map(|a| a.name.clone()).collect();
        let vect = if self.opts.vectorized { ", vectorized" } else { "" };
        format!(
            "ParallelHashAggregate: group by [{}], compute [{}] (dop {}{vect})",
            groups.join(", "),
            aggs.join(", "),
            self.opts.dop.get()
        )
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            self.materialize()?;
        }
        let row = self.output.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }
}

/// Boxed [`MorselScan`] as a plan source.
pub fn boxed_scan(source: MorselSource, opts: &ExecOptions) -> BoxOp {
    Box::new(MorselScan::new(source, opts.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggFunc;
    use crate::exec::{collect, Filter, HashAggregate, SeqScan};
    use crate::heap::shared;
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::DataType;
    use ironsafe_storage::pager::PlainPager;
    use proptest::prelude::*;

    fn fixture(nrows: i64) -> (MorselSource, SharedPager) {
        let pager = shared(PlainPager::new());
        let mut heap = HeapFile::new();
        heap.append_rows(
            &pager,
            (0..nrows).map(|i| {
                vec![
                    Value::Int(i),
                    Value::Text(format!("grp{}", i % 7)),
                    Value::Float(i as f64 * 0.25),
                ]
            }),
        )
        .unwrap();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("g", DataType::Text),
            Column::new("x", DataType::Float),
        ]);
        (MorselSource { schema, heap, pager: pager.clone(), pred: None }, pager)
    }

    #[test]
    fn parallel_scan_matches_serial_scan_rows_and_stats() {
        let (mut source, pager) = fixture(2000);
        source.pred = Some(parse_expression("a % 3 = 0").unwrap());
        pager.lock().reset_stats();
        let serial = {
            let scan = Box::new(SeqScan::new(
                source.schema.clone(),
                source.heap.clone(),
                pager.clone(),
            ));
            let filtered = Box::new(Filter::new(scan, source.pred.clone().unwrap()));
            collect(filtered).unwrap().1
        };
        let serial_stats = pager.lock().stats();
        pager.lock().reset_stats();
        let opts =
            ExecOptions { morsel_pages: 3, oversubscribe: true, ..ExecOptions::with_dop(4) };
        let parallel =
            collect(Box::new(MorselScan::new(source.clone(), opts.clone()))).unwrap().1;
        let parallel_stats = pager.lock().stats();
        assert_eq!(parallel, serial, "row stream must be order-identical");
        assert_eq!(parallel_stats, serial_stats, "stats delta must be identical");
        assert!(opts.metrics.morsels.get() > 1);
        assert_eq!(opts.metrics.rows.get(), 2000);
    }

    #[test]
    fn parallel_aggregate_matches_serial_bit_for_bit() {
        let (source, pager) = fixture(3000);
        let group_exprs = vec![parse_expression("g").unwrap()];
        let aggs = vec![
            AggSpec { func: AggFunc::Count, arg: None, distinct: false, name: "cnt".into() },
            AggSpec {
                func: AggFunc::Sum,
                arg: Some(parse_expression("x * 1.1").unwrap()),
                distinct: false,
                name: "s".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                arg: Some(parse_expression("x").unwrap()),
                distinct: false,
                name: "m".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                arg: Some(parse_expression("a % 11").unwrap()),
                distinct: true,
                name: "d".into(),
            },
        ];
        let serial = {
            let scan = Box::new(SeqScan::new(
                source.schema.clone(),
                source.heap.clone(),
                pager.clone(),
            ));
            let agg = HashAggregate::new(
                scan,
                group_exprs.clone(),
                vec!["g".into()],
                aggs.clone(),
            );
            collect(Box::new(agg)).unwrap()
        };
        for dop in [2, 4, 8] {
            let par = collect(Box::new(ParallelHashAggregate::new(
                source.clone(),
                ExecOptions { morsel_pages: 2, oversubscribe: true, ..ExecOptions::with_dop(dop) },
                group_exprs.clone(),
                vec!["g".into()],
                aggs.clone(),
            )))
            .unwrap();
            assert_eq!(par.1, serial.1, "dop {dop} drifted from serial");
            assert_eq!(
                par.0.columns.iter().map(|c| &c.name).collect::<Vec<_>>(),
                serial.0.columns.iter().map(|c| &c.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn vectorized_scan_matches_serial_rows_and_stats() {
        let (mut source, pager) = fixture(2000);
        source.pred = Some(parse_expression("a % 3 = 0 AND x < 300.0").unwrap());
        pager.lock().reset_stats();
        let serial = {
            let scan = Box::new(SeqScan::new(
                source.schema.clone(),
                source.heap.clone(),
                pager.clone(),
            ));
            let filtered = Box::new(Filter::new(scan, source.pred.clone().unwrap()));
            collect(filtered).unwrap().1
        };
        let serial_stats = pager.lock().stats();
        for dop in [1, 4] {
            pager.lock().reset_stats();
            let opts = ExecOptions { morsel_pages: 3, oversubscribe: true, ..ExecOptions::with_dop(dop) }
                .with_vectorized(true);
            let vectorized =
                collect(Box::new(MorselScan::new(source.clone(), opts.clone()))).unwrap().1;
            let vec_stats = pager.lock().stats();
            assert_eq!(vectorized, serial, "dop {dop}: row stream must be order-identical");
            assert_eq!(vec_stats, serial_stats, "dop {dop}: stats delta must be identical");
            assert_eq!(opts.metrics.rows.get(), 2000, "rows counter counts pre-filter lanes");
        }
    }

    #[test]
    fn vectorized_aggregate_matches_serial_bit_for_bit() {
        let (mut source, pager) = fixture(3000);
        source.pred = Some(parse_expression("x BETWEEN 10.0 AND 600.0").unwrap());
        let group_exprs = vec![parse_expression("g").unwrap()];
        let aggs = vec![
            AggSpec { func: AggFunc::Count, arg: None, distinct: false, name: "cnt".into() },
            AggSpec {
                func: AggFunc::Sum,
                arg: Some(parse_expression("x * 1.1").unwrap()),
                distinct: false,
                name: "s".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                arg: Some(parse_expression("x").unwrap()),
                distinct: false,
                name: "m".into(),
            },
            AggSpec {
                func: AggFunc::Min,
                arg: Some(parse_expression("a").unwrap()),
                distinct: false,
                name: "lo".into(),
            },
        ];
        let serial = {
            let scan = Box::new(SeqScan::new(
                source.schema.clone(),
                source.heap.clone(),
                pager.clone(),
            ));
            let filtered = Box::new(Filter::new(scan, source.pred.clone().unwrap()));
            let agg =
                HashAggregate::new(filtered, group_exprs.clone(), vec!["g".into()], aggs.clone());
            collect(Box::new(agg)).unwrap()
        };
        for dop in [1, 4] {
            let opts = ExecOptions { morsel_pages: 2, oversubscribe: true, ..ExecOptions::with_dop(dop) }
                .with_vectorized(true);
            let vectorized = collect(Box::new(ParallelHashAggregate::new(
                source.clone(),
                opts,
                group_exprs.clone(),
                vec!["g".into()],
                aggs.clone(),
            )))
            .unwrap();
            assert_eq!(vectorized.1, serial.1, "dop {dop} vectorized drifted from serial");
        }
    }

    #[test]
    fn scan_watch_slots_are_dop_and_vectorization_invariant() {
        let (mut source, _pager) = fixture(2000);
        source.pred = Some(parse_expression("a % 4 = 0").unwrap());
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for dop in [1usize, 4] {
            for vectorized in [false, true] {
                let watch = Arc::new(ScanWatch::new());
                let opts = ExecOptions {
                    morsel_pages: 3,
                    oversubscribe: true,
                    ..ExecOptions::with_dop(dop)
                }
                .with_vectorized(vectorized)
                .with_watch(watch.clone());
                collect(Box::new(MorselScan::new(source.clone(), opts))).unwrap();
                let slots = watch.take();
                let total_in: u64 = slots.iter().map(|(i, _)| i).sum();
                let total_out: u64 = slots.iter().map(|(_, o)| o).sum();
                assert_eq!(total_in, 2000);
                assert_eq!(total_out, 500);
                match &baseline {
                    None => baseline = Some(slots),
                    Some(b) => assert_eq!(
                        &slots, b,
                        "dop {dop} vectorized {vectorized}: slots drifted"
                    ),
                }
            }
        }
    }

    #[test]
    fn empty_heap_parallel_global_aggregate_yields_one_row() {
        let pager = shared(PlainPager::new());
        let source = MorselSource {
            schema: Schema::new(vec![Column::new("a", DataType::Int)]),
            heap: HeapFile::new(),
            pager,
            pred: None,
        };
        let agg = ParallelHashAggregate::new(
            source,
            ExecOptions::with_dop(4),
            vec![],
            vec![],
            vec![AggSpec { func: AggFunc::Count, arg: None, distinct: false, name: "c".into() }],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    proptest! {
        #[test]
        fn partitioner_covers_every_page_exactly_once(
            num_pages in 0usize..5000,
            morsel_pages in 0usize..130,
        ) {
            let morsels = partition_pages(num_pages, morsel_pages);
            // Concatenated, the morsels are exactly 0..num_pages: no
            // gaps, no overlaps, order preserved.
            let mut covered = Vec::with_capacity(num_pages);
            for m in &morsels {
                prop_assert!(m.start < m.end, "empty morsel {m:?}");
                prop_assert!(m.end - m.start <= morsel_pages.max(1));
                covered.extend(m.start..m.end);
            }
            prop_assert_eq!(covered, (0..num_pages).collect::<Vec<_>>());
        }
    }
}
