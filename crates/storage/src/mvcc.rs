//! MVCC snapshot bookkeeping: epoch pins and retained page versions.
//!
//! The non-blocking read path: every committed state of the shared store
//! carries a monotone *root epoch*. A read view pins the epoch current
//! at open ([`Snapshots::pin`]) and keeps serving it while writers build
//! and publish later epochs. Writers never overwrite a page a pinned
//! reader still needs without first retaining the page's pre-image here
//! ([`Snapshots::retain`]); a pinned read of a since-overwritten page is
//! served from the retained version, with the same counter delta a
//! quiesced read would have charged — so snapshot reads stay
//! bit-identical, rows *and* costs, to a single-threaded run.
//!
//! Retained versions are reference-counted by the pins that can still
//! see them and garbage-collected on unpin: with no readers in flight
//! the whole structure is empty and the write path pays nothing.

use crate::pager::{PageId, PagerStats};
use ironsafe_obs::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Live telemetry counters for the snapshot machinery (`mvcc.*` names).
#[derive(Clone, Default)]
pub struct MvccMetrics {
    /// Snapshot pins taken (`mvcc.pin`).
    pub pins: Counter,
    /// Page pre-images retained for pinned readers (`mvcc.retain`).
    pub retained: Counter,
    /// Retained versions garbage-collected on unpin (`mvcc.gc`).
    pub gc: Counter,
    /// Pinned reads served from a retained version (`mvcc.read.retained`).
    pub retained_reads: Counter,
}

impl MvccMetrics {
    /// Attach every cell to `registry` under its `mvcc.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("mvcc.pin", &self.pins);
        registry.register_counter("mvcc.retain", &self.retained);
        registry.register_counter("mvcc.gc", &self.gc);
        registry.register_counter("mvcc.read.retained", &self.retained_reads);
    }
}

/// One retained pre-image: the page's payload as it was for every epoch
/// strictly below `ceiling`, plus the counter delta its first read cost
/// (replayed verbatim to pinned readers, like [`crate::view::PageCache`]
/// hits).
#[derive(Clone)]
struct Version {
    ceiling: u64,
    payload: Arc<[u8]>,
    delta: PagerStats,
}

#[derive(Default)]
struct SnapState {
    /// Latest published (committed) epoch.
    committed_epoch: u64,
    /// Page count of the committed state (pinned views bound their id
    /// space to the value captured at pin time).
    committed_pages: u64,
    /// Per-page versions, ascending by ceiling.
    versions: HashMap<PageId, Vec<Version>>,
    /// Active pin count per epoch.
    pins: HashMap<u64, usize>,
}

impl SnapState {
    fn min_pinned(&self) -> Option<u64> {
        self.pins.keys().copied().min()
    }

    /// Drop every version no active pin can still see. A version with
    /// ceiling `c` serves pins with epoch `< c`; with `m` the smallest
    /// pinned epoch (or none), versions with `c <= m` are dead.
    fn collect(&mut self, metrics: &MvccMetrics) {
        let min = self.min_pinned();
        let mut freed = 0u64;
        self.versions.retain(|_, vs| {
            let before = vs.len();
            match min {
                Some(m) => vs.retain(|v| v.ceiling > m),
                None => vs.clear(),
            }
            freed += (before - vs.len()) as u64;
            !vs.is_empty()
        });
        if freed > 0 {
            metrics.gc.add(freed);
        }
    }
}

/// Shared snapshot registry: one per shared base pager.
#[derive(Clone, Default)]
pub struct Snapshots {
    state: Arc<Mutex<SnapState>>,
    metrics: MvccMetrics,
}

/// A pinned snapshot: holds its epoch visible until dropped.
pub struct SnapshotPin {
    snapshots: Snapshots,
    epoch: u64,
    base_pages: u64,
}

impl SnapshotPin {
    /// The pinned root epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Page count of the pinned state: ids at or above this are
    /// invisible to the pinned view regardless of later allocations.
    pub fn base_pages(&self) -> u64 {
        self.base_pages
    }

    /// The registry this pin belongs to.
    pub fn snapshots(&self) -> &Snapshots {
        &self.snapshots
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        let mut st = self.snapshots.state.lock();
        if let Some(n) = st.pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                st.pins.remove(&self.epoch);
            }
        }
        st.collect(&self.snapshots.metrics);
    }
}

impl Snapshots {
    /// Fresh registry at epoch 0 over an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles onto the live `mvcc.*` telemetry counters.
    pub fn metrics(&self) -> &MvccMetrics {
        &self.metrics
    }

    /// Publish `epoch` (with its page count) as the committed state.
    /// Called by the writer after a flush lands; also used at attach
    /// time to seed the initial state. Collects versions no pin needs —
    /// a flush retains unconditionally (a reader may pin the old epoch
    /// at any point up to this publish), and the publish immediately
    /// frees whatever turned out to have no audience.
    pub fn publish(&self, epoch: u64, pages: u64) {
        let mut st = self.state.lock();
        debug_assert!(epoch >= st.committed_epoch, "epochs are monotone");
        st.committed_epoch = epoch;
        st.committed_pages = pages;
        st.collect(&self.metrics);
    }

    /// The committed epoch readers currently pin.
    pub fn committed_epoch(&self) -> u64 {
        self.state.lock().committed_epoch
    }

    /// Pin the committed epoch for a new read view.
    pub fn pin(&self) -> SnapshotPin {
        let (epoch, pages) = {
            let mut st = self.state.lock();
            let epoch = st.committed_epoch;
            *st.pins.entry(epoch).or_insert(0) += 1;
            (epoch, st.committed_pages)
        };
        self.metrics.pins.inc();
        SnapshotPin { snapshots: self.clone(), epoch, base_pages: pages }
    }

    /// True when some active pin is below `epoch` — i.e. overwriting a
    /// page at `epoch` requires retaining its pre-image first.
    pub fn has_pins_below(&self, epoch: u64) -> bool {
        self.state.lock().min_pinned().is_some_and(|m| m < epoch)
    }

    /// Number of active pins (diagnostics/tests).
    pub fn active_pins(&self) -> usize {
        self.state.lock().pins.values().sum()
    }

    /// Number of retained versions (diagnostics/tests).
    pub fn retained_versions(&self) -> usize {
        self.state.lock().versions.values().map(Vec::len).sum()
    }

    /// Retain `payload` as page `id`'s image for every epoch `< ceiling`
    /// (the epoch the overwriting commit publishes). `delta` is the
    /// counter cost a first read of this version charged; pinned readers
    /// replay it verbatim. The writer calls this *before* the overwrite
    /// lands on the base pager, holding the base lock across both, and
    /// retains *unconditionally*: a reader can pin the pre-publish epoch
    /// right up to the publish, so "no pins right now" proves nothing.
    /// [`Snapshots::publish`] collects versions that found no audience.
    pub fn retain(&self, id: PageId, payload: Arc<[u8]>, delta: PagerStats, ceiling: u64) {
        let mut st = self.state.lock();
        let vs = st.versions.entry(id).or_default();
        if vs.last().is_some_and(|v| v.ceiling >= ceiling) {
            return; // already retained for this ceiling
        }
        vs.push(Version { ceiling, payload, delta });
        self.metrics.retained.inc();
    }

    /// The payload page `id` had at `epoch`, if a retained version
    /// covers it (i.e. the page was overwritten after `epoch`). `None`
    /// means the base pager's current image *is* the `epoch` image.
    pub fn lookup(&self, id: PageId, epoch: u64) -> Option<(Arc<[u8]>, PagerStats)> {
        let st = self.state.lock();
        let vs = st.versions.get(&id)?;
        // Smallest ceiling still above the pinned epoch is the image the
        // pin saw (versions are pushed in ascending ceiling order).
        let v = vs.iter().find(|v| v.ceiling > epoch)?;
        self.metrics.retained_reads.inc();
        Some((Arc::clone(&v.payload), v.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u8) -> Arc<[u8]> {
        Arc::from(vec![tag; 8].into_boxed_slice())
    }

    #[test]
    fn pin_sees_retained_pre_image_until_dropped() {
        let snaps = Snapshots::new();
        snaps.publish(1, 4);
        let pin = snaps.pin();
        assert_eq!((pin.epoch(), pin.base_pages()), (1, 4));
        // Writer overwrites page 2 while the pin is live.
        snaps.retain(2, payload(0xaa), PagerStats::default(), 2);
        snaps.publish(2, 4);
        let (img, _) = snaps.lookup(2, pin.epoch()).expect("pre-image retained");
        assert_eq!(&img[..], &[0xaa; 8]);
        assert_eq!(snaps.retained_versions(), 1);
        drop(pin);
        assert_eq!(snaps.retained_versions(), 0, "GC on unpin");
        assert_eq!(snaps.metrics().gc.get(), 1);
    }

    #[test]
    fn publish_collects_versions_with_no_audience() {
        let snaps = Snapshots::new();
        snaps.publish(1, 4);
        // Flush retains unconditionally (a pin could still arrive)...
        snaps.retain(0, payload(1), PagerStats::default(), 2);
        assert_eq!(snaps.retained_versions(), 1, "held until publish");
        // ...and publish frees it when no pin materialized.
        snaps.publish(2, 4);
        assert_eq!(snaps.retained_versions(), 0, "nobody can see below the ceiling");
        // A pin at the *new* epoch does not hold later retentions either.
        let _pin = snaps.pin();
        snaps.retain(0, payload(1), PagerStats::default(), 3);
        snaps.publish(3, 4);
        assert_eq!(snaps.retained_versions(), 1, "pin at 2 needs the <3 image");
    }

    #[test]
    fn multiple_versions_resolve_by_smallest_covering_ceiling() {
        let snaps = Snapshots::new();
        snaps.publish(1, 4);
        let old = snaps.pin(); // epoch 1
        snaps.retain(3, payload(0x11), PagerStats::default(), 2);
        snaps.publish(2, 4);
        let mid = snaps.pin(); // epoch 2
        snaps.retain(3, payload(0x22), PagerStats::default(), 3);
        snaps.publish(3, 4);
        let (img_old, _) = snaps.lookup(3, old.epoch()).unwrap();
        assert_eq!(&img_old[..], &[0x11; 8], "epoch-1 pin sees the first pre-image");
        let (img_mid, _) = snaps.lookup(3, mid.epoch()).unwrap();
        assert_eq!(&img_mid[..], &[0x22; 8], "epoch-2 pin sees the second pre-image");
        assert!(snaps.lookup(3, 3).is_none(), "current epoch reads the base");
        drop(old);
        assert_eq!(snaps.retained_versions(), 1, "only the version mid still needs");
        drop(mid);
        assert_eq!(snaps.retained_versions(), 0);
    }

    #[test]
    fn pins_count_and_unpin() {
        let snaps = Snapshots::new();
        snaps.publish(5, 1);
        let a = snaps.pin();
        let b = snaps.pin();
        assert_eq!(snaps.active_pins(), 2);
        assert!(snaps.has_pins_below(6));
        assert!(!snaps.has_pins_below(5));
        drop(a);
        assert_eq!(snaps.active_pins(), 1);
        drop(b);
        assert_eq!(snaps.active_pins(), 0);
        assert_eq!(snaps.metrics().pins.get(), 2);
    }

    #[test]
    fn duplicate_retain_for_same_ceiling_is_idempotent() {
        let snaps = Snapshots::new();
        snaps.publish(1, 2);
        let _pin = snaps.pin();
        snaps.retain(0, payload(7), PagerStats::default(), 2);
        snaps.retain(0, payload(8), PagerStats::default(), 2);
        assert_eq!(snaps.retained_versions(), 1, "first capture wins");
        let (img, _) = snaps.lookup(0, 1).unwrap();
        assert_eq!(&img[..], &[7; 8]);
    }
}
