//! Run a TPC-H query under all five Table 2 configurations and compare
//! data movement and simulated cost — a one-query slice of Figures 6–8.
//!
//! ```text
//! cargo run --release --example tpch_offload [query_number] [scale_factor]
//! ```

use ironsafe::csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe::tpch::queries::query;
use ironsafe::tpch::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let qid: u8 = args.first().and_then(|s| s.parse().ok()).unwrap_or(6);
    let sf: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.002);

    let q = query(qid).unwrap_or_else(|| {
        eprintln!("unknown query #{qid}; the paper set is 1-10, 12-14, 16, 18, 19, 21");
        std::process::exit(1);
    });
    println!("TPC-H Q{qid} ({}) at SF {sf}\n", q.name);
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14}",
        "config", "sim time", "pages@disk", "bytes moved", "result rows"
    );

    let data = generate(sf, 42);
    let mut reference: Option<usize> = None;
    for config in SystemConfig::all() {
        let mut sys = CsaSystem::build(config, &data, CostParams::default()).expect("build");
        let r = sys.run_query(&q).expect("run");
        if let Some(n) = reference {
            assert_eq!(n, r.result.rows().len(), "results must agree across configs");
        } else {
            reference = Some(r.result.rows().len());
        }
        println!(
            "{:<6} {:>10.2}ms {:>12} {:>12} {:>14}",
            config.abbrev(),
            r.total_ns() / 1e6,
            r.pages_read_storage,
            r.bytes_shipped,
            r.result.rows().len()
        );
    }

    println!("\nIronSafe (scs) breakdown:");
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default()).unwrap();
    let r = sys.run_query(&q).unwrap();
    let b = &r.breakdown;
    let total = b.total_ns();
    for (name, v) in [
        ("ndp (vanilla-CS work)", b.ndp_ns),
        ("freshness (Merkle+RPMB)", b.freshness_ns),
        ("page crypto", b.crypto_ns),
        ("enclave transitions", b.transitions_ns),
        ("EPC paging", b.epc_ns),
        ("channel + session", b.other_ns),
    ] {
        println!("  {name:<26} {:>6.1}%", v / total * 100.0);
    }
}
