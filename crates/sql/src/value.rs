//! Runtime values and data types.

use crate::{Result, SqlError};
use std::cmp::Ordering;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text (also used for ISO dates).
    Text,
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
}

impl Value {
    /// The value's type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promoted to Float).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(SqlError::Eval(format!("expected number, got {other:?}"))),
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            other => Err(SqlError::Eval(format!("expected integer, got {other:?}"))),
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(SqlError::Eval(format!("expected text, got {other:?}"))),
        }
    }

    /// Truthiness for WHERE clauses: NULL and zero are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Text(s) => !s.is_empty(),
        }
    }

    /// SQL comparison; `None` when either side is NULL or types are
    /// incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting: NULLs first, then by value; mixed numeric
    /// types compare numerically.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.compare(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Equality for grouping/joining keys (NULL groups with NULL, unlike
    /// SQL comparison semantics — matching standard GROUP BY behaviour).
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }

    /// A stable byte key for hashing in joins/aggregations.
    pub fn key_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Float(f) => {
                // Normalize: integral floats hash like ints so Int/Float
                // join keys agree with `compare`.
                if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    out.push(1);
                    out.extend_from_slice(&(*f as i64).to_be_bytes());
                } else {
                    out.push(2);
                    out.extend_from_slice(&f.to_bits().to_be_bytes());
                }
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

/// Serialize a value into `out` (length-prefixed, self-describing).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Deserialize one value from `buf` at `pos`, advancing `pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    Ok(decode_value_raw(buf, pos)?.to_value())
}

/// A decoded value borrowing its text from the page buffer. The
/// columnar decode path appends these straight into typed column
/// vectors without allocating a `String` per text cell; [`decode_value`]
/// wraps this with an owned conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawValue<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (bit-exact roundtrip).
    Float(f64),
    /// UTF-8 text, borrowed from the encoded buffer.
    Text(&'a str),
}

impl<'a> RawValue<'a> {
    /// Borrowing view of an owned [`Value`] — lets already-materialized
    /// rows feed the columnar decode path without re-encoding.
    pub fn of(v: &'a Value) -> Self {
        match v {
            Value::Null => RawValue::Null,
            Value::Int(i) => RawValue::Int(*i),
            Value::Float(f) => RawValue::Float(*f),
            Value::Text(s) => RawValue::Text(s),
        }
    }

    /// Convert to an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            RawValue::Null => Value::Null,
            RawValue::Int(i) => Value::Int(i),
            RawValue::Float(f) => Value::Float(f),
            RawValue::Text(s) => Value::Text(s.to_string()),
        }
    }
}

/// Decode one value from `buf` at `pos`, borrowing text in place. The
/// single codec both row decode ([`decode_value`]) and columnar decode
/// (`crate::batch::ColumnBatch`) are built on.
pub fn decode_value_raw<'a>(buf: &'a [u8], pos: &mut usize) -> Result<RawValue<'a>> {
    let err = || SqlError::Eval("corrupt value encoding".into());
    let tag = *buf.get(*pos).ok_or_else(err)?;
    *pos += 1;
    match tag {
        0 => Ok(RawValue::Null),
        1 => {
            let bytes: [u8; 8] = buf.get(*pos..*pos + 8).ok_or_else(err)?.try_into().expect("8");
            *pos += 8;
            Ok(RawValue::Int(i64::from_be_bytes(bytes)))
        }
        2 => {
            let bytes: [u8; 8] = buf.get(*pos..*pos + 8).ok_or_else(err)?.try_into().expect("8");
            *pos += 8;
            Ok(RawValue::Float(f64::from_bits(u64::from_be_bytes(bytes))))
        }
        3 => {
            let len_bytes: [u8; 4] = buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().expect("4");
            let len = u32::from_be_bytes(len_bytes) as usize;
            *pos += 4;
            let s = buf.get(*pos..*pos + len).ok_or_else(err)?;
            *pos += len;
            Ok(RawValue::Text(std::str::from_utf8(s).map_err(|_| err())?))
        }
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_numeric_cross_type() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).compare(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn text_dates_order_correctly() {
        // ISO dates compare lexicographically.
        let a = Value::Text("1994-01-01".into());
        let b = Value::Text("1995-12-31".into());
        assert_eq!(a.compare(&b), Some(Ordering::Less));
    }

    #[test]
    fn sort_cmp_puts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1].as_i64().unwrap(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let vals = [
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::Text(String::new()),
            Value::Text("hello world — ünïcödé".into()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(v, &mut buf);
        }
        let mut pos = 0;
        for v in &vals {
            let d = decode_value(&buf, &mut pos).unwrap();
            match (v, &d) {
                (Value::Null, Value::Null) => {}
                _ => assert_eq!(v, &d),
            }
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_truncated_fails() {
        let mut buf = Vec::new();
        encode_value(&Value::Text("hello".into()), &mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(decode_value(&buf, &mut pos).is_err());
    }

    #[test]
    fn key_bytes_unify_int_and_integral_float() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(7).key_bytes(&mut a);
        Value::Float(7.0).key_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn key_bytes_distinguish_types_and_values() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Text("1".into()).key_bytes(&mut a);
        Value::Int(1).key_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(Value::Text("x".into()).is_truthy());
        assert!(!Value::Text(String::new()).is_truthy());
    }
}
