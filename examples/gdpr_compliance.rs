//! GDPR anti-patterns (paper §4.3): expiry, reuse opt-in, and transparent
//! sharing, enforced by monitor-side query rewriting.
//!
//! ```text
//! cargo run --release --example gdpr_compliance
//! ```

use ironsafe::tpch::gdpr::{gen_people_with_policy, PEOPLE_DDL_POLICY};
use ironsafe::{Client, Deployment};

fn main() {
    let mut dep = Deployment::builder().region("EU").build().expect("attestation");
    let controller_a = Client::new("Ka"); // airline: collected the data
    let controller_b = Client::new("Kb"); // hotel: external consumer
    dep.register_service_bit(&controller_b, 2);

    // Access policy straight out of the paper: A reads and writes freely;
    // B reads only unexpired, opted-in records, and every access is
    // logged for the regulator.
    dep.create_database(
        "personal",
        "read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP) & reuseMap(m) & logUpdate(sharing, K, Q)\n\
         write :- sessionKeyIs(Ka)",
    );

    // A loads 1000 customer records carrying expiry + reuse columns.
    dep.submit(&controller_a, "personal", PEOPLE_DDL_POLICY, "").unwrap();
    dep.system_mut()
        .storage_db_mut()
        .insert_rows("people", gen_people_with_policy(1000, 3))
        .unwrap();
    println!("✔ controller A loaded 1000 personal records");

    // Anti-pattern #1/#2: B's query is rewritten to exclude expired and
    // non-opted-in records — B never sees them, by construction.
    dep.set_time(510); // records with __expiry < 510 are gone for B
    let total = dep
        .submit(&controller_a, "personal", "SELECT COUNT(*) FROM people", "")
        .unwrap();
    let visible = dep
        .submit(&controller_b, "personal", "SELECT COUNT(*) FROM people", "")
        .unwrap();
    println!(
        "✔ A sees {} records; B sees only {} (expired + opted-out filtered by rewrite)",
        total.result.rows()[0][0],
        visible.result.rows()[0][0]
    );

    // Anti-pattern #3: the regulator audits what was shared with B.
    dep.submit(&controller_b, "personal", "SELECT p_email FROM people WHERE p_id = 77", "")
        .unwrap();
    let audit = dep.monitor().audit();
    assert!(audit.verify(), "audit chain intact");
    println!("✔ sharing log holds {} entries for the regulator:", audit.stream("sharing").len());
    for entry in audit.stream("sharing") {
        println!("    [{}] {} ran: {}", entry.seq, entry.client_key, entry.message);
    }

    // And an intruder's attempt leaves tamper-evident evidence.
    let intruder = Client::new("Mx");
    assert!(dep.submit(&intruder, "personal", "SELECT p_email FROM people", "").is_err());
    let denies = audit_denials(&dep);
    println!("✔ intruder denied; {denies} denial(s) on the permanent record");
}

fn audit_denials(dep: &Deployment) -> usize {
    dep.monitor()
        .audit()
        .entries()
        .iter()
        .filter(|e| e.message.starts_with("DENY"))
        .count()
}
