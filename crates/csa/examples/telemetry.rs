//! End-to-end telemetry demo: run TPC-H Q1 on the full IronSafe
//! configuration and print everything the observability layer captured —
//! the hierarchical span tree (simulated + wall time), the cost
//! breakdown derived from it, and the live subsystem counters.
//!
//! ```text
//! cargo run --offline -p ironsafe-csa --example telemetry
//! ```

use ironsafe_csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe_obs::export::{metrics_to_jsonl, render_span_tree};
use ironsafe_obs::Registry;
use ironsafe_tpch::queries::query;

fn main() {
    let sf = 0.002;
    println!("generating TPC-H data at SF {sf}...");
    let data = ironsafe_tpch::generate(sf, 42);

    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);

    let q1 = query(1).expect("Q1 is a paper query");
    let report = sys.run_query(&q1).expect("Q1 runs");

    println!("\n== span tree (Q1, IronSafe) ==");
    let trace = sys.last_trace().expect("run_query records a trace");
    print!("{}", render_span_tree(trace));

    println!("\n== cost breakdown (derived from the spans above) ==");
    let b = &report.breakdown;
    let total = b.total_ns().max(1.0);
    for (name, ns) in [
        ("ndp", b.ndp_ns),
        ("freshness", b.freshness_ns),
        ("crypto", b.crypto_ns),
        ("transitions", b.transitions_ns),
        ("epc", b.epc_ns),
        ("other", b.other_ns),
    ] {
        println!("{name:>12}: {:>10.3} ms ({:>5.1}%)", ns / 1e6, ns / total * 100.0);
    }
    println!("{:>12}: {:>10.3} ms", "total", total / 1e6);

    println!("\n== live counters (storage subsystem) ==");
    print!("{}", metrics_to_jsonl(&registry.snapshot()));
}
