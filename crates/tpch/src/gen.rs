//! Seeded TPC-H data generator (the `dbgen` stand-in).
//!
//! Row counts scale linearly with the (fractional) scale factor; value
//! distributions follow the spec closely enough that the paper's query
//! selectivities and join fan-ins are preserved: uniform keys, 1–7
//! lineitems per order, dates in the 1992–1998 window with shipdate
//! trailing orderdate, spec vocabularies for every categorical column.

use crate::dates::{days_from_iso, iso_from_days, END_DATE, START_DATE};
use crate::schema::*;
use ironsafe_sql::{Database, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All eight generated tables.
#[derive(Debug, Default)]
pub struct TpchData {
    /// region rows.
    pub region: Vec<Row>,
    /// nation rows.
    pub nation: Vec<Row>,
    /// supplier rows.
    pub supplier: Vec<Row>,
    /// customer rows.
    pub customer: Vec<Row>,
    /// part rows.
    pub part: Vec<Row>,
    /// partsupp rows.
    pub partsupp: Vec<Row>,
    /// orders rows.
    pub orders: Vec<Row>,
    /// lineitem rows.
    pub lineitem: Vec<Row>,
}

impl TpchData {
    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }

    /// `(table name, rows)` pairs in load order.
    pub fn tables(&self) -> [(&'static str, &Vec<Row>); 8] {
        [
            ("region", &self.region),
            ("nation", &self.nation),
            ("supplier", &self.supplier),
            ("customer", &self.customer),
            ("part", &self.part),
            ("partsupp", &self.partsupp),
            ("orders", &self.orders),
            ("lineitem", &self.lineitem),
        ]
    }
}

fn scaled(base: u64, sf: f64) -> u64 {
    ((base as f64 * sf).round() as u64).max(1)
}

fn int(v: i64) -> Value {
    Value::Int(v)
}

fn float(v: f64) -> Value {
    Value::Float((v * 100.0).round() / 100.0)
}

fn text(v: impl Into<String>) -> Value {
    Value::Text(v.into())
}

fn comment(rng: &mut StdRng, words: usize) -> Value {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(PART_NAMES[rng.gen_range(0..PART_NAMES.len())]);
    }
    Value::Text(s)
}

fn phone(rng: &mut StdRng, nation: i64) -> Value {
    Value::Text(format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    ))
}

/// Generate the full data set at `sf` with a deterministic `seed`.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = TpchData::default();

    // region & nation are fixed-size.
    for (i, name) in REGIONS.iter().enumerate() {
        data.region.push(vec![int(i as i64), text(*name), comment(&mut rng, 3)]);
    }
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        data.nation.push(vec![int(i as i64), text(*name), int(*region as i64), comment(&mut rng, 3)]);
    }

    let n_supp = scaled(BASE_ROWS[2], sf);
    let n_cust = scaled(BASE_ROWS[3], sf);
    let n_part = scaled(BASE_ROWS[4], sf);
    let n_orders = scaled(BASE_ROWS[6], sf);

    for s in 1..=n_supp as i64 {
        let nation = rng.gen_range(0..25i64);
        data.supplier.push(vec![
            int(s),
            text(format!("Supplier#{s:09}")),
            comment(&mut rng, 2),
            int(nation),
            phone(&mut rng, nation),
            float(rng.gen_range(-999.99..9999.99)),
            comment(&mut rng, 4),
        ]);
    }

    for c in 1..=n_cust as i64 {
        let nation = rng.gen_range(0..25i64);
        data.customer.push(vec![
            int(c),
            text(format!("Customer#{c:09}")),
            comment(&mut rng, 2),
            int(nation),
            phone(&mut rng, nation),
            float(rng.gen_range(-999.99..9999.99)),
            text(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            comment(&mut rng, 5),
        ]);
    }

    for p in 1..=n_part as i64 {
        let name = format!(
            "{} {}",
            PART_NAMES[rng.gen_range(0..PART_NAMES.len())],
            PART_NAMES[rng.gen_range(0..PART_NAMES.len())]
        );
        let mfgr = rng.gen_range(1..=5);
        let brand = format!("Brand#{}{}", mfgr, rng.gen_range(1..=5));
        let ptype = format!(
            "{} {} {}",
            TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
            TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
            TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
        );
        let retail = 900.0 + (p % 200) as f64 + rng.gen_range(0.0..100.0);
        data.part.push(vec![
            int(p),
            text(name),
            text(format!("Manufacturer#{mfgr}")),
            text(brand),
            text(ptype),
            int(rng.gen_range(1..=50)),
            text(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
            float(retail),
            comment(&mut rng, 3),
        ]);
    }

    // Four suppliers per part, spec-style.
    for p in 1..=n_part as i64 {
        for i in 0..4i64 {
            let supp = (p + i * (n_supp as i64 / 4).max(1)) % n_supp as i64 + 1;
            data.partsupp.push(vec![
                int(p),
                int(supp),
                int(rng.gen_range(1..10000)),
                float(rng.gen_range(1.0..1000.0)),
                comment(&mut rng, 5),
            ]);
        }
    }

    let start = days_from_iso(START_DATE);
    let end = days_from_iso(END_DATE);
    let mut line_no_base = 0i64;
    for o in 1..=n_orders as i64 {
        let custkey = rng.gen_range(1..=n_cust as i64);
        let orderdate = rng.gen_range(start..=end - 151);
        let n_lines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        let mut any_open = false;
        for ln in 1..=n_lines as i64 {
            let partkey = rng.gen_range(1..=n_part as i64);
            let suppkey = rng.gen_range(1..=n_supp as i64);
            let qty = rng.gen_range(1..=50i64) as f64;
            let retail = 900.0 + (partkey % 200) as f64;
            let extended = qty * retail / 10.0;
            let discount = (rng.gen_range(0..=10) as f64) / 100.0;
            let tax = (rng.gen_range(0..=8) as f64) / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let today = end - 30; // "current date" for status purposes
            let (returnflag, linestatus) = if receiptdate <= today {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                any_open = true;
                ("N", "O")
            };
            total += extended * (1.0 - discount) * (1.0 + tax);
            data.lineitem.push(vec![
                int(o),
                int(partkey),
                int(suppkey),
                int(ln),
                float(qty),
                float(extended),
                float(discount),
                float(tax),
                text(returnflag),
                text(linestatus),
                text(iso_from_days(shipdate)),
                text(iso_from_days(commitdate)),
                text(iso_from_days(receiptdate)),
                text(SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())]),
                text(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
                comment(&mut rng, 4),
            ]);
        }
        line_no_base += n_lines as i64;
        let status = if any_open {
            if rng.gen_bool(0.3) {
                "P"
            } else {
                "O"
            }
        } else {
            "F"
        };
        data.orders.push(vec![
            int(o),
            int(custkey),
            text(status),
            float(total),
            text(iso_from_days(orderdate)),
            text(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            text(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            int(0),
            comment(&mut rng, 5),
        ]);
    }
    let _ = line_no_base;
    data
}

/// Create the eight tables in `db` and bulk-load `data`.
pub fn load_into(db: &mut Database, data: &TpchData) -> ironsafe_sql::Result<()> {
    for ddl in DDL {
        db.execute(ddl)?;
    }
    for (table, rows) in data.tables() {
        db.insert_rows(table, rows.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_storage::pager::PlainPager;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(a.lineitem, b.lineitem);
        let c = generate(0.001, 8);
        assert_ne!(a.lineitem, c.lineitem);
    }

    #[test]
    fn row_counts_scale() {
        let small = generate(0.001, 1);
        let big = generate(0.002, 1);
        assert_eq!(small.region.len(), 5);
        assert_eq!(small.nation.len(), 25);
        assert_eq!(small.supplier.len(), 10);
        assert_eq!(small.customer.len(), 150);
        assert_eq!(small.orders.len(), 1500);
        assert!(big.lineitem.len() > small.lineitem.len());
        // ~4 lineitems per order on average.
        let ratio = small.lineitem.len() as f64 / small.orders.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn keys_reference_valid_rows() {
        let d = generate(0.001, 2);
        let n_cust = d.customer.len() as i64;
        let n_part = d.part.len() as i64;
        let n_supp = d.supplier.len() as i64;
        for o in &d.orders {
            let ck = o[1].as_i64().unwrap();
            assert!(ck >= 1 && ck <= n_cust);
        }
        for l in &d.lineitem {
            assert!(l[1].as_i64().unwrap() <= n_part);
            assert!(l[2].as_i64().unwrap() <= n_supp);
        }
    }

    #[test]
    fn dates_are_ordered_per_line() {
        let d = generate(0.001, 3);
        for l in &d.lineitem {
            let order_of = |i: usize| l[i].as_str().unwrap().to_string();
            assert!(order_of(10) < order_of(12), "shipdate < receiptdate");
        }
    }

    #[test]
    fn loads_and_queries_in_engine() {
        let d = generate(0.001, 4);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &d).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(r.rows()[0][0].as_i64().unwrap(), d.lineitem.len() as i64);
        let r = db
            .execute("SELECT COUNT(*) FROM orders, customer WHERE o_custkey = c_custkey")
            .unwrap();
        assert_eq!(r.rows()[0][0].as_i64().unwrap(), d.orders.len() as i64, "every order joins");
    }

    #[test]
    fn q6_style_selectivity_is_moderate() {
        let d = generate(0.002, 5);
        let mut db = Database::new(PlainPager::new());
        load_into(&mut db, &d).unwrap();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= '1994-01-01' \
                 AND l_shipdate < '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 \
                 AND l_quantity < 24",
            )
            .unwrap();
        let hits = r.rows()[0][0].as_i64().unwrap() as f64;
        let frac = hits / d.lineitem.len() as f64;
        assert!(frac > 0.001 && frac < 0.1, "Q6 selectivity {frac}");
    }
}
