//! Per-query proofs of compliance.
//!
//! After verifying that every node in a query's execution environment
//! satisfies the client's execution policy, the monitor signs the
//! environment facts together with the query — the client (or a
//! regulator) verifies the signature against the monitor's public key.

use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::{PublicKey, SecretKey, Signature};
use ironsafe_crypto::sha256::sha256_concat;

/// A signed statement that a query ran in a policy-compliant environment.
#[derive(Debug, Clone)]
pub struct ProofOfCompliance {
    /// Hash of the (rewritten) query text.
    pub query_hash: [u8; 32],
    /// Hash of the client's execution-policy text.
    pub policy_hash: [u8; 32],
    /// Identifier of the host node used.
    pub host_id: String,
    /// Identifier of the storage node used (empty when host-only).
    pub storage_id: String,
    /// Logical timestamp of authorization.
    pub timestamp: i64,
    /// Audit-chain head at signing time (binds the proof to the log).
    pub audit_head: [u8; 32],
    /// Monitor signature over all of the above.
    pub signature: Signature,
}

fn message(
    query_hash: &[u8; 32],
    policy_hash: &[u8; 32],
    host_id: &str,
    storage_id: &str,
    timestamp: i64,
    audit_head: &[u8; 32],
) -> Vec<u8> {
    let mut m = b"ironsafe-proof-v1".to_vec();
    m.extend_from_slice(query_hash);
    m.extend_from_slice(policy_hash);
    m.extend_from_slice(&(host_id.len() as u32).to_be_bytes());
    m.extend_from_slice(host_id.as_bytes());
    m.extend_from_slice(&(storage_id.len() as u32).to_be_bytes());
    m.extend_from_slice(storage_id.as_bytes());
    m.extend_from_slice(&timestamp.to_be_bytes());
    m.extend_from_slice(audit_head);
    m
}

impl ProofOfCompliance {
    /// Issue a proof (monitor side).
    #[allow(clippy::too_many_arguments)]
    pub fn issue<R: rand::Rng + ?Sized>(
        signer: &SecretKey,
        query_text: &str,
        policy_text: &str,
        host_id: &str,
        storage_id: &str,
        timestamp: i64,
        audit_head: [u8; 32],
        rng: &mut R,
    ) -> Self {
        let query_hash = sha256_concat(&[b"query", query_text.as_bytes()]);
        let policy_hash = sha256_concat(&[b"policy", policy_text.as_bytes()]);
        let msg = message(&query_hash, &policy_hash, host_id, storage_id, timestamp, &audit_head);
        ProofOfCompliance {
            query_hash,
            policy_hash,
            host_id: host_id.to_string(),
            storage_id: storage_id.to_string(),
            timestamp,
            audit_head,
            signature: signer.sign(&msg, rng),
        }
    }

    /// Verify against the monitor's public key and the expected query and
    /// policy texts (client side).
    pub fn verify(
        &self,
        group: &Group,
        monitor_key: &PublicKey,
        query_text: &str,
        policy_text: &str,
    ) -> bool {
        if self.query_hash != sha256_concat(&[b"query", query_text.as_bytes()]) {
            return false;
        }
        if self.policy_hash != sha256_concat(&[b"policy", policy_text.as_bytes()]) {
            return false;
        }
        let msg = message(
            &self.query_hash,
            &self.policy_hash,
            &self.host_id,
            &self.storage_id,
            self.timestamp,
            &self.audit_head,
        );
        monitor_key.verify(group, &msg, &self.signature).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_crypto::schnorr::KeyPair;
    use rand::SeedableRng;

    fn setup() -> (Group, KeyPair, rand::rngs::StdRng) {
        let g = Group::modp_1024();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let kp = KeyPair::generate(&g, &mut rng);
        (g, kp, rng)
    }

    #[test]
    fn issue_and_verify() {
        let (g, kp, mut rng) = setup();
        let proof = ProofOfCompliance::issue(
            &kp.secret, "SELECT 1", "exec :- hostLocIs(EU)", "host-0", "storage-0", 42, [7; 32], &mut rng,
        );
        assert!(proof.verify(&g, &kp.public, "SELECT 1", "exec :- hostLocIs(EU)"));
    }

    #[test]
    fn wrong_query_or_policy_rejected() {
        let (g, kp, mut rng) = setup();
        let proof =
            ProofOfCompliance::issue(&kp.secret, "SELECT 1", "p", "h", "s", 1, [0; 32], &mut rng);
        assert!(!proof.verify(&g, &kp.public, "SELECT 2", "p"));
        assert!(!proof.verify(&g, &kp.public, "SELECT 1", "other policy"));
    }

    #[test]
    fn forged_fields_rejected() {
        let (g, kp, mut rng) = setup();
        let mut proof =
            ProofOfCompliance::issue(&kp.secret, "q", "p", "host-0", "storage-0", 1, [0; 32], &mut rng);
        proof.host_id = "evil-host".into();
        assert!(!proof.verify(&g, &kp.public, "q", "p"));
    }

    #[test]
    fn wrong_monitor_key_rejected() {
        let (g, kp, mut rng) = setup();
        let other = KeyPair::generate(&g, &mut rng);
        let proof = ProofOfCompliance::issue(&kp.secret, "q", "p", "h", "s", 1, [0; 32], &mut rng);
        assert!(!proof.verify(&g, &other.public, "q", "p"));
    }
}
