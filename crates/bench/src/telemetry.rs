//! Trace export for `paperbench --metrics-out`.
//!
//! Runs every paper query on the full IronSafe configuration, collects
//! the per-query span trees the cost model records, and merges them into
//! one Chrome `trace_event` file (one `pid` lane per query, loadable in
//! Perfetto or `chrome://tracing`). Live subsystem counters (secure
//! pager, enclave, network channel) ride along as a JSON-lines sidecar.

use crate::figures::SEED;
use ironsafe_csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe_obs::export::{metrics_to_jsonl, spans_to_chrome_trace};
use ironsafe_obs::Registry;
use ironsafe_tpch::generate;
use ironsafe_tpch::queries::paper_queries;

/// Output of [`collect_traces`]: the merged Chrome trace plus a metrics
/// snapshot rendered as JSON lines.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Chrome `trace_event` JSON (an array of complete events).
    pub chrome_trace: String,
    /// `metrics_to_jsonl` dump of every registered counter after the run.
    pub metrics_jsonl: String,
    /// Number of queries traced.
    pub queries: usize,
    /// Total spans across all traces.
    pub spans: usize,
}

/// Run all paper queries under IronSafe at `sf` and bundle their traces.
pub fn collect_traces(sf: f64) -> TraceBundle {
    let data = generate(sf, SEED);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    sys.register_exec_metrics(&registry);
    // A zero-rate plan: injects nothing, but exports the `faults.*`
    // counters so dashboards see the recovery path even when idle.
    let fault_plan = ironsafe_faults::FaultPlan::seeded(SEED);
    sys.set_fault_plan(fault_plan.clone());
    fault_plan.register_metrics(&registry);

    let mut merged = String::from("[");
    let mut first = true;
    let mut queries = 0usize;
    let mut spans = 0usize;
    for q in paper_queries() {
        sys.run_query(&q).unwrap_or_else(|e| panic!("scs Q{}: {e}", q.id));
        let trace = sys.last_trace().expect("run_query records a trace");
        // One pid lane per query so Perfetto shows them side by side.
        let events = spans_to_chrome_trace(trace, q.id as u64, 1);
        let inner = events.trim().trim_start_matches('[').trim_end_matches(']').trim();
        if !inner.is_empty() {
            if !first {
                merged.push(',');
            }
            first = false;
            merged.push('\n');
            merged.push_str(inner);
        }
        queries += 1;
        spans += trace.spans.len();
    }
    merged.push_str("\n]\n");

    TraceBundle {
        chrome_trace: merged,
        metrics_jsonl: metrics_to_jsonl(&registry.snapshot()),
        queries,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn merged_chrome_trace_is_valid_json() {
        let bundle = collect_traces(0.001);
        assert!(looks_like_valid_json(&bundle.chrome_trace), "{}", bundle.chrome_trace);
        assert!(bundle.chrome_trace.trim_start().starts_with('['));
        assert!(bundle.chrome_trace.contains("\"name\":\"query/q1\""));
        assert!(bundle.queries >= 5);
        assert!(bundle.spans > bundle.queries, "each query has stage spans");
        // Counters from the secure pager made it into the sidecar.
        assert!(bundle.metrics_jsonl.contains("storage.page.read"));
        // The fault-injection counters export too (zero under a
        // zero-rate plan, but present for dashboards).
        for name in ["faults.injected", "faults.retried", "faults.recovered", "faults.exhausted"] {
            assert!(bundle.metrics_jsonl.contains(name), "missing {name}");
        }
        for line in bundle.metrics_jsonl.lines() {
            assert!(looks_like_valid_json(line), "{line}");
        }
    }
}
