//! Policy-driven query rewriting (the trusted monitor's second task).
//!
//! The paper's monitor makes queries compliant *by construction*: expiry
//! and reuse obligations become extra predicates stitched into the WHERE
//! clause, and inserts into policy-protected tables gain the bookkeeping
//! columns. Because the rewrite happens inside the monitor's TCB, clients
//! cannot bypass it.

use crate::eval::Obligation;
use crate::{PolicyError, Result};
use ironsafe_sql::ast::{BinOp, Expr, SelectStmt, Statement};
use ironsafe_sql::value::Value;

/// Bookkeeping column holding a record's expiry timestamp.
pub const EXPIRY_COL: &str = "__expiry";
/// Bookkeeping column holding a record's service opt-in bitmap.
pub const REUSE_COL: &str = "__reuse";

/// Facts needed to materialize obligations into SQL.
#[derive(Debug, Clone, Copy)]
pub struct RewriteContext {
    /// Logical access time `T` (compared against `__expiry`).
    pub access_time: i64,
    /// The requesting service's bit position in the reuse bitmap, as
    /// resolved by the monitor's identity→bit registry.
    pub service_bit: u32,
}

fn and_with(where_clause: &mut Option<Expr>, extra: Expr) {
    *where_clause = Some(match where_clause.take() {
        None => extra,
        Some(w) => Expr::bin(BinOp::And, w, extra),
    });
}

/// The injected expiry predicate: `__expiry >= T`.
pub fn expiry_predicate(access_time: i64) -> Expr {
    Expr::bin(BinOp::GtEq, Expr::col(EXPIRY_COL), Expr::int(access_time))
}

/// The injected reuse predicate: `(__reuse / 2^bit) % 2 = 1`.
pub fn reuse_predicate(service_bit: u32) -> Expr {
    let shifted = Expr::bin(BinOp::Div, Expr::col(REUSE_COL), Expr::int(1i64 << service_bit));
    let bit = Expr::bin(BinOp::Mod, shifted, Expr::int(2));
    Expr::bin(BinOp::Eq, bit, Expr::int(1))
}

/// Stitch read obligations into a `SELECT`'s WHERE clause.
pub fn rewrite_select(stmt: &mut SelectStmt, obligations: &[Obligation], ctx: &RewriteContext) {
    for ob in obligations {
        match ob {
            Obligation::ExpiryFilter => and_with(&mut stmt.where_clause, expiry_predicate(ctx.access_time)),
            Obligation::ReuseFilter => and_with(&mut stmt.where_clause, reuse_predicate(ctx.service_bit)),
            Obligation::Log { .. } => {} // discharged by the monitor's audit log
        }
    }
}

/// Stitch obligations into any statement's data-touching predicate and,
/// for inserts, append the bookkeeping column values.
///
/// * `default_ttl` — lifetime granted to newly inserted records.
/// * `default_reuse` — opt-in bitmap for newly inserted records.
pub fn rewrite_statement(
    stmt: &mut Statement,
    obligations: &[Obligation],
    ctx: &RewriteContext,
    default_ttl: i64,
    default_reuse: i64,
) -> Result<()> {
    match stmt {
        Statement::Select(sel) => {
            rewrite_select(sel, obligations, ctx);
            Ok(())
        }
        Statement::Update { where_clause, .. } | Statement::Delete { where_clause, .. } => {
            for ob in obligations {
                match ob {
                    Obligation::ExpiryFilter => and_with(where_clause, expiry_predicate(ctx.access_time)),
                    Obligation::ReuseFilter => and_with(where_clause, reuse_predicate(ctx.service_bit)),
                    Obligation::Log { .. } => {}
                }
            }
            Ok(())
        }
        Statement::Insert { columns, values, .. } => {
            let needs_expiry = obligations.contains(&Obligation::ExpiryFilter);
            let needs_reuse = obligations.contains(&Obligation::ReuseFilter);
            if !(needs_expiry || needs_reuse) {
                return Ok(());
            }
            let cols = columns.as_mut().ok_or_else(|| {
                PolicyError::Rewrite(
                    "INSERT into a policy-protected table must name its columns".into(),
                )
            })?;
            if needs_expiry {
                cols.push(EXPIRY_COL.to_string());
            }
            if needs_reuse {
                cols.push(REUSE_COL.to_string());
            }
            for row in values.iter_mut() {
                if needs_expiry {
                    row.push(Expr::Literal(Value::Int(ctx.access_time + default_ttl)));
                }
                if needs_reuse {
                    row.push(Expr::Literal(Value::Int(default_reuse)));
                }
            }
            Ok(())
        }
        Statement::CreateTable { .. } | Statement::DropTable { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_sql::ast::expr_to_sql;
    use ironsafe_sql::parser::parse_statement;
    use ironsafe_sql::Database;
    use ironsafe_storage::pager::PlainPager;

    fn ctx() -> RewriteContext {
        RewriteContext { access_time: 100, service_bit: 2 }
    }

    #[test]
    fn select_gains_expiry_filter() {
        let mut stmt = match parse_statement("SELECT p_name FROM people WHERE p_country = 'DE'").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        rewrite_select(&mut stmt, &[Obligation::ExpiryFilter], &ctx());
        let w = expr_to_sql(stmt.where_clause.as_ref().unwrap());
        assert!(w.contains("__expiry >= 100"), "{w}");
        assert!(w.contains("p_country"), "original predicate kept: {w}");
    }

    #[test]
    fn select_gains_reuse_filter() {
        let mut stmt = match parse_statement("SELECT p_name FROM people").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        rewrite_select(&mut stmt, &[Obligation::ReuseFilter], &ctx());
        let w = expr_to_sql(stmt.where_clause.as_ref().unwrap());
        assert!(w.contains("__reuse / 4"), "bit 2 ⇒ divide by 4: {w}");
    }

    #[test]
    fn insert_gains_bookkeeping_columns() {
        let mut stmt = parse_statement("INSERT INTO people (p_id, p_name) VALUES (1, 'x'), (2, 'y')").unwrap();
        rewrite_statement(
            &mut stmt,
            &[Obligation::ExpiryFilter, Obligation::ReuseFilter],
            &ctx(),
            365,
            0b101,
        )
        .unwrap();
        match stmt {
            Statement::Insert { columns, values, .. } => {
                let cols = columns.unwrap();
                assert_eq!(cols.last().unwrap(), REUSE_COL);
                assert_eq!(cols[cols.len() - 2], EXPIRY_COL);
                for row in &values {
                    assert_eq!(row.len(), 4);
                    assert_eq!(row[2], Expr::int(465));
                    assert_eq!(row[3], Expr::int(5));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_without_column_list_rejected() {
        let mut stmt = parse_statement("INSERT INTO people VALUES (1)").unwrap();
        assert!(rewrite_statement(&mut stmt, &[Obligation::ExpiryFilter], &ctx(), 1, 0).is_err());
    }

    #[test]
    fn log_obligation_does_not_touch_sql() {
        let mut stmt = match parse_statement("SELECT p_name FROM people").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        rewrite_select(&mut stmt, &[Obligation::Log { log: "audit".into() }], &ctx());
        assert!(stmt.where_clause.is_none());
    }

    #[test]
    fn rewritten_queries_filter_end_to_end() {
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE people (p_id INT, p_name TEXT, __expiry INT, __reuse INT)").unwrap();
        db.execute(
            "INSERT INTO people VALUES \
             (1, 'fresh-optin', 200, 4), \
             (2, 'fresh-optout', 200, 3), \
             (3, 'expired-optin', 50, 4)",
        )
        .unwrap();
        let mut stmt = match parse_statement("SELECT p_name FROM people").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        rewrite_select(&mut stmt, &[Obligation::ExpiryFilter, Obligation::ReuseFilter], &ctx());
        let r = db.select(&stmt).unwrap();
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "fresh-optin");
    }

    #[test]
    fn delete_gains_expiry_filter() {
        let mut stmt = parse_statement("DELETE FROM people WHERE p_id = 3").unwrap();
        rewrite_statement(&mut stmt, &[Obligation::ExpiryFilter], &ctx(), 0, 0).unwrap();
        match stmt {
            Statement::Delete { where_clause, .. } => {
                let w = expr_to_sql(where_clause.as_ref().unwrap());
                assert!(w.contains("__expiry >= 100"), "{w}");
            }
            other => panic!("{other:?}"),
        }
    }
}
