//! Shared fixture: an attested monitor + a loaded shared system.

use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_csa::cost::CostParams;
use ironsafe_csa::{CsaSystem, SharedCsaSystem, SystemConfig};
use ironsafe_monitor::{MonitorConfig, TrustedMonitor};
use ironsafe_policy::parse_policy;
use ironsafe_tee::image::SoftwareImage;
use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
use ironsafe_tee::trustzone::{
    AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Build a monitor with one attested host and one attested storage
/// node, plus a registered database `db` readable by `Ka`/`Kb` and
/// writable by `Ka`.
pub fn attested_monitor() -> TrustedMonitor {
    let group = Group::modp_1024();
    let mut rng = StdRng::seed_from_u64(31);

    let platform = SgxPlatform::from_seed(&group, b"host-platform");
    let host_image = SoftwareImage::new("host-engine", 5, b"engine".to_vec());
    let enclave = platform.create_enclave(&host_image, EnclaveConfig::default());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);

    let mfr = Manufacturer::from_seed(&group, b"acme");
    let device = mfr.make_device("storage-0", 8, &mut rng);
    let vendor = KeyPair::derive(&group, b"acme", b"tz-manufacturer-root");
    let images = BootImages {
        trusted_firmware: SignedImage::sign(
            &group,
            &vendor.secret,
            SoftwareImage::new("atf", 2, b"atf".to_vec()),
            &mut rng,
        ),
        trusted_os: SignedImage::sign(
            &group,
            &vendor.secret,
            SoftwareImage::new("optee", 34, b"optee".to_vec()),
            &mut rng,
        ),
        normal_world: SoftwareImage::new("nw", 3, b"kernel+engine".to_vec()),
    };
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).unwrap();

    let config = MonitorConfig {
        expected_host_measurement: host_image.measure(),
        expected_nw_measurement: booted.nw_measurement,
        latest_fw: 5,
    };
    let mut monitor = TrustedMonitor::new(&group, 77, ias, mfr.root_public(), config);

    let host_keys = KeyPair::generate(&group, &mut rng);
    let commitment = ironsafe_crypto::sha256::sha256(&host_keys.public.to_bytes(&group));
    let quote = Quote::generate(&platform, &enclave, &commitment, &mut rng);
    monitor.attest_host("host-0", "EU", &quote, &host_keys.public).unwrap();
    let challenge = monitor.storage_challenge();
    let resp = AttestationTa::new(&booted).respond(challenge, &mut rng);
    monitor.attest_storage("storage-0", "EU", &resp).unwrap();

    monitor.register_database(
        "db",
        parse_policy("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb)\nwrite :- sessionKeyIs(Ka)")
            .unwrap(),
    );
    monitor
}

/// One small shared system loaded with seeded TPC-H data.
pub fn shared_system(config: SystemConfig, sf: f64) -> Arc<SharedCsaSystem> {
    let data = ironsafe_tpch::generate(sf, 42);
    Arc::new(SharedCsaSystem::new(
        CsaSystem::build(config, &data, CostParams::default()).unwrap(),
    ))
}
