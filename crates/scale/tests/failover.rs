//! Shard failover under injected faults: a node killed mid-query is
//! quarantined and audited, a replica is promoted after re-verification,
//! and the in-flight query either completes bit-identically or returns
//! one typed error — never a panic.

use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_monitor::TrustedMonitor;
use ironsafe_scale::{FederatedCsaSystem, FederationConfig, ScaleError};
use ironsafe_csa::SystemConfig;
use ironsafe_tpch::queries::{paper_queries, PaperQuery};
use parking_lot::Mutex;
use std::sync::Arc;

const SF: f64 = 0.001;
const KEY: [u8; 32] = [9u8; 32];

fn q6() -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == 6).unwrap()
}

fn test_monitor() -> TrustedMonitor {
    use ironsafe_crypto::group::Group;
    use ironsafe_crypto::schnorr::KeyPair;
    use ironsafe_monitor::MonitorConfig;
    use ironsafe_tee::image::SoftwareImage;
    use ironsafe_tee::sgx::AttestationService;

    let group = Group::modp_1024();
    let ias = AttestationService::new(&group);
    let root = KeyPair::derive(&group, b"scale-test", b"tz-root").public;
    let config = MonitorConfig {
        expected_host_measurement: SoftwareImage::new("host", 1, b"host".to_vec()).measure(),
        expected_nw_measurement: SoftwareImage::new("nw", 1, b"nw".to_vec()).measure(),
        latest_fw: 1,
    };
    TrustedMonitor::new(&group, 7, ias, root, config)
}

fn build(shards: usize, replicas: usize) -> FederatedCsaSystem {
    let data = ironsafe_tpch::generate(SF, 42);
    let cfg = FederationConfig::new(shards, SystemConfig::IronSafe).with_replicas(replicas);
    FederatedCsaSystem::build(cfg, &data).unwrap()
}

/// Kill shard 1's primary mid-query: the query still completes with a
/// bit-identical report, the quarantine and promotion are audited (and
/// mirrored to an attached monitor), and the counters move.
#[test]
fn test_federation_failover() {
    let clean = build(4, 1);
    let (expected, _) = clean.run_query_federated(&q6(), KEY, 1).unwrap();

    let fed = build(4, 1);
    let monitor = Arc::new(Mutex::new(test_monitor()));
    fed.attach_monitor(Arc::clone(&monitor));
    fed.set_shard_fault_plan(1, FaultPlan::seeded(7).with_nth(FaultSite::EnclaveCrash, 1));

    let (report, _) = fed.run_query_federated(&q6(), KEY, 1).unwrap();
    assert_eq!(report.result, expected.result, "failover changed the result");
    assert_eq!(report.breakdown, expected.breakdown, "failover changed the breakdown");
    assert!(report.fanout_overhead_ns > expected.fanout_overhead_ns, "re-verification is free?");

    assert_eq!(fed.metrics().shard_quarantined.get(), 1);
    assert_eq!(fed.metrics().failover_promoted.get(), 1);
    assert!(fed.metrics().failover_reverified_pages.get() > 0);
    assert_eq!(fed.active_replica(1), 1, "shard 1 should be served by its replica");

    let events = fed.audit().stream("federation");
    assert!(
        events.iter().any(|e| e.message.contains("quarantined shard1-node0")),
        "no quarantine audit entry: {events:?}"
    );
    assert!(
        events.iter().any(|e| e.message.contains("promoted shard1-node1")),
        "no promotion audit entry: {events:?}"
    );
    assert!(fed.audit().verify(), "audit chain broken");
    let mirrored = monitor.lock().audit().stream("federation");
    assert_eq!(mirrored.len(), events.len(), "monitor chain missed federation events");
}

/// A replica that fails attestation is itself quarantined; with the
/// chain exhausted the query returns a typed error, not a panic.
#[test]
fn exhausted_chain_is_a_typed_error() {
    let fed = build(2, 1);
    fed.set_shard_fault_plan(0, FaultPlan::seeded(3).with_nth(FaultSite::EnclaveCrash, 1));
    fed.node(0, 1).poison_attestation();

    let err = fed.run_query_federated(&q6(), KEY, 1).unwrap_err();
    match err {
        ScaleError::ShardUnavailable { shard: 0, ref reason } => {
            assert!(reason.contains("attestation"), "unexpected reason: {reason}");
        }
        other => panic!("expected ShardUnavailable, got {other}"),
    }
    // Both the crashed primary and the unattested replica were audited.
    assert_eq!(fed.metrics().shard_quarantined.get(), 2);
    assert!(fed.audit().verify());
}

/// 50 seeded fault storms against every site at once: each run either
/// reproduces the clean result bit-identically or returns one typed
/// error. Nothing panics, the audit chain always verifies.
#[test]
fn seeded_storms_never_panic() {
    let clean = build(2, 1);
    let (expected, _) = clean.run_query_federated(&q6(), KEY, 1).unwrap();
    let queries = [q6()];

    let mut completed = 0u32;
    let mut failed_over = 0u32;
    let mut typed_errors = 0u32;
    for seed in 0..50u64 {
        let fed = build(2, 1);
        let mut plan = FaultPlan::seeded(seed);
        for site in ironsafe_faults::ALL_SITES {
            plan = plan.with_rate(site, 0.02 + (seed % 5) as f64 * 0.01);
        }
        if seed % 7 == 0 {
            // A determined adversary: the crash fires on the primary AND
            // re-fires on the promoted replica, exhausting the chain.
            plan = plan
                .with_nth(FaultSite::EnclaveCrash, 1)
                .with_nth(FaultSite::EnclaveCrash, 2);
        }
        fed.set_shard_fault_plan((seed % 2) as usize, plan);
        for q in &queries {
            match fed.run_query_federated(q, KEY, 1) {
                Ok((report, _)) => {
                    completed += 1;
                    assert_eq!(report.result, expected.result, "seed {seed}: result diverged");
                    assert_eq!(
                        report.breakdown, expected.breakdown,
                        "seed {seed}: breakdown diverged"
                    );
                }
                Err(e) => {
                    typed_errors += 1;
                    let _ = e.to_string(); // every error renders
                }
            }
        }
        failed_over += fed.metrics().failover_promoted.get() as u32;
        assert!(fed.audit().verify(), "seed {seed}: audit chain broken");
    }
    // The storm rates are high enough that all three outcomes occur.
    assert!(completed > 0, "no storm run ever completed");
    assert!(failed_over > 0, "no storm ever triggered a failover");
    assert!(typed_errors > 0, "no storm ever exhausted a chain");
}
