//! Minimal `crossbeam` shim.
//!
//! Provides `crossbeam::thread::scope` as a thin wrapper over
//! `std::thread::scope` (stable since Rust 1.63). Because std's scope
//! joins all threads and propagates panics itself, the wrapper always
//! returns `Ok` — matching the workspace's `.expect("threads join")`
//! call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::thread::{Scope as StdScope, ScopedJoinHandle};

    /// Handle for spawning scoped threads, mirroring crossbeam's `Scope`.
    ///
    /// Crossbeam passes the scope by value into each spawned closure, so
    /// this wrapper is `Copy` over the underlying std scope reference.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope StdScope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again,
        /// like crossbeam's API (which allows nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic out of
    /// `scope` (std semantics) instead of surfacing through `Err`, so
    /// the result is always `Ok` — fine for callers that `.expect()` it.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let hits = AtomicU64::new(0);
        let data = vec![1u64, 2, 3, 4];
        super::thread::scope(|s| {
            for &v in &data {
                let hits = &hits;
                s.spawn(move |_| {
                    hits.fetch_add(v, Ordering::Relaxed);
                });
            }
        })
        .expect("threads join");
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicU64::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("threads join");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|s| s.spawn(|_| 41).join().unwrap() + 1).unwrap();
        assert_eq!(v, 42);
    }
}
