//! Policy language: parse + evaluate + rewrite costs, with a
//! predicate-count scaling ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ironsafe_policy::eval::{evaluate, EvalContext, Obligation};
use ironsafe_policy::rewrite::{rewrite_select, RewriteContext};
use ironsafe_policy::{parse_policy, Perm};
use ironsafe_sql::ast::Statement;
use ironsafe_sql::parser::parse_statement;

fn ctx() -> EvalContext {
    EvalContext {
        session_key: "Kb".into(),
        host_loc: "EU".into(),
        storage_loc: Some("EU".into()),
        fw_host: 5,
        fw_storage: Some(34),
        latest_fw: 5,
    }
}

fn bench_parse(c: &mut Criterion) {
    let src = "read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)\n\
               write :- sessionKeyIs(Ka)\n\
               exec :- fwVersionStorage(latest) & fwVersionHost(latest) & storageLocIs(EU)";
    c.bench_function("policy_parse", |b| b.iter(|| parse_policy(std::hint::black_box(src)).unwrap()));
}

fn bench_eval_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_eval_predicates");
    for n in [1usize, 4, 16, 64] {
        let src = format!(
            "read :- {}",
            (0..n).map(|i| format!("sessionKeyIs(K{i})")).collect::<Vec<_>>().join(" | ")
        );
        let policy = parse_policy(&src).unwrap();
        let context = ctx(); // Kb matches none ⇒ worst case, all evaluated
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| evaluate(std::hint::black_box(&policy), Perm::Read, &context))
        });
    }
    g.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let stmt = parse_statement(
        "SELECT p_name, p_income FROM people WHERE p_country = 'DE' AND p_income > 10000",
    )
    .unwrap();
    let sel = match stmt {
        Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let obligations = [Obligation::ExpiryFilter, Obligation::ReuseFilter];
    let rw = RewriteContext { access_time: 100, service_bit: 3 };
    c.bench_function("policy_rewrite_select", |b| {
        b.iter(|| {
            let mut s = sel.clone();
            rewrite_select(&mut s, std::hint::black_box(&obligations), &rw);
            s
        })
    });
}

criterion_group!(benches, bench_parse, bench_eval_scaling, bench_rewrite);
criterion_main!(benches);
