//! Multiplicative Schnorr groups: a prime modulus `p` with a generator `g`
//! of a prime-order-`q` subgroup of `Z_p^*`.
//!
//! The default group ([`Group::modp_1024`]) is a 1024-bit modulus with a
//! 160-bit subgroup order (DSA-style parameters, generated offline and
//! verified prime with Miller–Rabin; a verification test lives in this
//! module). Short 160-bit exponents keep signing fast even in debug builds.
//! [`Group::tiny_test`] is a deliberately small group for exhaustive
//! property tests — never use it for anything security-relevant.

use crate::bignum::{BigUint, Montgomery};
use std::sync::Arc;

/// 1024-bit prime modulus (hex). `P = Q·r + 1` with `Q` prime.
const P_1024: &str = "862832b7a2783d6f40580e02ac5fb20f396d344c107ea27bc222d7cc1675e783\
630679d54d8511268ab38365c578edfb4e079a2ae1b436687c47a186e6ba3698\
43cadd772297316b5b7ee9634e0bbce247651e09624bdb7ab4f449ed38478a10\
449772cec88ee5101c785d269525cb0bfbd56f4a72be025e93a052d56722c049";
/// 160-bit prime subgroup order.
const Q_160: &str = "a015b21ec4814e195b2ae491a60aef788045e333";
/// Generator of the order-`Q` subgroup.
const G_1024: &str = "232889ff03cbeefaacd94f4bd59743ae329a0cc741d8bbe4ccdca9b2f41309b4\
2307bec366e5cdfe98a7ccc3f6e8bddc383d5f2feb6cf558ced3f52a5b969397\
d02684298493848dbf414fb527d67b97671899a3905e2afe5b97642076ef9c9c\
12e2699b1f08dadb08fedcd399b01c87c70e876e4387c1cc0cfc1bee38554c8b";

/// Tiny test group (64-bit p, 32-bit q): for property tests only.
const P_TINY: &str = "833b01447422d9e1";
const Q_TINY: &str = "8c4bfced";
const G_TINY: &str = "5f3839d5426de26e";

/// A Schnorr group (shared, cheap to clone).
#[derive(Clone)]
pub struct Group {
    inner: Arc<GroupInner>,
}

struct GroupInner {
    p: BigUint,
    q: BigUint,
    g: BigUint,
    mont: Montgomery,
    /// Serialized size of a group element in bytes.
    element_len: usize,
    /// Serialized size of a scalar in bytes.
    scalar_len: usize,
}

impl Group {
    fn from_hex(p: &str, q: &str, g: &str) -> Self {
        let p = BigUint::from_hex(p);
        let q = BigUint::from_hex(q);
        let g = BigUint::from_hex(g);
        let mont = Montgomery::new(&p);
        let element_len = p.bit_len().div_ceil(8);
        let scalar_len = q.bit_len().div_ceil(8);
        Group { inner: Arc::new(GroupInner { p, q, g, mont, element_len, scalar_len }) }
    }

    /// The default 1024/160-bit production group.
    pub fn modp_1024() -> Self {
        Self::from_hex(P_1024, Q_160, G_1024)
    }

    /// A tiny 64/32-bit group for fast property testing. **Insecure.**
    pub fn tiny_test() -> Self {
        Self::from_hex(P_TINY, Q_TINY, G_TINY)
    }

    /// Modulus `p`.
    pub fn p(&self) -> &BigUint {
        &self.inner.p
    }

    /// Subgroup order `q`.
    pub fn q(&self) -> &BigUint {
        &self.inner.q
    }

    /// Generator `g`.
    pub fn g(&self) -> &BigUint {
        &self.inner.g
    }

    /// Bytes needed to serialize a group element.
    pub fn element_len(&self) -> usize {
        self.inner.element_len
    }

    /// Bytes needed to serialize a scalar (mod q).
    pub fn scalar_len(&self) -> usize {
        self.inner.scalar_len
    }

    /// `base^exp mod p`.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.inner.mont.pow(base, exp)
    }

    /// `g^exp mod p`.
    pub fn pow_g(&self, exp: &BigUint) -> BigUint {
        self.pow(&self.inner.g, exp)
    }

    /// `(a * b) mod p`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.inner.mont.mul(a, b)
    }

    /// Reduce a scalar mod `q`.
    pub fn reduce_scalar(&self, s: &BigUint) -> BigUint {
        s.rem(&self.inner.q)
    }

    /// Sample a uniformly random nonzero scalar in `[1, q)`.
    pub fn random_scalar<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        // Rejection-free: draw 2× the scalar width and reduce; the bias is
        // 2^-160 — negligible, and this is a simulated platform anyway.
        let mut bytes = vec![0u8; self.inner.scalar_len * 2];
        loop {
            rng.fill_bytes(&mut bytes);
            let s = BigUint::from_bytes_be(&bytes).rem(&self.inner.q);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// Membership check: `x` in `[1, p)` and `x^q == 1 (mod p)`.
    pub fn is_element(&self, x: &BigUint) -> bool {
        !x.is_zero()
            && x.cmp_mag(&self.inner.p) == std::cmp::Ordering::Less
            && self.pow(x, &self.inner.q) == BigUint::one()
    }
}

impl std::fmt::Debug for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Group(p: {} bits, q: {} bits)", self.inner.p.bit_len(), self.inner.q.bit_len())
    }
}

/// Miller–Rabin probabilistic primality test with the given witness bases.
pub fn miller_rabin(n: &BigUint, bases: &[u64]) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    if n.cmp_mag(&two) == std::cmp::Ordering::Less {
        return false;
    }
    if !n.bit(0) {
        return *n == two;
    }
    // n - 1 = d * 2^s
    let n_minus_1 = n.sub(&one);
    let mut s = 0usize;
    while !n_minus_1.bit(s) {
        s += 1;
    }
    // d = (n-1) >> s
    let mut d = n_minus_1.clone();
    for _ in 0..s {
        let (q, _) = d.div_rem(&two);
        d = q;
    }
    'base: for &b in bases {
        let a = BigUint::from_u64(b).rem(n);
        if a.is_zero() || a == one {
            continue;
        }
        let mut x = a.mod_exp(&d, n);
        if x == one || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'base;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_group_parameters_are_prime_and_consistent() {
        let g = Group::tiny_test();
        assert!(miller_rabin(g.p(), &[2, 3, 5, 7, 11, 13, 17, 19, 23]));
        assert!(miller_rabin(g.q(), &[2, 3, 5, 7, 11, 13, 17, 19, 23]));
        // q | p - 1
        let (_, r) = g.p().sub(&BigUint::one()).div_rem(g.q());
        assert!(r.is_zero());
        // g has order q
        assert_eq!(g.pow_g(g.q()), BigUint::one());
        assert!(g.is_element(g.g()));
    }

    #[test]
    fn production_group_parameters_are_prime_and_consistent() {
        let g = Group::modp_1024();
        assert!(miller_rabin(g.p(), &[2, 3, 5]));
        assert!(miller_rabin(g.q(), &[2, 3, 5, 7, 11]));
        let (_, r) = g.p().sub(&BigUint::one()).div_rem(g.q());
        assert!(r.is_zero());
        assert_eq!(g.pow_g(g.q()), BigUint::one());
    }

    #[test]
    fn exponent_laws_hold() {
        let g = Group::tiny_test();
        let a = BigUint::from_u64(12345);
        let b = BigUint::from_u64(6789);
        // g^(a+b) == g^a * g^b
        let lhs = g.pow_g(&a.add(&b));
        let rhs = g.mul(&g.pow_g(&a), &g.pow_g(&b));
        assert_eq!(lhs, rhs);
        // exponents work mod q
        let a_red = g.reduce_scalar(&a.add(g.q()));
        assert_eq!(g.pow_g(&a_red), g.pow_g(&g.reduce_scalar(&a)));
    }

    #[test]
    fn random_scalars_in_range_and_distinct() {
        use rand::SeedableRng;
        let g = Group::modp_1024();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = g.random_scalar(&mut rng);
        let b = g.random_scalar(&mut rng);
        assert_ne!(a, b);
        assert!(!a.is_zero());
        assert!(a.cmp_mag(g.q()) == std::cmp::Ordering::Less);
    }

    #[test]
    fn non_elements_rejected() {
        let g = Group::tiny_test();
        assert!(!g.is_element(&BigUint::zero()));
        assert!(!g.is_element(g.p()));
        // p-1 has order 2, not q.
        let p_minus_1 = g.p().sub(&BigUint::one());
        assert!(!g.is_element(&p_minus_1));
    }

    #[test]
    fn miller_rabin_classifies_small_numbers() {
        let primes = [2u64, 3, 5, 7, 11, 101, 65537, 1_000_000_007];
        let composites = [1u64, 4, 9, 15, 561 /* Carmichael */, 65536, 1_000_000_008];
        for p in primes {
            assert!(miller_rabin(&BigUint::from_u64(p), &[2, 3, 5, 7, 11, 13]), "{p} is prime");
        }
        for c in composites {
            assert!(!miller_rabin(&BigUint::from_u64(c), &[2, 3, 5, 7, 11, 13]), "{c} is composite");
        }
    }
}
