//! Enclave restart-on-crash supervision.
//!
//! Real confidential-analytics deployments treat enclave death as a
//! routine protocol event: the host runtime rebuilds the enclave from
//! the same measured image on the same platform and the new instance
//! unseals its persisted state (the seal key depends only on platform
//! secret + measurement, so it survives the restart). RPMB-backed
//! freshness state lives outside the enclave entirely, which is what
//! lets the restarted instance resume without trusting the host.
//!
//! [`EnclaveSupervisor`] packages that protocol: it owns the current
//! [`Enclave`] plus everything needed to rebuild it, and its
//! [`enter`](EnclaveSupervisor::enter) retries transient EPC-pressure
//! aborts and transparently restarts after a crash, reloading sealed
//! state. Restarts are counted (`tee.enclave.restart`) and recovery is
//! reported to the fault plan's `faults.recovered` metric.

use crate::image::SoftwareImage;
use crate::sgx::enclave::{Enclave, EnclaveConfig, SgxPlatform};
use crate::sgx::seal::SealedBlob;
use crate::{Result, TeeError};
use ironsafe_faults::{FaultPlan, RetryPolicy, Transient};
use ironsafe_obs::{Counter, Registry};
use std::sync::Arc;

/// Supervises one enclave: bounded retry on transient entry aborts,
/// restart + sealed-state reload on crash.
pub struct EnclaveSupervisor {
    platform: Arc<SgxPlatform>,
    image: SoftwareImage,
    config: EnclaveConfig,
    fault_plan: FaultPlan,
    policy: RetryPolicy,
    enclave: Enclave,
    sealed_state: Option<SealedBlob>,
    state: Option<Vec<u8>>,
    restarts: Counter,
}

impl std::fmt::Debug for EnclaveSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EnclaveSupervisor({:?}, restarts={})", self.enclave, self.restarts.get())
    }
}

impl EnclaveSupervisor {
    /// Build the supervised enclave from `image` on `platform`.
    pub fn new(
        platform: Arc<SgxPlatform>,
        image: SoftwareImage,
        config: EnclaveConfig,
        fault_plan: FaultPlan,
    ) -> Self {
        let enclave =
            platform.create_enclave_with_faults(&image, config.clone(), fault_plan.clone());
        EnclaveSupervisor {
            platform,
            image,
            config,
            fault_plan,
            policy: RetryPolicy::default(),
            enclave,
            sealed_state: None,
            state: None,
            restarts: Counter::new(),
        }
    }

    /// The currently running enclave instance.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Override the retry budget used for entry recovery.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Seal `state` to the enclave and keep the blob for restarts. The
    /// plaintext is also cached as the supervisor's view of the running
    /// state (what [`EnclaveSupervisor::state`] returns).
    pub fn seal_state(&mut self, state: &[u8], rng: &mut (impl rand::Rng + ?Sized)) {
        self.sealed_state = Some(self.enclave.seal(state, rng));
        self.state = Some(state.to_vec());
    }

    /// The last sealed-then-(re)loaded state, if any.
    pub fn state(&self) -> Option<&[u8]> {
        self.state.as_deref()
    }

    /// How many times the enclave has been rebuilt after a crash.
    pub fn restarts(&self) -> u64 {
        self.restarts.get()
    }

    /// Attach `tee.enclave.restart` plus the current enclave's counters
    /// to `registry`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("tee.enclave.restart", &self.restarts);
        self.enclave.register_metrics(registry);
    }

    /// Rebuild the enclave from the measured image and reload sealed
    /// state into the new instance. Fails only if the sealed blob no
    /// longer authenticates (wrong platform/image — a real compromise,
    /// not a fault to retry).
    fn restart(&mut self) -> Result<()> {
        self.enclave = self.platform.create_enclave_with_faults(
            &self.image,
            self.config.clone(),
            self.fault_plan.clone(),
        );
        if let Some(blob) = &self.sealed_state {
            // Same platform + same measurement ⇒ same seal key.
            self.state = Some(self.enclave.unseal(blob)?);
        }
        self.restarts.inc();
        Ok(())
    }

    /// Enter the enclave, recovering from transient aborts (bounded
    /// retry with simulated backoff) and from crashes (restart + sealed
    /// state reload). Returns the first non-recoverable error.
    pub fn enter(&mut self) -> Result<()> {
        let budget = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match self.enclave.enter() {
                Ok(()) => {
                    if attempt > 0 {
                        self.fault_plan.note_recovered();
                    }
                    return Ok(());
                }
                // A destroyed enclave is restartable: rebuild and reload.
                Err(TeeError::InvalidState(_)) if attempt + 1 < budget => {
                    self.fault_plan.note_retried();
                    ironsafe_obs::span::add_sim_ns("other", self.policy.backoff_ns(attempt));
                    self.restart()?;
                    attempt += 1;
                }
                Err(e) if e.is_transient() && attempt + 1 < budget => {
                    self.fault_plan.note_retried();
                    ironsafe_obs::span::add_sim_ns("other", self.policy.backoff_ns(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    if attempt > 0 {
                        self.fault_plan.note_exhausted();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Exit the enclave (OCALL). Exit faults are not injected; a crash
    /// between enter and exit shows up at the *next* enter.
    pub fn exit(&mut self) -> Result<()> {
        self.enclave.exit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_crypto::group::Group;
    use ironsafe_faults::FaultSite;
    use rand::SeedableRng;

    fn supervisor(plan: FaultPlan) -> EnclaveSupervisor {
        let platform = Arc::new(SgxPlatform::from_seed(&Group::modp_1024(), b"sup-host"));
        let image = SoftwareImage::new("host-engine", 1, b"engine".to_vec());
        EnclaveSupervisor::new(platform, image, EnclaveConfig::default(), plan)
    }

    #[test]
    fn crash_triggers_restart_and_state_reload() {
        let plan = FaultPlan::seeded(11).with_nth(FaultSite::EnclaveCrash, 2);
        let mut sup = supervisor(plan.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        sup.seal_state(b"session table v7", &mut rng);

        sup.enter().unwrap(); // arrival 1: fine
        sup.exit().unwrap();
        sup.enter().unwrap(); // arrival 2 crashes; supervisor restarts
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.state(), Some(&b"session table v7"[..]), "sealed state reloaded");
        assert_eq!(plan.metrics().recovered.get(), 1);
        assert!(plan.metrics().retried.get() >= 1);
    }

    #[test]
    fn epc_pressure_is_retried_without_restart() {
        let plan = FaultPlan::seeded(12).with_nth(FaultSite::EpcAbort, 1);
        let mut sup = supervisor(plan.clone());
        sup.enter().unwrap();
        assert_eq!(sup.restarts(), 0, "transient abort must not rebuild the enclave");
        assert_eq!(plan.metrics().recovered.get(), 1);
    }

    #[test]
    fn repeated_crashes_exhaust_the_budget_cleanly() {
        let plan = FaultPlan::seeded(13).with_rate(FaultSite::EnclaveCrash, 1.0);
        let mut sup = supervisor(plan.clone());
        let err = sup.enter().unwrap_err();
        assert!(matches!(err, TeeError::InvalidState(_)), "typed error, not a panic: {err}");
        assert_eq!(plan.metrics().exhausted.get(), 1);
        assert!(sup.restarts() >= 1, "it did try restarting");
    }

    #[test]
    fn restart_counter_is_exported() {
        let plan = FaultPlan::seeded(14).with_nth(FaultSite::EnclaveCrash, 1);
        let mut sup = supervisor(plan);
        let registry = Registry::new();
        sup.register_metrics(&registry);
        sup.enter().unwrap();
        assert_eq!(registry.snapshot().counter("tee.enclave.restart"), Some(1));
    }
}
