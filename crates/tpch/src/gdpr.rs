//! Personal-data workload for the GDPR anti-pattern experiments (Table 3).
//!
//! A `people` table of customer records, the kind of personal data the
//! paper's scenario shares between controllers A (airline) and B (hotel).
//! The trusted monitor's policy rewriting adds its bookkeeping columns
//! (`__expiry`, `__reuse`) on insert — see `ironsafe-policy`.

use ironsafe_sql::{Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DDL for the personal-data table (without policy bookkeeping columns).
pub const PEOPLE_DDL: &str = "CREATE TABLE people (p_id INT, p_name TEXT, p_email TEXT, \
     p_country TEXT, p_income FLOAT, p_flight TEXT, p_arrival DATE)";

/// DDL variant including the policy bookkeeping columns the trusted
/// monitor provisions when expiry/reuse policies are attached.
pub const PEOPLE_DDL_POLICY: &str = "CREATE TABLE people (p_id INT, p_name TEXT, p_email TEXT, \
     p_country TEXT, p_income FLOAT, p_flight TEXT, p_arrival DATE, __expiry INT, __reuse INT)";

/// Countries appearing in the data.
pub const COUNTRIES: &[&str] = &["DE", "PT", "UK", "FR", "IT", "ES", "NL", "SE"];

/// Generate `n` plain person rows (no policy columns).
pub fn gen_people(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as i64)
        .map(|i| {
            let c = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
            vec![
                Value::Int(i),
                Value::Text(format!("Person#{i:06}")),
                Value::Text(format!("person{i}@example.{}", c.to_ascii_lowercase())),
                Value::Text(c.to_string()),
                Value::Float((rng.gen_range(20_000..200_000) as f64) / 1.0),
                Value::Text(format!("LH{:04}", rng.gen_range(1..2000))),
                Value::Text(format!("1997-{:02}-{:02}", rng.gen_range(1..=12), rng.gen_range(1..=28))),
            ]
        })
        .collect()
}

/// Generate person rows carrying policy bookkeeping columns.
///
/// * `expiry`: logical timestamp after which the record must not be
///   readable (anti-pattern #1); records get expiries in `[10, 10 + n)`.
/// * `reuse`: opt-in bitmap of services allowed to process the record
///   (anti-pattern #2).
pub fn gen_people_with_policy(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    gen_people(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, mut row)| {
            row.push(Value::Int(10 + i as i64));
            row.push(Value::Int(rng.gen_range(0..16)));
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_sql::Database;
    use ironsafe_storage::pager::PlainPager;

    #[test]
    fn people_load_and_query() {
        let mut db = Database::new(PlainPager::new());
        db.execute(PEOPLE_DDL).unwrap();
        db.insert_rows("people", gen_people(500, 1)).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM people WHERE p_country = 'DE'").unwrap();
        let n = r.rows()[0][0].as_i64().unwrap();
        assert!(n > 0 && n < 500);
    }

    #[test]
    fn policy_rows_have_bookkeeping_columns() {
        let mut db = Database::new(PlainPager::new());
        db.execute(PEOPLE_DDL_POLICY).unwrap();
        db.insert_rows("people", gen_people_with_policy(100, 1)).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM people WHERE __expiry < 50").unwrap();
        assert_eq!(r.rows()[0][0].as_i64().unwrap(), 40);
        let r = db.execute("SELECT MIN(__reuse), MAX(__reuse) FROM people").unwrap();
        assert!(r.rows()[0][0].as_i64().unwrap() >= 0);
        assert!(r.rows()[0][1].as_i64().unwrap() < 16);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen_people(10, 3), gen_people(10, 3));
        assert_ne!(gen_people(10, 3), gen_people(10, 4));
    }
}
