//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! paperbench [fig6|...|fig12|saturation|table3|table4|ablation|parallel|chaos|freshness|profile|shards|vectors|adaptive|all] [--sf <f>] [--json] [--check] [--metrics-out <path>]
//! ```
//!
//! `parallel` (not part of `all`) sweeps morsel-driven execution across
//! DOP 1/2/4/8 on Q1 and Q6, reporting real wall-clock speedup; it
//! defaults to SF 0.01 unless `--sf` is given explicitly.
//!
//! `chaos` (not part of `all`) sweeps seeded fault injection across
//! rates and demonstrates per-surface recovery; with `--metrics-out`
//! the aggregated `faults.*` counters are written as JSON lines to
//! `<path>.metrics.jsonl`.
//!
//! `freshness` (not part of `all`) sweeps the Merkle freshness fast
//! path — per-page climbs vs shared-path batches vs the warm
//! verified-node cache — across arities and access patterns, then
//! measures the whole-query effect on Q1/Q6/Q18; `--json` additionally
//! writes the snapshot to `BENCH_5.json`.
//!
//! `profile` (not part of `all`) runs the end-to-end query profiler:
//! `EXPLAIN ANALYZE` profiles for Q1/Q6 across every Table 2
//! configuration, rendered for the IronSafe config and summarized for
//! the rest. `--json` writes the deterministic snapshot to
//! `BENCH_6.json`; `--check` regenerates it and byte-compares against
//! the committed baseline, exiting nonzero on any drift (the profiler
//! regression gate). Defaults to SF 0.002 unless `--sf` is given.
//!
//! `shards` (not part of `all`) sweeps the sharded federation
//! (`ironsafe-scale`) across N ∈ {1, 2, 4, 8} storage nodes: per-cell
//! shard-count invariants (simulated total, shipped rows/bytes, pages
//! read, result digest — all bit-identical at any N) plus measured
//! wall-clock throughput and p95 latency. `--json` writes the snapshot
//! to `BENCH_7.json`; `--check` regenerates the deterministic
//! invariants block and compares it byte for byte against the committed
//! baseline, exiting nonzero on drift (the federation regression gate).
//! Defaults to SF 0.002 unless `--sf` is given.
//!
//! `vectors` (not part of `all`) sweeps vectorized (column-batch)
//! execution against the scalar baseline and compress-before-encrypt
//! pages against the raw store, Q1/Q6 on IronSafe: result digests and
//! physical counters per mode, the per-query encrypted-byte/MAC
//! dividend of compression, and measured scalar-vs-vector wall-clock
//! speedup at DOP 1. `--json` writes the snapshot to `BENCH_8.json`;
//! `--check` regenerates the deterministic invariants block and
//! compares it byte for byte against the committed baseline, exiting
//! nonzero on drift (the vectorization regression gate). Defaults to
//! SF 0.002 unless `--sf` is given.
//!
//! `adaptive` (not part of `all`) sweeps the telemetry-driven offload
//! optimizer against both static placement policies across a
//! selectivity × EPC-pressure grid on scs, plus a mis-estimate
//! mid-flight re-planning demo. Digests are bit-identical across all
//! three policies at every point and the adaptive total never exceeds
//! the better static policy. `--json` writes the snapshot to
//! `BENCH_10.json`; `--check` regenerates it and byte-compares against
//! the committed baseline, exiting nonzero on drift (the optimizer
//! regression gate). Defaults to SF 0.002 unless `--sf` is given.
//!
//! `saturation` additionally runs the mixed read/write sweep when
//! invoked directly (not under `all`): snapshot reads pinned while a
//! group-commit writer streams updates — digests and simulated costs
//! bit-identical to the quiesced run — a group-size 1 vs 4 WAL/RPMB
//! amortization block, and measured p50/p95 read latency under a
//! concurrent writer thread. `--json` writes the snapshot to
//! `BENCH_9.json`; `--check` regenerates the deterministic invariants
//! block and byte-compares it against the committed baseline, exiting
//! nonzero on drift (the write-path regression gate).
//!
//! `--metrics-out` additionally runs every paper query under IronSafe,
//! writes the merged span timeline as Chrome `trace_event` JSON to
//! `<path>` (open in Perfetto / `chrome://tracing`), and the live
//! subsystem counters as JSON lines to `<path>.metrics.jsonl`.

use ironsafe_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut sf = DEFAULT_SF;
    let mut sf_given = false;
    let mut metrics_out: Option<String> = None;
    let mut json_out = false;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json_out = true,
            "--check" => check = true,
            "--sf" => {
                i += 1;
                sf = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SF);
                sf_given = true;
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = args.get(i).cloned();
                if metrics_out.is_none() {
                    eprintln!("--metrics-out requires a path");
                    std::process::exit(2);
                }
            }
            other => what = other.to_string(),
        }
        i += 1;
    }
    let all = what == "all";

    println!("IronSafe paper-evaluation harness (TPC-H SF {sf} ≈ paper SF {} ÷ 1000)", sf * 1000.0);
    println!("Table 2 configurations: hons, hos, vcs, scs (IronSafe), sos\n");

    if all || what == "fig6" {
        println!("== Figure 6: query speedup from CS execution (higher is better) ==");
        println!("{:>5} {:>18} {:>18}", "query", "hons/vcs", "hos/scs");
        let rows = fig6(sf);
        let mut gm_ns = 1.0f64;
        let mut gm_s = 1.0f64;
        for r in &rows {
            println!("{:>5} {:>17.2}x {:>17.2}x", format!("#{}", r.query), r.speedup_nonsecure, r.speedup_secure);
            gm_ns *= r.speedup_nonsecure;
            gm_s *= r.speedup_secure;
        }
        let n = rows.len() as f64;
        println!("{:>5} {:>17.2}x {:>17.2}x  (geometric mean)\n", "avg", gm_ns.powf(1.0 / n), gm_s.powf(1.0 / n));
    }

    if all || what == "fig7" {
        println!("== Figure 7: host<->storage I/O reduction (pages, hons/vcs) ==");
        println!("{:>5} {:>14}", "query", "reduction");
        for r in fig7(sf) {
            println!("{:>5} {:>13.2}x", format!("#{}", r.query), r.io_reduction);
        }
        println!();
    }

    if all || what == "fig8" {
        println!("== Figure 8: IronSafe (scs) cost breakdown per query ==");
        println!("{:>5} {:>8} {:>10} {:>9} {:>8}", "query", "ndp", "freshness", "decrypt", "other");
        for r in fig8(sf) {
            println!(
                "{:>5} {:>7.1}% {:>9.1}% {:>8.1}% {:>7.1}%",
                format!("#{}", r.query),
                r.ndp * 100.0,
                r.freshness * 100.0,
                r.crypto * 100.0,
                r.other * 100.0
            );
        }
        println!();
    }

    if all || what == "fig9a" {
        println!("== Figure 9a: Q1 latency vs input size (simulated s, lower is better) ==");
        println!("{:>6} {:>10} {:>10} {:>10}", "SF", "hos", "scs", "sos");
        for p in fig9a(&[sf, sf * 4.0 / 3.0, sf * 5.0 / 3.0]) {
            println!("{:>6.1} {:>10.4} {:>10.4} {:>10.4}", p.x, p.hos, p.scs, p.sos);
        }
        println!();
    }

    if all || what == "fig9b" {
        println!("== Figure 9b: Q1 latency vs selectivity (simulated s) ==");
        println!("{:>6} {:>10} {:>10} {:>10}", "sel%", "hos", "scs", "sos");
        for p in fig9b(sf, &[10, 20, 40, 60, 80, 100]) {
            println!("{:>6.0} {:>10.4} {:>10.4} {:>10.4}", p.x, p.hos, p.scs, p.sos);
        }
        println!();
    }

    if all || what == "fig9c" {
        println!("== Figure 9c: sos secure-storage breakdown (Q2, Q9) ==");
        println!("{:>5} {:>10} {:>9} {:>11}", "query", "freshness", "decrypt", "processing");
        for r in fig9c(sf, &[2, 9]) {
            println!(
                "{:>5} {:>9.1}% {:>8.1}% {:>10.1}%",
                format!("#{}", r.query),
                r.freshness * 100.0,
                r.decrypt * 100.0,
                r.processing * 100.0
            );
        }
        println!();
    }

    if all || what == "fig10" {
        println!("== Figure 10: hos/scs speedup vs storage CPUs ==");
        let cores = [1u32, 2, 4, 8, 16];
        print!("{:>5}", "query");
        for c in cores {
            print!(" {:>8}", format!("{c} cpu"));
        }
        println!();
        for r in fig10(sf, &cores) {
            print!("{:>5}", format!("#{}", r.query));
            for (_, s) in &r.series {
                print!(" {:>7.2}x", s);
            }
            println!();
        }
        println!();
    }

    if all || what == "fig11" {
        println!("== Figure 11: scs speedup vs storage memory (vs smallest budget) ==");
        let mems = [128 * 1024u64, 256 * 1024, 2 * 1024 * 1024];
        print!("{:>5}", "query");
        for m in mems {
            print!(" {:>9}", format!("{}KiB", m / 1024));
        }
        println!("   (paper: 128MiB/256MiB/2GiB, scaled 1/1024)");
        for r in fig11(sf, &mems) {
            print!("{:>5}", format!("#{}", r.query));
            for (_, s) in &r.series {
                print!(" {:>8.2}x", s);
            }
            println!();
        }
        println!();
    }

    if all || what == "fig12" {
        println!("== Figure 12: serving scalability — N sessions, one shared system (wall-clock vs ideal) ==");
        let counts = [1usize, 2, 4, 8, 16];
        let ids = [1u8, 6, 12, 13];
        print!("{:>5}", "query");
        for n in counts {
            print!(" {:>8}", format!("{n} sess"));
        }
        println!("   (≈1.00 = linear scaling)");
        for r in fig12(sf.min(0.002), &counts, &ids) {
            print!("{:>5}", format!("#{}", r.query));
            for (_, s) in &r.series {
                print!(" {:>7.2}x", s);
            }
            println!();
        }
        println!();
    }

    if all || what == "saturation" {
        println!("== Saturation: offered load vs queue wait (4-worker pool, simulated time) ==");
        println!("{:>8} {:>12} {:>12} {:>10}", "load", "p50 wait", "p95 wait", "rejected");
        let loads = [0.25, 0.5, 0.75, 0.9, 1.1, 1.5];
        for r in saturation(sf.min(0.002), 4, &loads, 2000) {
            println!(
                "{:>7.0}% {:>10.1}µs {:>10.1}µs {:>9.1}%",
                r.offered * 100.0,
                r.p50_wait_us,
                r.p95_wait_us,
                r.rejected * 100.0
            );
        }
        println!();
    }

    if what == "saturation" {
        let msf = if sf_given { sf } else { WRITES_SF };
        println!("== Mixed read/write: snapshot reads under a group-commit writer (SF {msf}) ==\n");
        let (cells, amort) = mixed_sweep(msf, &WRITE_BURSTS);
        println!(
            "{:>6} {:>6} {:>18} {:>14} {:>18}",
            "burst", "epoch", "snapshot digest", "read (sim)", "fresh digest"
        );
        for c in &cells {
            println!(
                "{:>6} {:>6} {:>18} {:>12.0}ns {:>18}",
                c.writer_txns, c.epoch, c.read_digest, c.read_total_ns, c.fresh_digest
            );
        }
        println!("(snapshot digest+cost bit-identical to the quiesced run at the pinned epoch)\n");
        println!(
            "group-commit amortization over {} txns: WAL records {} -> {}, \
             WAL bytes {} -> {}, RPMB binds {} -> {} (group size 1 -> 4)\n",
            amort.txns,
            amort.appends_g1,
            amort.appends_g4,
            amort.bytes_g1,
            amort.bytes_g4,
            amort.rpmb_g1,
            amort.rpmb_g4
        );
        let writer_loads = [0usize, 16, 64, 128];
        let wallclock = mixed_wallclock(msf, &writer_loads);
        println!(
            "{:>10} {:>6} {:>10} {:>10}   (wall-clock read latency, 2 readers)",
            "writer txn", "reads", "p50", "p95"
        );
        for w in &wallclock {
            println!(
                "{:>10} {:>6} {:>8.2}ms {:>8.2}ms",
                w.writer_txns, w.reads, w.p50_ms, w.p95_ms
            );
        }
        println!("(non-blocking contract: percentiles flat within noise as write load rises)\n");
        let inv_block = writes_invariants_json(msf, &cells, &amort);
        if check {
            let baseline = std::fs::read_to_string("BENCH_9.json")
                .expect("saturation --check needs the committed BENCH_9.json baseline");
            if baseline.contains(&inv_block) {
                println!("saturation: invariants match BENCH_9.json byte for byte (gate passes)");
            } else {
                eprintln!("saturation: invariants DIVERGE from BENCH_9.json:");
                let committed_block = baseline
                    .find("  \"invariants\"")
                    .and_then(|start| {
                        baseline[start..].find("\n  }").map(|end| &baseline[start..start + end + 4])
                    })
                    .unwrap_or("(no invariants block found)");
                for d in ironsafe_bench::diff_snapshots(committed_block, &inv_block) {
                    eprintln!("{d}");
                }
                eprintln!(
                    "(regenerate with `paperbench saturation --json` if the change is intended)"
                );
                std::process::exit(1);
            }
        }
        if json_out {
            let json = writes_json(msf, &cells, &amort, &wallclock);
            assert!(
                ironsafe_obs::export::looks_like_valid_json(&json),
                "saturation snapshot failed JSON self-check"
            );
            std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");
            println!("saturation: wrote mixed read/write snapshot to BENCH_9.json");
        }
        return;
    }

    if all || what == "table3" {
        println!("== Table 3: GDPR anti-patterns, non-secure vs IronSafe (wall-clock ms) ==");
        println!("{:<28} {:>12} {:>12} {:>10}", "anti-pattern", "non-secure", "IronSafe", "overhead");
        for r in table3(20_000) {
            println!(
                "{:<28} {:>10.2}ms {:>10.2}ms {:>9.1}x",
                r.name,
                r.nonsecure_ms,
                r.ironsafe_ms,
                r.overhead()
            );
        }
        println!();
    }

    if all || what == "ablation" {
        println!("== Ablation: static vs adaptive partitioner (scs, simulated ms) ==");
        println!("{:>5} {:>12} {:>12} {:>8}", "query", "static", "adaptive", "gain");
        for r in partitioner_ablation(sf) {
            println!(
                "{:>5} {:>10.2}ms {:>10.2}ms {:>7.2}x",
                format!("#{}", r.query),
                r.static_ns / 1e6,
                r.adaptive_ns / 1e6,
                r.static_ns / r.adaptive_ns
            );
        }
        println!();
    }

    if all || what == "table4" {
        println!("== Table 4: attestation latency breakdown (wall-clock) ==");
        let t = table4();
        println!("{:<28} {:>10}   (paper reference)", "component", "measured");
        println!("{:<28} {:>8.2}ms   (140 ms)", "host: CAS response", t.host_cas_ms);
        println!("{:<28} {:>8.2}ms   (453 ms)", "storage: TEE", t.storage_tee_ms);
        println!("{:<28} {:>8.2}ms   ( 54 ms)", "storage: REE", t.storage_ree_ms);
        println!("{:<28} {:>8.2}ms   ( 42 ms)", "interconnect", t.interconnect_ms);
        println!("{:<28} {:>8.2}ms   (689 ms)", "total", t.total_ms());
        println!();
    }

    if what == "parallel" {
        // Wall-clock sweep; bigger default SF than the simulated figures
        // so per-run work dwarfs thread startup.
        let psf = if sf_given { sf } else { 0.01 };
        println!("== Morsel-driven parallel execution (wall-clock, SF {psf}) ==");
        println!(
            "{:>5} {:>4} {:>10} {:>8} {:>10} {:>8}",
            "query", "dop", "plain", "speedup", "secure", "speedup"
        );
        for r in parallel(psf, &[1, 2, 4, 8]) {
            println!(
                "{:>5} {:>4} {:>8.2}ms {:>7.2}x {:>8.2}ms {:>7.2}x",
                format!("#{}", r.query),
                r.dop,
                r.plain_ms,
                r.plain_speedup,
                r.secure_ms,
                r.secure_speedup
            );
        }
        println!("(rows verified bit-identical to serial at every DOP)\n");
    }

    if what == "chaos" {
        // Seeds × rates = 50 combos, the acceptance floor for the sweep.
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let rates = [0.0005, 0.002, 0.01, 0.05, 0.2];
        let csf = if sf_given { sf } else { 0.002 };
        println!("== Chaos: seeded fault storms on scs (SF {csf}, {} seeds x {} rates) ==", seeds.len(), rates.len());
        let report = chaos::run_chaos(csf, &seeds, &rates);
        println!(
            "{:>8} {:>6} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
            "rate", "runs", "identical", "errors", "injected", "retried", "recovered", "exhausted"
        );
        for r in &report.rows {
            println!(
                "{:>7.2}% {:>6} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
                r.rate * 100.0, r.runs, r.identical, r.typed_errors,
                r.injected, r.retried, r.recovered, r.exhausted
            );
        }
        println!("\nper-surface recovery (one scheduled transient fault each):");
        for s in &report.surfaces {
            println!(
                "  {:<8} injected {:>2}, recovered {:>2}  {}",
                s.surface, s.injected, s.recovered,
                if s.ok { "OK" } else { "FAILED" }
            );
        }
        println!("\ncrash-during-commit storms (group-commit WAL, power-off + recovery per storm):");
        println!(
            "  {:<13} {:>6} {:>8} {:>9} {:>9} {:>9} {:>10}",
            "site", "storms", "crashed", "absorbed", "injected", "replayed", "discarded"
        );
        for c in &report.commits {
            println!(
                "  {:<13} {:>6} {:>8} {:>9} {:>9} {:>9} {:>10}",
                c.site, c.storms, c.crashed, c.absorbed, c.injected, c.replayed, c.discarded
            );
        }
        println!("  (every recovery asserted prefix-consistent: acked rows, never a torn transaction)");
        println!("\n{} seed x rate combos; every run: identical rows or a typed error, no panics\n", report.combos);
        if let Some(path) = metrics_out {
            let sidecar = format!("{path}.metrics.jsonl");
            std::fs::write(&sidecar, &report.metrics_jsonl).expect("write chaos metrics sidecar");
            println!("chaos: wrote fault counters to {sidecar}");
        }
        return;
    }

    if what == "freshness" {
        println!("== Freshness fast path: Merkle node visits, three verification modes ==");
        println!(
            "{:>5} {:>11} {:>8} {:>10} {:>9} {:>8} {:>9}",
            "arity", "pattern", "accesses", "per-page", "batched", "cached", "hit rate"
        );
        let sweep = freshness_sweep(4096);
        for r in &sweep {
            println!(
                "{:>5} {:>11} {:>8} {:>10} {:>9} {:>8} {:>8.1}%",
                r.arity,
                r.pattern,
                r.accesses,
                r.per_page_visits,
                r.batched_visits,
                r.cached_visits,
                r.cache_hit_rate * 100.0
            );
        }
        println!("\n== Whole-query effect (scs, SF {sf}, cold start) ==");
        println!(
            "{:>5} {:>12} {:>11} {:>10} {:>9} {:>15}",
            "query", "per-page", "fast path", "reduction", "hit rate", "fig8 freshness"
        );
        let queries = freshness_queries(sf, &[1, 6, 18]);
        for r in &queries {
            println!(
                "{:>5} {:>12} {:>11} {:>9.2}x {:>8.1}% {:>14.1}%",
                format!("#{}", r.query),
                r.per_page_visits,
                r.fast_path_visits,
                r.reduction,
                r.cache_hit_rate * 100.0,
                r.freshness_share * 100.0
            );
        }
        println!("(rows verified identical with the cache on and off at every point)");
        if json_out {
            let json = freshness_json(sf, &sweep, &queries);
            assert!(
                ironsafe_obs::export::looks_like_valid_json(&json),
                "freshness snapshot failed JSON self-check"
            );
            std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
            println!("freshness: wrote perf snapshot to BENCH_5.json");
        }
        println!();
        return;
    }

    if what == "shards" {
        let ssf = if sf_given { sf } else { SHARDS_SF };
        let ids = [1u8, 6];
        println!(
            "== Sharded federation: Q1/Q6 on scs across N storage nodes (SF {ssf}) ==\n"
        );
        let (invariants, wallclock) = shards_sweep(ssf, &SHARD_COUNTS, &ids);
        println!(
            "{:>5} {:>3} {:>14} {:>12} {:>9} {:>10} {:>10} {:>18}",
            "query", "N", "total (sim)", "fanout ovh", "rows", "bytes", "pages", "result digest"
        );
        for inv in &invariants {
            println!(
                "{:>5} {:>3} {:>12.0}ns {:>10.0}ns {:>9} {:>10} {:>10} {:>18}",
                format!("#{}", inv.query_id),
                inv.shards,
                inv.total_ns,
                inv.fanout_overhead_ns,
                inv.rows_shipped,
                inv.bytes_shipped,
                inv.pages_read,
                inv.result_digest
            );
        }
        println!("(total/rows/bytes/pages/digest bit-identical at every N — asserted above)\n");
        println!("{:>3} {:>6} {:>10} {:>10}   (wall-clock, Q6 serving loop)", "N", "runs", "qps", "p95");
        for w in &wallclock {
            println!("{:>3} {:>6} {:>10.1} {:>8.2}ms", w.shards, w.runs, w.qps, w.p95_ms);
        }
        println!();
        let inv_block = shards_invariants_json(ssf, &invariants);
        if check {
            let baseline = std::fs::read_to_string("BENCH_7.json")
                .expect("shards --check needs the committed BENCH_7.json baseline");
            if baseline.contains(&inv_block) {
                println!("shards: invariants match BENCH_7.json byte for byte (gate passes)");
            } else {
                eprintln!("shards: invariants DIVERGE from BENCH_7.json:");
                let committed_block = baseline
                    .find("  \"invariants\"")
                    .and_then(|start| {
                        baseline[start..].find("\n  }").map(|end| &baseline[start..start + end + 4])
                    })
                    .unwrap_or("(no invariants block found)");
                for d in ironsafe_bench::diff_snapshots(committed_block, &inv_block) {
                    eprintln!("{d}");
                }
                eprintln!(
                    "(regenerate with `paperbench shards --json` if the change is intended)"
                );
                std::process::exit(1);
            }
        }
        if json_out {
            let json = shards_json(ssf, &invariants, &wallclock);
            assert!(
                ironsafe_obs::export::looks_like_valid_json(&json),
                "shards snapshot failed JSON self-check"
            );
            std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
            println!("shards: wrote federation snapshot to BENCH_7.json");
        }
        return;
    }

    if what == "vectors" {
        let vsf = if sf_given { sf } else { VECTORS_SF };
        let ids = [1u8, 6];
        println!(
            "== Vectorized execution x page compression: Q1/Q6 on scs (SF {vsf}) ==\n"
        );
        let (cells, dividends) = vectors_sweep(vsf, &ids);
        println!(
            "{:>5} {:>7} {:>6} {:>14} {:>8} {:>9} {:>8} {:>6} {:>18}",
            "query", "mode", "pages", "total (sim)", "reads", "decrypts", "merkle", "rows", "result digest"
        );
        for c in &cells {
            println!(
                "{:>5} {:>7} {:>6} {:>12.0}ns {:>8} {:>9} {:>8} {:>6} {:>18}",
                format!("#{}", c.query_id),
                if c.vectorized { "vector" } else { "scalar" },
                if c.compressed { "comp" } else { "raw" },
                c.total_ns,
                c.pages_read,
                c.decrypts,
                c.merkle_nodes,
                c.rows,
                c.result_digest
            );
        }
        println!("(digests identical across all four modes; scalar/vector twins share counters)\n");
        println!(
            "{:>5} {:>16} {:>16} {:>12}   (compress-before-encrypt dividend)",
            "query", "enc bytes raw", "enc bytes comp", "MACs saved"
        );
        for d in &dividends {
            println!(
                "{:>5} {:>16} {:>16} {:>11.1}%",
                format!("#{}", d.query_id),
                d.encrypted_bytes_raw,
                d.encrypted_bytes_compressed,
                d.mac_reduction_pct
            );
        }
        println!();
        let wsf = if sf_given { sf } else { VECTORS_WALL_SF };
        let wallclock = vectors_wallclock(wsf, &ids);
        println!(
            "{:>5} {:>6} {:>11} {:>11} {:>9}   (wall-clock, hons DOP 1, SF {wsf})",
            "query", "runs", "scalar", "vector", "speedup"
        );
        for w in &wallclock {
            println!(
                "{:>5} {:>6} {:>9.2}ms {:>9.2}ms {:>8.2}x",
                format!("#{}", w.query_id),
                w.runs,
                w.scalar_ms,
                w.vector_ms,
                w.speedup
            );
        }
        println!();
        let inv_block = vectors_invariants_json(vsf, &cells, &dividends);
        if check {
            let baseline = std::fs::read_to_string("BENCH_8.json")
                .expect("vectors --check needs the committed BENCH_8.json baseline");
            if baseline.contains(&inv_block) {
                println!("vectors: invariants match BENCH_8.json byte for byte (gate passes)");
            } else {
                eprintln!("vectors: invariants DIVERGE from BENCH_8.json:");
                let committed_block = baseline
                    .find("  \"invariants\"")
                    .and_then(|start| {
                        baseline[start..].find("\n  }").map(|end| &baseline[start..start + end + 4])
                    })
                    .unwrap_or("(no invariants block found)");
                for d in ironsafe_bench::diff_snapshots(committed_block, &inv_block) {
                    eprintln!("{d}");
                }
                eprintln!(
                    "(regenerate with `paperbench vectors --json` if the change is intended)"
                );
                std::process::exit(1);
            }
        }
        if json_out {
            let json = vectors_json(vsf, &cells, &dividends, &wallclock);
            assert!(
                ironsafe_obs::export::looks_like_valid_json(&json),
                "vectors snapshot failed JSON self-check"
            );
            std::fs::write("BENCH_8.json", &json).expect("write BENCH_8.json");
            println!("vectors: wrote vectorization snapshot to BENCH_8.json");
        }
        return;
    }

    if what == "adaptive" {
        let asf = if sf_given { sf } else { ADAPTIVE_SF };
        println!(
            "== Adaptive offload optimizer: shape x cores x selectivity x EPC pressure grid on scs (SF {asf}) ==\n"
        );
        let (cells, demo) = adaptive_sweep(asf);
        println!(
            "{:>5} {:>5} {:>5} {:>9} {:>13} {:>13} {:>13} {:>11} {:>18}",
            "shape", "cores", "sel%", "pressure", "all-host", "all-offload", "adaptive",
            "chosen", "result digest"
        );
        for c in &cells {
            println!(
                "{:>5} {:>5} {:>5} {:>9} {:>11.0}ns {:>11.0}ns {:>11.0}ns {:>11} {:>18}",
                c.shape,
                c.storage_cores,
                c.selectivity_pct,
                c.pressure_pages,
                c.allhost_ns,
                c.offload_ns,
                c.adaptive_ns,
                c.chosen,
                c.result_digest
            );
        }
        println!(
            "(digests bit-identical across policies; adaptive <= best static at every point — asserted)\n"
        );
        println!(
            "re-planning demo: pinned sel {:.0}% vs actual {}% — stubborn {:.0}ns, \
             re-planned {:.0}ns ({} re-plan{}, rows identical)\n",
            demo.pinned_selectivity * 100.0,
            demo.actual_pct,
            demo.stubborn_ns,
            demo.replanned_ns,
            demo.replans,
            if demo.replans == 1 { "" } else { "s" }
        );
        let inv_block = adaptive_invariants_json(asf, &cells, &demo);
        if check {
            let baseline = std::fs::read_to_string("BENCH_10.json")
                .expect("adaptive --check needs the committed BENCH_10.json baseline");
            if baseline.contains(&inv_block) {
                println!("adaptive: invariants match BENCH_10.json byte for byte (gate passes)");
            } else {
                eprintln!("adaptive: invariants DIVERGE from BENCH_10.json:");
                let committed_block = baseline
                    .find("  \"invariants\"")
                    .and_then(|start| {
                        baseline[start..].find("\n  }").map(|end| &baseline[start..start + end + 4])
                    })
                    .unwrap_or("(no invariants block found)");
                for d in ironsafe_bench::diff_snapshots(committed_block, &inv_block) {
                    eprintln!("{d}");
                }
                eprintln!(
                    "(regenerate with `paperbench adaptive --json` if the change is intended)"
                );
                std::process::exit(1);
            }
        }
        if json_out {
            let json = adaptive_json(asf, &cells, &demo);
            assert!(
                ironsafe_obs::export::looks_like_valid_json(&json),
                "adaptive snapshot failed JSON self-check"
            );
            std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
            println!("adaptive: wrote optimizer snapshot to BENCH_10.json");
        }
        return;
    }

    if what == "profile" {
        let psf = if sf_given { sf } else { PROFILE_SF };
        let configs = ironsafe_csa::SystemConfig::all();
        let ids = [1u8, 6];
        println!("== End-to-end query profiler: EXPLAIN ANALYZE, Q1/Q6 x 5 configs (SF {psf}) ==\n");
        let profiles = profile_matrix(psf, &configs, &ids);
        for p in &profiles {
            if p.config == ironsafe_csa::SystemConfig::IronSafe {
                // Full annotated plan for the paper's headline config.
                println!("{}", p.render());
            } else {
                println!(
                    "Q{} {:<4} total={:>12.0}ns pages_read={:<5} macs={:<5} spans={}",
                    p.query_id,
                    p.config.abbrev(),
                    p.breakdown.total_ns(),
                    p.pager.page_reads,
                    p.macs_verified,
                    p.span_count
                );
            }
        }
        println!();
        let json = profiles_json(psf, &profiles);
        assert!(
            ironsafe_obs::export::looks_like_valid_json(&json),
            "profile snapshot failed JSON self-check"
        );
        if check {
            let baseline = std::fs::read_to_string("BENCH_6.json")
                .expect("profile --check needs the committed BENCH_6.json baseline");
            let diffs = ironsafe_bench::diff_snapshots(&baseline, &json);
            if diffs.is_empty() {
                println!("profile: snapshot matches BENCH_6.json byte for byte (gate passes)");
            } else {
                eprintln!("profile: snapshot DIVERGES from BENCH_6.json:");
                for d in &diffs {
                    eprintln!("{d}");
                }
                eprintln!(
                    "(regenerate with `paperbench profile --json` if the change is intended)"
                );
                std::process::exit(1);
            }
        }
        if json_out {
            std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
            println!("profile: wrote profiler snapshot to BENCH_6.json");
        }
        return;
    }

    if let Some(path) = metrics_out {
        let bundle = telemetry::collect_traces(sf);
        assert!(
            ironsafe_obs::export::looks_like_valid_json(&bundle.chrome_trace),
            "exported Chrome trace failed self-check"
        );
        std::fs::write(&path, &bundle.chrome_trace).expect("write trace file");
        let sidecar = format!("{path}.metrics.jsonl");
        std::fs::write(&sidecar, &bundle.metrics_jsonl).expect("write metrics sidecar");
        println!(
            "telemetry: wrote {} spans from {} queries to {path} (counters: {sidecar})",
            bundle.spans, bundle.queries
        );
    }
}
