//! Enclave Page Cache (EPC) simulator.
//!
//! SGX machines of the paper's generation expose ~96 MiB of usable EPC.
//! When an enclave's working set exceeds it, the kernel transparently
//! encrypts/evicts pages ("EPC paging"), which the paper identifies as the
//! dominant host-side cost for large inputs (Figure 9a). This module models
//! the EPC as an exact LRU cache over 4 KiB page identifiers and counts
//! hits and faults; the CSA cost model later converts faults into time.

use ironsafe_obs::{Counter, Registry};
use std::collections::HashMap;

/// Page size used across IronSafe (matches the paper's 4 KiB units).
pub const PAGE_SIZE: usize = 4096;

const NIL: usize = usize::MAX;

/// Base page id of the simulated *background* working set (see
/// [`EpcSimulator::preload_background`]). High enough that no query
/// working set — heap pages, host temp pages, synthetic replan pages —
/// ever collides with it.
pub const BACKGROUND_PAGE_BASE: u64 = 1 << 40;

/// An exact-LRU simulator over abstract page identifiers.
///
/// Implemented as a hash map into an intrusive doubly-linked list stored in
/// a slab, giving O(1) access and eviction.
#[derive(Debug)]
pub struct EpcSimulator {
    capacity_pages: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    faults: u64,
    evictions: u64,
    metrics: EpcMetrics,
}

/// Live telemetry counters mirroring the simulator's hit/fault/eviction
/// tallies, attachable to a [`Registry`] under `tee.epc.*`.
#[derive(Debug, Clone, Default)]
pub struct EpcMetrics {
    /// Resident-page touches (`tee.epc.hit`).
    pub hits: Counter,
    /// Page faults (`tee.epc.fault`).
    pub faults: Counter,
    /// LRU evictions (`tee.epc.eviction`).
    pub evictions: Counter,
}

impl EpcMetrics {
    /// Attach every cell to `registry` under its `tee.epc.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("tee.epc.hit", &self.hits);
        registry.register_counter("tee.epc.fault", &self.faults);
        registry.register_counter("tee.epc.eviction", &self.evictions);
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    page: u64,
    prev: usize,
    next: usize,
}

impl EpcSimulator {
    /// Create an EPC of `capacity_bytes` (rounded down to whole pages).
    pub fn new(capacity_bytes: usize) -> Self {
        let capacity_pages = (capacity_bytes / PAGE_SIZE).max(1);
        EpcSimulator {
            capacity_pages,
            map: HashMap::with_capacity(capacity_pages),
            nodes: Vec::with_capacity(capacity_pages),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            faults: 0,
            evictions: 0,
            metrics: EpcMetrics::default(),
        }
    }

    /// Handles onto the live telemetry counters.
    pub fn metrics(&self) -> &EpcMetrics {
        &self.metrics
    }

    /// Attach the simulator's counters to `registry` (`tee.epc.*`).
    pub fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }

    /// Fraction of the EPC currently occupied, in `[0.0, 1.0]`.
    ///
    /// This is the *occupancy read API* the adaptive planner samples:
    /// a cheap, side-effect-free snapshot (no LRU mutation, no counter
    /// bumps) of how full the enclave page cache is right now.
    pub fn occupancy_ratio(&self) -> f64 {
        self.map.len() as f64 / self.capacity_pages as f64
    }

    /// Pages that can still be faulted in before the LRU must evict.
    pub fn headroom_pages(&self) -> usize {
        self.capacity_pages - self.map.len()
    }

    /// Make a `pages`-sized *background* working set resident, modelling
    /// enclave memory held by concurrent tenants. Pages live at
    /// [`BACKGROUND_PAGE_BASE`] so they never alias a query's pages, and
    /// the preload's own cold faults are erased afterwards
    /// ([`Self::reset_counters`]) — the set is framed as already-resident
    /// pressure, not work this query performed.
    pub fn preload_background(&mut self, pages: u64) {
        self.access_range(BACKGROUND_PAGE_BASE, pages);
        self.reset_counters();
    }

    /// Re-touch the background working set (the concurrent tenant runs
    /// again). Returns the faults incurred: exactly 0 while query pages
    /// plus background still fit, and ≈`pages` once the query's working
    /// set has pushed the background out — LRU's sequential-cyclic cliff,
    /// the paper's Figure 9a "EPC paging" wall.
    pub fn touch_background(&mut self, pages: u64) -> u64 {
        self.access_range(BACKGROUND_PAGE_BASE, pages)
    }

    /// Touch `page`; returns `true` on a fault (page was not resident).
    pub fn access(&mut self, page: u64) -> bool {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            self.metrics.hits.inc();
            self.move_to_front(idx);
            return false;
        }
        self.faults += 1;
        self.metrics.faults.inc();
        if self.map.len() == self.capacity_pages {
            self.evict_lru();
        }
        let idx = self.alloc_node(page);
        self.push_front(idx);
        self.map.insert(page, idx);
        true
    }

    /// Touch a contiguous run of pages; returns the number of faults.
    pub fn access_range(&mut self, first_page: u64, count: u64) -> u64 {
        let mut f = 0;
        for p in first_page..first_page + count {
            if self.access(p) {
                f += 1;
            }
        }
        f
    }

    /// Remove a page (e.g. enclave frees memory).
    pub fn invalidate(&mut self, page: u64) {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Drop everything (enclave teardown).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Total faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Reset counters, keeping residency.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.faults = 0;
        self.evictions = 0;
    }

    fn alloc_node(&mut self, page: u64) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node { page, prev: NIL, next: NIL };
            idx
        } else {
            self.nodes.push(Node { page, prev: NIL, next: NIL });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL);
        let page = self.nodes[idx].page;
        self.unlink(idx);
        self.map.remove(&page);
        self.free.push(idx);
        self.evictions += 1;
        self.metrics.evictions.inc();
    }
}

/// Enclave-memory budget of one verified-Merkle-node cache entry: a
/// `(level, index)` coordinate plus hash-set overhead, rounded up to 16
/// bytes. The cache stores coordinates, not hashes — the node hashes
/// themselves stay in the (untrusted-resident, but integrity-chained)
/// tree levels.
pub const VERIFIED_NODE_ENTRY_BYTES: usize = 16;

/// Size the secure pager's verified-node cache against the EPC budget:
/// the cache may use at most the enclave memory the paper's generation
/// exposes, one [`VERIFIED_NODE_ENTRY_BYTES`] per node, floored at 1024
/// entries so pathological budgets still leave a working cache.
///
/// At the default 96 MiB EPC this yields ~6.3 M entries — far above the
/// node count of any bench-scale tree, so eviction (which is wholesale
/// and would make visit totals order-dependent) never triggers outside
/// the dedicated eviction tests.
pub fn verified_node_cache_capacity(epc_limit_bytes: u64) -> usize {
    ((epc_limit_bytes as usize) / VERIFIED_NODE_ENTRY_BYTES).max(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_epc_no_refaults() {
        let mut epc = EpcSimulator::new(8 * PAGE_SIZE);
        assert_eq!(epc.access_range(0, 8), 8, "cold faults");
        assert_eq!(epc.access_range(0, 8), 0, "warm hits");
        assert_eq!(epc.faults(), 8);
        assert_eq!(epc.hits(), 8);
        assert_eq!(epc.evictions(), 0);
    }

    #[test]
    fn sequential_scan_larger_than_epc_thrashes() {
        // Classic LRU pathological case: scanning N+1 pages through an
        // N-page cache faults on every access — exactly the paper's
        // "EPC paging" cliff.
        let mut epc = EpcSimulator::new(4 * PAGE_SIZE);
        for _ in 0..3 {
            epc.access_range(0, 5);
        }
        assert_eq!(epc.faults(), 15);
        assert_eq!(epc.hits(), 0);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut epc = EpcSimulator::new(2 * PAGE_SIZE);
        epc.access(1);
        epc.access(2);
        epc.access(1); // 1 is now MRU; 2 is LRU
        epc.access(3); // evicts 2
        assert!(!epc.access(1), "1 still resident");
        assert!(epc.access(2), "2 was evicted");
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut epc = EpcSimulator::new(2 * PAGE_SIZE);
        epc.access(1);
        epc.access(2);
        epc.invalidate(1);
        assert_eq!(epc.resident_pages(), 1);
        epc.access(3);
        assert_eq!(epc.evictions(), 0, "no eviction needed after invalidate");
        assert!(!epc.access(2));
        assert!(!epc.access(3));
    }

    #[test]
    fn minimum_capacity_is_one_page() {
        let mut epc = EpcSimulator::new(10); // less than a page
        assert_eq!(epc.capacity_pages(), 1);
        epc.access(1);
        epc.access(2);
        assert_eq!(epc.evictions(), 1);
    }

    #[test]
    fn clear_resets_residency() {
        let mut epc = EpcSimulator::new(4 * PAGE_SIZE);
        epc.access_range(0, 4);
        epc.clear();
        assert_eq!(epc.resident_pages(), 0);
        assert_eq!(epc.access_range(0, 4), 4);
    }

    #[test]
    fn occupancy_ratio_reflects_residency_without_side_effects() {
        let mut epc = EpcSimulator::new(8 * PAGE_SIZE);
        assert_eq!(epc.occupancy_ratio(), 0.0);
        assert_eq!(epc.headroom_pages(), 8);
        epc.access_range(0, 4);
        assert_eq!(epc.occupancy_ratio(), 0.5);
        assert_eq!(epc.headroom_pages(), 4);
        let (h, f) = (epc.hits(), epc.faults());
        let _ = epc.occupancy_ratio();
        let _ = epc.headroom_pages();
        assert_eq!((epc.hits(), epc.faults()), (h, f), "reads are pure");
    }

    #[test]
    fn background_preload_is_free_until_the_cliff() {
        let mut epc = EpcSimulator::new(8 * PAGE_SIZE);
        epc.preload_background(6);
        assert_eq!(epc.faults(), 0, "preload cold faults are erased");
        assert_eq!(epc.resident_pages(), 6);
        // Query touches 2 pages: total 8 fits, re-touch is free.
        epc.access_range(0, 2);
        epc.reset_counters();
        assert_eq!(epc.touch_background(6), 0);
        // Query touches 3 more: total 11 > 8 → the cyclic re-touch
        // thrashes the whole background set.
        epc.access_range(2, 3);
        epc.reset_counters();
        assert_eq!(epc.touch_background(6), 6, "LRU cliff: full set re-faults");
    }

    #[test]
    fn verified_node_cache_capacity_tracks_epc_budget() {
        // Default 96 MiB EPC: millions of entries — no eviction at bench
        // scale (a SF 0.003 tree has a few thousand nodes).
        let cap = verified_node_cache_capacity(96 * 1024 * 1024);
        assert_eq!(cap, 96 * 1024 * 1024 / VERIFIED_NODE_ENTRY_BYTES);
        assert!(cap > 1_000_000);
        // Tiny budgets floor at a working minimum.
        assert_eq!(verified_node_cache_capacity(0), 1024);
        assert_eq!(verified_node_cache_capacity(1), 1024);
        // Monotone in the budget.
        assert!(
            verified_node_cache_capacity(32 * 1024 * 1024)
                <= verified_node_cache_capacity(96 * 1024 * 1024)
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn residency_never_exceeds_capacity(
                cap_pages in 1usize..16,
                accesses in proptest::collection::vec(0u64..64, 0..512),
            ) {
                let mut epc = EpcSimulator::new(cap_pages * PAGE_SIZE);
                for a in accesses {
                    epc.access(a);
                    prop_assert!(epc.resident_pages() <= cap_pages);
                }
                prop_assert_eq!(epc.faults() , epc.evictions() + epc.resident_pages() as u64);
            }

            #[test]
            fn repeat_access_within_capacity_always_hits(
                cap_pages in 2usize..32,
                page in 0u64..1000,
            ) {
                let mut epc = EpcSimulator::new(cap_pages * PAGE_SIZE);
                epc.access(page);
                prop_assert!(!epc.access(page));
            }

            #[test]
            fn faults_monotone_in_working_set_size(
                cap_pages in 1usize..16,
                working_set in 1u64..48,
                rounds in 1u64..6,
            ) {
                // For a fixed cyclic-scan trace shape, growing the working
                // set can never reduce the fault count.
                let run = |pages: u64| {
                    let mut epc = EpcSimulator::new(cap_pages * PAGE_SIZE);
                    for _ in 0..rounds {
                        epc.access_range(0, pages);
                    }
                    epc.faults()
                };
                prop_assert!(run(working_set) <= run(working_set + 1));
            }

            #[test]
            fn lru_inclusion_property(
                cap_pages in 1usize..12,
                accesses in proptest::collection::vec(0u64..32, 1..256),
            ) {
                // LRU is a stack algorithm: on any trace, a larger EPC
                // never faults more than a smaller one.
                let run = |cap: usize| {
                    let mut epc = EpcSimulator::new(cap * PAGE_SIZE);
                    for &a in &accesses {
                        epc.access(a);
                    }
                    epc.faults()
                };
                prop_assert!(run(cap_pages) >= run(cap_pages + 1));
            }

            #[test]
            fn zero_refaults_when_trace_fits_epc(
                cap_pages in 1usize..32,
                rounds in 2u64..6,
            ) {
                // A working set that fits pays only its cold faults —
                // every later round hits; nothing is ever evicted.
                let pages = cap_pages as u64;
                let mut epc = EpcSimulator::new(cap_pages * PAGE_SIZE);
                for _ in 0..rounds {
                    epc.access_range(0, pages);
                }
                prop_assert_eq!(epc.faults(), pages, "cold faults only");
                prop_assert_eq!(epc.evictions(), 0);
                prop_assert_eq!(epc.hits(), (rounds - 1) * pages);
            }
        }
    }
}
