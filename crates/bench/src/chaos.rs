//! Chaos experiment harness for `paperbench chaos`.
//!
//! Sweeps seeded fault plans across injection rates on the full IronSafe
//! configuration and reports, per rate: how many runs recovered to rows
//! bit-identical to the fault-free baseline, how many surfaced a clean
//! typed error, and the fault counters (`faults.injected` / `retried` /
//! `recovered` / `exhausted`) aggregated across the sweep. A second
//! stage demonstrates one recovered transient fault on each injectable
//! surface — device, secure channel, enclave, RPMB — with the recovery
//! visible in the exported counters.

use ironsafe::deploy::{Client, Deployment};
use ironsafe_csa::{CostParams, CsaSystem, SharedCsaSystem, SystemConfig};
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_obs::export::metrics_to_jsonl;
use ironsafe_obs::{Counter, Registry};
use ironsafe_sql::parser::parse_statement;
use ironsafe_sql::{QueryResult, Row, Value};
use ironsafe_tpch::generate;
use ironsafe_tpch::queries::{paper_queries, PaperQuery};

use crate::figures::SEED;

/// One row of the rate sweep.
#[derive(Debug, Clone)]
pub struct ChaosRateRow {
    /// Per-site injection probability this row sweeps.
    pub rate: f64,
    /// Query runs at this rate (seeds × queries).
    pub runs: u32,
    /// Runs whose rows were bit-identical to the fault-free baseline.
    pub identical: u32,
    /// Runs that surfaced a clean typed error.
    pub typed_errors: u32,
    /// Faults injected across all runs at this rate.
    pub injected: u64,
    /// Retries spent recovering them.
    pub retried: u64,
    /// Faults absorbed by a successful retry.
    pub recovered: u64,
    /// Faults that exhausted the retry budget.
    pub exhausted: u64,
}

/// One per-surface recovery demonstration.
#[derive(Debug, Clone)]
pub struct SurfaceRecovery {
    /// Which surface the fault was injected into.
    pub surface: &'static str,
    /// Faults injected on that surface.
    pub injected: u64,
    /// Faults recovered (retry or restart).
    pub recovered: u64,
    /// Did the run finish with correct results?
    pub ok: bool,
}

/// One write-path fault site's tallies in the crash-during-commit
/// storm stage.
#[derive(Debug, Clone)]
pub struct CommitSiteRow {
    /// Which commit sub-step the storms killed.
    pub site: &'static str,
    /// Storms run against this site.
    pub storms: u32,
    /// Storms that poisoned the system mid-commit (recovered from the WAL).
    pub crashed: u32,
    /// Storms whose transient faults were retried away in-run.
    pub absorbed: u32,
    /// Faults the plans fired on this site.
    pub injected: u64,
    /// Commit records replayed across this site's recoveries.
    pub replayed: u64,
    /// Unbound/torn tail records discarded across this site's recoveries.
    pub discarded: u64,
}

/// Everything `paperbench chaos` prints and exports.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The rate sweep, one row per rate.
    pub rows: Vec<ChaosRateRow>,
    /// Per-surface recovery demonstrations.
    pub surfaces: Vec<SurfaceRecovery>,
    /// Crash-during-commit storms, one row per write-path fault site.
    pub commits: Vec<CommitSiteRow>,
    /// Seed × rate combinations swept.
    pub combos: u32,
    /// `metrics_to_jsonl` dump including the aggregated `faults.*`
    /// counters (for `--metrics-out`).
    pub metrics_jsonl: String,
}

fn query(id: u8) -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == id).expect("paper query exists")
}

/// A plan injecting on every surface a read-only split query crosses.
fn storm_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_rate(FaultSite::DeviceRead, rate)
        .with_rate(FaultSite::PageBitFlip, rate)
        .with_rate(FaultSite::PageMacCorrupt, rate)
        .with_rate(FaultSite::FreshnessStale, rate)
        .with_rate(FaultSite::ChannelDrop, rate)
        .with_rate(FaultSite::ChannelCorrupt, rate)
        .with_rate(FaultSite::ChannelReorder, rate)
}

/// Run the chaos sweep at `sf` over `seeds` × `rates`.
///
/// Panics if any query run panics (that is the point of the harness:
/// faults must surface as recoveries or typed errors, never panics).
pub fn run_chaos(sf: f64, seeds: &[u64], rates: &[f64]) -> ChaosReport {
    let data = generate(sf, SEED);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let queries = [query(1), query(6)];
    let baselines: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| sys.run_query(q).expect("fault-free baseline").result.rows().to_vec())
        .collect();

    let totals = [Counter::new(), Counter::new(), Counter::new(), Counter::new()];
    let mut rows = Vec::new();
    let mut combos = 0u32;
    for &rate in rates {
        let mut row = ChaosRateRow {
            rate,
            runs: 0,
            identical: 0,
            typed_errors: 0,
            injected: 0,
            retried: 0,
            recovered: 0,
            exhausted: 0,
        };
        for &seed in seeds {
            combos += 1;
            let plan = storm_plan(seed, rate);
            sys.set_fault_plan(plan.clone());
            for (q, baseline) in queries.iter().zip(&baselines) {
                row.runs += 1;
                match sys.run_query(q) {
                    Ok(report) => {
                        assert_eq!(
                            report.result.rows(),
                            &baseline[..],
                            "seed {seed} rate {rate}: recovered rows must be bit-identical"
                        );
                        row.identical += 1;
                    }
                    Err(_) => row.typed_errors += 1,
                }
            }
            let m = plan.metrics();
            row.injected += m.injected.get();
            row.retried += m.retried.get();
            row.recovered += m.recovered.get();
            row.exhausted += m.exhausted.get();
        }
        totals[0].add(row.injected);
        totals[1].add(row.retried);
        totals[2].add(row.recovered);
        totals[3].add(row.exhausted);
        rows.push(row);
    }
    sys.set_fault_plan(FaultPlan::none());

    let surfaces = vec![
        device_recovery(&mut sys, &baselines[1]),
        channel_recovery(&mut sys, &baselines[1]),
        enclave_recovery(),
        rpmb_recovery(),
    ];

    let commits = commit_storms(sf, seeds);

    // Export: sweep totals under the canonical `faults.*` names, plus
    // per-surface recovery counters.
    let registry = Registry::new();
    registry.register_counter("faults.injected", &totals[0]);
    registry.register_counter("faults.retried", &totals[1]);
    registry.register_counter("faults.recovered", &totals[2]);
    registry.register_counter("faults.exhausted", &totals[3]);
    for s in &surfaces {
        let injected = Counter::new();
        injected.add(s.injected);
        let recovered = Counter::new();
        recovered.add(s.recovered);
        registry.register_counter(&format!("faults.surface.{}.injected", s.surface), &injected);
        registry.register_counter(&format!("faults.surface.{}.recovered", s.surface), &recovered);
    }

    ChaosReport {
        rows,
        surfaces,
        commits,
        combos,
        metrics_jsonl: metrics_to_jsonl(&registry.snapshot()),
    }
}

/// Read the storm table back as an ordered value vector.
fn storm_contents(shared: &SharedCsaSystem, key: [u8; 32]) -> Vec<i64> {
    let sel = parse_statement("SELECT a FROM storm ORDER BY a").expect("valid select");
    let (report, _) = shared.run_statement(&sel, key).expect("recovered system serves reads");
    match report.result {
        QueryResult::Rows { rows, .. } => rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(n) => n,
                ref other => panic!("expected int, got {other:?}"),
            })
            .collect(),
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Crash-during-commit storms over the three write-path fault sites:
/// `CrashCommit` (power cut mid-apply or between the WAL append and the
/// RPMB bind), `WalTear` (torn frame on the log medium) and `WalAppend`
/// (transient device error, retried in-run). Each storm INSERTs through
/// the group-commit write path, then powers the system off and recovers
/// from the surviving TrustZone device + WAL medium; the recovered
/// table must sit exactly on a transaction boundary — the acknowledged
/// prefix, or at most the one in-flight statement more.
///
/// Panics on any violated invariant: that is the harness's job.
pub fn commit_storms(sf: f64, seeds: &[u64]) -> Vec<CommitSiteRow> {
    let data = generate(sf, SEED);
    let sys = CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
        .expect("system builds");
    let shared = SharedCsaSystem::new(sys);
    let key = [0x5cu8; 32];
    shared
        .run_statement(&parse_statement("CREATE TABLE storm (a INT)").expect("valid ddl"), key)
        .expect("storm table creates");
    shared.attach_wal(0x9e1).expect("secure base journals");
    let mut shared = shared;

    let sites: [(&'static str, FaultSite); 3] = [
        ("crash-commit", FaultSite::CrashCommit),
        ("wal-tear", FaultSite::WalTear),
        ("wal-append", FaultSite::WalAppend),
    ];
    let mut rows: Vec<CommitSiteRow> = sites
        .iter()
        .map(|(site, _)| CommitSiteRow {
            site,
            storms: 0,
            crashed: 0,
            absorbed: 0,
            injected: 0,
            replayed: 0,
            discarded: 0,
        })
        .collect();

    let mut acked: Vec<i64> = Vec::new();
    let mut next = 0i64;
    for &seed in seeds {
        for (si, (_, site)) in sites.iter().enumerate() {
            rows[si].storms += 1;
            let plan = FaultPlan::seeded(seed).with_nth(*site, 1 + seed % 3);
            shared.set_fault_plan(plan.clone());

            let mut in_flight: Option<i64> = None;
            for _ in 0..3 {
                let ins = parse_statement(&format!("INSERT INTO storm (a) VALUES ({next})"))
                    .expect("valid insert");
                match shared.run_statement(&ins, key) {
                    Ok(_) => {
                        acked.push(next);
                        next += 1;
                    }
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "typed error, never a panic");
                        assert!(shared.is_poisoned(), "a failed group commit must poison");
                        in_flight = Some(next);
                        next += 1;
                        break;
                    }
                }
            }
            rows[si].injected += plan.metrics().injected.get();

            // Power off and recover from the log.
            let (parts, medium) = shared.teardown();
            let (tz, _lost) = parts.expect("secure base tears down to hardware");
            let medium = medium.expect("WAL attached");
            let (recovered, report) = SharedCsaSystem::recover(
                SystemConfig::StorageOnlySecure,
                CostParams::default(),
                tz,
                &medium,
                seed.wrapping_mul(11),
                seed.wrapping_mul(13),
                1,
            )
            .expect("every storm recovers");
            shared = recovered;
            rows[si].replayed += report.replayed as u64;
            rows[si].discarded += report.discarded as u64;

            let got = storm_contents(&shared, key);
            match in_flight {
                Some(burned) => {
                    rows[si].crashed += 1;
                    let mut with_in_flight = acked.clone();
                    with_in_flight.push(burned);
                    assert!(
                        got == acked || got == with_in_flight,
                        "recovered state must sit on a transaction boundary"
                    );
                    acked = got;
                }
                None => {
                    rows[si].absorbed += 1;
                    assert_eq!(got, acked, "clean storm must replay every acknowledged row");
                }
            }
        }
    }
    rows
}

/// One transient device-read error, absorbed by the pager's retry.
fn device_recovery(sys: &mut CsaSystem, baseline: &[Row]) -> SurfaceRecovery {
    let plan = FaultPlan::seeded(SEED).with_nth(FaultSite::DeviceRead, 2);
    sys.set_fault_plan(plan.clone());
    let ok = match sys.run_query(&query(6)) {
        Ok(r) => r.result.rows() == baseline,
        Err(_) => false,
    };
    sys.set_fault_plan(FaultPlan::none());
    let m = plan.metrics();
    SurfaceRecovery { surface: "device", injected: m.injected.get(), recovered: m.recovered.get(), ok }
}

/// One record dropped in transit, recovered by retransmission.
fn channel_recovery(sys: &mut CsaSystem, baseline: &[Row]) -> SurfaceRecovery {
    let plan = FaultPlan::seeded(SEED).with_nth(FaultSite::ChannelDrop, 1);
    sys.set_fault_plan(plan.clone());
    let ok = match sys.run_query(&query(6)) {
        Ok(r) => r.result.rows() == baseline,
        Err(_) => false,
    };
    sys.set_fault_plan(FaultPlan::none());
    let m = plan.metrics();
    SurfaceRecovery { surface: "channel", injected: m.injected.get(), recovered: m.recovered.get(), ok }
}

/// One enclave crash, recovered by supervisor restart + sealed-state
/// reload.
fn enclave_recovery() -> SurfaceRecovery {
    let plan = FaultPlan::seeded(SEED).with_nth(FaultSite::EnclaveCrash, 2);
    let ok = deployment_roundtrip(plan.clone()).map(|restarts| restarts >= 1).unwrap_or(false);
    let m = plan.metrics();
    SurfaceRecovery { surface: "enclave", injected: m.injected.get(), recovered: m.recovered.get(), ok }
}

/// One RPMB write refused busy, recovered by re-issuing the write.
fn rpmb_recovery() -> SurfaceRecovery {
    let plan = FaultPlan::seeded(SEED).with_nth(FaultSite::RpmbWrite, 1);
    let ok = deployment_roundtrip(plan.clone()).is_some();
    let m = plan.metrics();
    SurfaceRecovery { surface: "rpmb", injected: m.injected.get(), recovered: m.recovered.get(), ok }
}

/// Build a faulted deployment, run a tiny write+read workload, return
/// the supervisor's restart count on success.
fn deployment_roundtrip(plan: FaultPlan) -> Option<u64> {
    let mut dep = Deployment::builder().fault_plan(plan).build().ok()?;
    dep.create_database("db", "read :- sessionKeyIs(chaos)\nwrite :- sessionKeyIs(chaos)");
    let client = Client::new("chaos");
    dep.submit(&client, "db", "CREATE TABLE t (a INT)", "").ok()?;
    dep.submit(&client, "db", "INSERT INTO t VALUES (1), (2), (3)", "").ok()?;
    let resp = dep.submit(&client, "db", "SELECT a FROM t ORDER BY a", "").ok()?;
    if resp.result.rows().len() == 3 {
        Some(dep.supervisor().restarts())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_report_covers_every_surface_and_exports_fault_counters() {
        let report = run_chaos(0.001, &[1, 2], &[0.002, 0.05]);
        assert_eq!(report.combos, 4);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.runs, row.identical + row.typed_errors, "no run may vanish");
        }
        assert_eq!(report.surfaces.len(), 4);
        for s in &report.surfaces {
            assert!(s.ok, "surface {} must recover", s.surface);
            assert!(s.injected >= 1, "surface {} must inject", s.surface);
            assert!(s.recovered >= 1, "surface {} must recover the fault", s.surface);
        }
        assert!(report.metrics_jsonl.contains("faults.injected"));
        assert!(report.metrics_jsonl.contains("faults.recovered"));
        assert!(report.metrics_jsonl.contains("faults.surface.rpmb.recovered"));

        // The crash-during-commit stage covers all three write-path
        // sites; the permanent sites must actually crash commits and the
        // transient one must be absorbed, with every recovery asserted
        // prefix-consistent inside `commit_storms`.
        assert_eq!(report.commits.len(), 3);
        for c in &report.commits {
            assert_eq!(c.storms, 2, "one storm per seed per site");
            assert_eq!(c.crashed + c.absorbed, c.storms, "no storm may vanish");
            assert!(c.injected >= 1, "site {} must inject", c.site);
        }
        let by_site = |site: &str| report.commits.iter().find(|c| c.site == site).unwrap();
        assert!(by_site("crash-commit").crashed > 0, "crash-commit storms must crash");
        assert!(by_site("wal-tear").crashed > 0, "torn appends must crash the commit");
        assert!(by_site("wal-append").absorbed > 0, "transient appends must be retried away");
    }
}
