//! Trusted applications running in the secure world.
//!
//! The paper's storage system runs exactly two security-critical TAs
//! (§4.1): an **attestation TA** that answers the trusted monitor's
//! challenges (Figure 4b) and a **secure storage TA** that owns the
//! HUK-derived TA storage key (TASK), gates RPMB access, and keeps the
//! database encryption key across reboots.

use crate::image::Measurement;
use crate::trustzone::boot::BootedSystem;
use crate::trustzone::device::TrustZoneDevice;
use crate::trustzone::rpmb::{RpmbClient, RPMB_BLOCK};
use crate::{Result, TeeError};
use ironsafe_crypto::cert::CertificateChain;
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::Signature;

/// Response to an attestation challenge (Figure 4b, steps 2–4).
#[derive(Clone, Debug)]
pub struct AttestationResponse {
    /// The echoed challenge nonce.
    pub challenge: [u8; 32],
    /// Normal-world measurement taken at boot.
    pub nw_measurement: Measurement,
    /// Normal-world firmware version.
    pub nw_version: u32,
    /// Certificate chain from the manufacturer-certified device key down to
    /// the per-boot leaf key.
    pub chain: CertificateChain,
    /// Signature over `challenge ‖ nw_measurement ‖ nw_version` by the leaf
    /// (per-boot) key.
    pub signature: Signature,
}

impl AttestationResponse {
    /// The byte string the leaf key signs.
    pub fn signed_bytes(challenge: &[u8; 32], m: &Measurement, v: u32) -> Vec<u8> {
        let mut out = b"ironsafe-tz-attest-v1".to_vec();
        out.extend_from_slice(challenge);
        out.extend_from_slice(m.as_bytes());
        out.extend_from_slice(&v.to_be_bytes());
        out
    }
}

/// The attestation trusted application.
pub struct AttestationTa<'a> {
    booted: &'a BootedSystem,
}

impl<'a> AttestationTa<'a> {
    /// Instantiate over a booted system.
    pub fn new(booted: &'a BootedSystem) -> Self {
        AttestationTa { booted }
    }

    /// Answer a challenge from the trusted monitor.
    pub fn respond(&self, challenge: [u8; 32], rng: &mut (impl rand::Rng + ?Sized)) -> AttestationResponse {
        let msg = AttestationResponse::signed_bytes(
            &challenge,
            &self.booted.nw_measurement,
            self.booted.nw_version,
        );
        AttestationResponse {
            challenge,
            nw_measurement: self.booted.nw_measurement,
            nw_version: self.booted.nw_version,
            chain: self.booted.chain.clone(),
            signature: self.booted.attestation_signing.secret.sign(&msg, rng),
        }
    }
}

/// Verify an [`AttestationResponse`] against a pinned manufacturer root.
///
/// Returns the verified `(measurement, version)` claims. This is the
/// verifier half used by the trusted monitor.
pub fn verify_attestation(
    group: &Group,
    root: &ironsafe_crypto::schnorr::PublicKey,
    expected_challenge: &[u8; 32],
    resp: &AttestationResponse,
) -> Result<(Measurement, u32)> {
    if &resp.challenge != expected_challenge {
        return Err(TeeError::AttestationFailed("challenge mismatch"));
    }
    let leaf = resp
        .chain
        .verify(group, root)
        .map_err(|_| TeeError::AttestationFailed("certificate chain invalid"))?;
    if leaf.subject.role != "normal-world" {
        return Err(TeeError::AttestationFailed("leaf is not the normal-world cert"));
    }
    if leaf.subject.measurement != resp.nw_measurement.as_bytes().to_vec()
        || leaf.subject.fw_version != resp.nw_version
    {
        return Err(TeeError::AttestationFailed("claims disagree with boot chain"));
    }
    let msg = AttestationResponse::signed_bytes(&resp.challenge, &resp.nw_measurement, resp.nw_version);
    leaf.public_key
        .verify(group, &msg, &resp.signature)
        .map_err(|_| TeeError::AttestationFailed("challenge signature invalid"))?;
    Ok((resp.nw_measurement, resp.nw_version))
}

/// RPMB layout used by the secure storage TA.
const SLOT_MERKLE_ROOT: usize = 0;
const SLOT_DB_KEY: usize = 1;

/// The secure-storage trusted application.
///
/// Owns the TASK (TA storage key) derived from the HUK, and is the only
/// component allowed to drive the RPMB. It offers the two services the
/// secure storage framework needs: persisting the database encryption key
/// and persisting the freshness-protected Merkle-root MAC.
pub struct SecureStorageTa {
    /// Key authenticated against the RPMB.
    rpmb_client: RpmbClient,
    /// TASK: wraps data written into RPMB slots.
    task: [u8; 32],
}

impl SecureStorageTa {
    /// Initialize over a device: derives keys from the HUK and programs the
    /// RPMB authentication key on first use.
    pub fn init(device: &mut TrustZoneDevice) -> Result<Self> {
        let rpmb_key = device.derive_huk_key(b"rpmb-auth-key");
        if !device.rpmb.is_programmed() {
            device.rpmb.program_key(rpmb_key)?;
        }
        Ok(SecureStorageTa {
            rpmb_client: RpmbClient::new(rpmb_key),
            task: device.derive_huk_key(b"ta-storage-key"),
        })
    }

    /// The TASK, exposed to the trusted storage stack for key wrapping.
    pub fn task(&self) -> &[u8; 32] {
        &self.task
    }

    /// Persist the 32-byte Merkle-root MAC into RPMB.
    pub fn store_merkle_root(&self, device: &mut TrustZoneDevice, root_mac: &[u8; 32]) -> Result<()> {
        let mut block = [0u8; RPMB_BLOCK];
        block[..32].copy_from_slice(root_mac);
        self.rpmb_client.write(&mut device.rpmb, SLOT_MERKLE_ROOT, &block)
    }

    /// Persist the Merkle-root MAC *and* the WAL chain-head MAC in one
    /// authenticated RPMB write (group commit's batched bind): both marks
    /// share [`SLOT_MERKLE_ROOT`]'s block, so committing N transactions
    /// costs a single RPMB round trip instead of one per mark. The root
    /// keeps its `[..32]` layout — [`SecureStorageTa::load_merkle_root`]
    /// reads a batched block unchanged.
    pub fn store_commit_marks(
        &self,
        device: &mut TrustZoneDevice,
        root_mac: &[u8; 32],
        wal_head_mac: &[u8; 32],
    ) -> Result<()> {
        let mut block = [0u8; RPMB_BLOCK];
        block[..32].copy_from_slice(root_mac);
        block[32..64].copy_from_slice(wal_head_mac);
        self.rpmb_client.write(&mut device.rpmb, SLOT_MERKLE_ROOT, &block)
    }

    /// Load both commit marks (root MAC, WAL chain-head MAC) in one
    /// authenticated RPMB read. A database committed without a WAL
    /// reports an all-zero WAL mark.
    pub fn load_commit_marks(
        &self,
        device: &TrustZoneDevice,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<([u8; 32], [u8; 32])> {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let block = self.rpmb_client.read(&device.rpmb, SLOT_MERKLE_ROOT, &nonce)?;
        let mut root = [0u8; 32];
        root.copy_from_slice(&block[..32]);
        let mut wal = [0u8; 32];
        wal.copy_from_slice(&block[32..64]);
        Ok((root, wal))
    }

    /// Load the Merkle-root MAC from RPMB.
    pub fn load_merkle_root(
        &self,
        device: &TrustZoneDevice,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<[u8; 32]> {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let block = self.rpmb_client.read(&device.rpmb, SLOT_MERKLE_ROOT, &nonce)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(&block[..32]);
        Ok(out)
    }

    /// Persist the database encryption key (wrapped under the TASK).
    pub fn store_db_key(
        &self,
        device: &mut TrustZoneDevice,
        db_key: &[u8; 16],
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<()> {
        let blob = crate::sgx::seal::seal(&self.task, db_key, rng);
        let mut block = [0u8; RPMB_BLOCK];
        block[..16].copy_from_slice(&blob.iv);
        block[16..32].copy_from_slice(&blob.ciphertext);
        block[32..64].copy_from_slice(&blob.mac);
        self.rpmb_client.write(&mut device.rpmb, SLOT_DB_KEY, &block)
    }

    /// Load and unwrap the database encryption key.
    pub fn load_db_key(
        &self,
        device: &TrustZoneDevice,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<[u8; 16]> {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let block = self.rpmb_client.read(&device.rpmb, SLOT_DB_KEY, &nonce)?;
        let blob = crate::sgx::seal::SealedBlob {
            iv: block[..16].try_into().expect("16 bytes"),
            ciphertext: block[16..32].to_vec(),
            mac: block[32..64].try_into().expect("32 bytes"),
        };
        let plain = crate::sgx::seal::unseal(&self.task, &blob)?;
        plain.try_into().map_err(|_| TeeError::UnsealFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SoftwareImage;
    use crate::trustzone::boot::{BootImages, SecureBoot, SignedImage};
    use crate::trustzone::device::Manufacturer;
    use ironsafe_crypto::schnorr::KeyPair;
    use rand::SeedableRng;

    struct Fixture {
        group: Group,
        mfr: Manufacturer,
        device: TrustZoneDevice,
        booted: BootedSystem,
        rng: rand::rngs::StdRng,
    }

    fn fixture() -> Fixture {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let device = mfr.make_device("storage-0", 8, &mut rng);
        let vendor = KeyPair::derive(&group, b"acme", b"tz-manufacturer-root");
        let images = BootImages {
            trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut rng),
            trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"optee".to_vec()), &mut rng),
            normal_world: SoftwareImage::new("nw", 5, b"kernel+engine".to_vec()),
        };
        let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).unwrap();
        Fixture { group, mfr, device, booted, rng }
    }

    #[test]
    fn attestation_roundtrip() {
        let mut f = fixture();
        let ta = AttestationTa::new(&f.booted);
        let challenge = [0x55u8; 32];
        let resp = ta.respond(challenge, &mut f.rng);
        let (m, v) = verify_attestation(&f.group, &f.mfr.root_public(), &challenge, &resp).unwrap();
        assert_eq!(m, f.booted.nw_measurement);
        assert_eq!(v, 5);
    }

    #[test]
    fn replayed_response_with_wrong_challenge_rejected() {
        let mut f = fixture();
        let ta = AttestationTa::new(&f.booted);
        let resp = ta.respond([1u8; 32], &mut f.rng);
        assert!(verify_attestation(&f.group, &f.mfr.root_public(), &[2u8; 32], &resp).is_err());
    }

    #[test]
    fn lied_about_measurement_rejected() {
        let mut f = fixture();
        let ta = AttestationTa::new(&f.booted);
        let challenge = [3u8; 32];
        let mut resp = ta.respond(challenge, &mut f.rng);
        resp.nw_measurement.0[0] ^= 1;
        assert!(verify_attestation(&f.group, &f.mfr.root_public(), &challenge, &resp).is_err());
    }

    #[test]
    fn lied_about_version_rejected() {
        let mut f = fixture();
        let ta = AttestationTa::new(&f.booted);
        let challenge = [3u8; 32];
        let mut resp = ta.respond(challenge, &mut f.rng);
        resp.nw_version = 99;
        assert!(verify_attestation(&f.group, &f.mfr.root_public(), &challenge, &resp).is_err());
    }

    #[test]
    fn batched_commit_marks_roundtrip_and_keep_root_layout() {
        let mut f = fixture();
        let ta = SecureStorageTa::init(&mut f.device).unwrap();
        let root = [0x21u8; 32];
        let wal = [0x7eu8; 32];
        ta.store_commit_marks(&mut f.device, &root, &wal).unwrap();
        let (r, w) = ta.load_commit_marks(&f.device, &mut f.rng).unwrap();
        assert_eq!((r, w), (root, wal));
        // The plain root loader reads the batched block unchanged.
        assert_eq!(ta.load_merkle_root(&f.device, &mut f.rng).unwrap(), root);
        // A root-only store reports a zero WAL mark.
        ta.store_merkle_root(&mut f.device, &root).unwrap();
        let (_, w) = ta.load_commit_marks(&f.device, &mut f.rng).unwrap();
        assert_eq!(w, [0u8; 32]);
    }

    #[test]
    fn storage_ta_persists_merkle_root_across_instances() {
        let mut f = fixture();
        let ta = SecureStorageTa::init(&mut f.device).unwrap();
        let root = [0xabu8; 32];
        ta.store_merkle_root(&mut f.device, &root).unwrap();
        // A new TA instance (e.g. after reboot) reads the same value.
        let ta2 = SecureStorageTa::init(&mut f.device).unwrap();
        assert_eq!(ta2.load_merkle_root(&f.device, &mut f.rng).unwrap(), root);
    }

    #[test]
    fn db_key_roundtrips_and_is_device_bound() {
        let mut f = fixture();
        let ta = SecureStorageTa::init(&mut f.device).unwrap();
        let key = [0x77u8; 16];
        ta.store_db_key(&mut f.device, &key, &mut f.rng).unwrap();
        assert_eq!(ta.load_db_key(&f.device, &mut f.rng).unwrap(), key);

        // A different device (different TASK) cannot unwrap the key.
        let mut other = f.mfr.make_device("storage-1", 8, &mut f.rng);
        let other_ta = SecureStorageTa::init(&mut other).unwrap();
        assert!(other_ta.load_db_key(&other, &mut f.rng).is_err());
    }

    #[test]
    fn task_differs_between_devices() {
        let mut f = fixture();
        let ta0 = SecureStorageTa::init(&mut f.device).unwrap();
        let mut dev1 = f.mfr.make_device("storage-1", 8, &mut f.rng);
        let ta1 = SecureStorageTa::init(&mut dev1).unwrap();
        assert_ne!(ta0.task(), ta1.task());
    }
}
