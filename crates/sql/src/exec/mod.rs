//! Physical operators (volcano iterators).
//!
//! Every operator pulls rows from its child via [`Operator::next`]. Scans
//! stream pages through the shared pager; pipeline breakers (sort, hash
//! aggregate, hash-join build side) materialize on first pull.

pub mod aggregate;
pub mod join;
pub mod morsel;
pub mod partial;
pub mod scan;
pub mod sort;

pub use aggregate::{AggSpec, HashAggregate};
pub use join::{HashJoin, NestedLoopJoin};
pub use morsel::{
    Dop, ExecMetrics, ExecOptions, Morsel, MorselScan, MorselSource, ParallelHashAggregate,
    ScanWatch, partition_pages,
};
pub use partial::AggPlan;
pub use scan::SeqScan;
pub use sort::Sort;

use crate::ast::Expr;
use crate::expr::eval;
use crate::schema::{Row, Schema};
use crate::Result;

/// A pull-based physical operator.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;
    /// One-line description for `EXPLAIN`.
    fn describe(&self) -> String;
    /// Child operators (for `EXPLAIN`), when still attached.
    fn children(&self) -> Vec<&BoxOp> {
        Vec::new()
    }
    /// Rows this operator has emitted so far (fuels `EXPLAIN ANALYZE`).
    fn rows_out(&self) -> u64 {
        0
    }
}

/// Render an operator tree as an indented `EXPLAIN` listing.
pub fn explain(op: &BoxOp) -> String {
    fn walk(op: &BoxOp, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&op.describe());
        out.push('\n');
        for c in op.children() {
            walk(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(op, 0, &mut out);
    out
}

/// One operator's observed execution facts, captured from a drained plan
/// (fuels `EXPLAIN ANALYZE` and the CSA-level `QueryProfile`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// The operator's `describe()` line.
    pub describe: String,
    /// Rows pulled from children (sum of the children's `rows_out`;
    /// 0 for leaves, whose input is pages, not rows).
    pub rows_in: u64,
    /// Rows this operator emitted.
    pub rows_out: u64,
    /// True for leaf operators (scans/values) — renderers print only
    /// `rows out` for these.
    pub leaf: bool,
}

impl OperatorProfile {
    /// Observed selectivity `rows_out / rows_in` (`None` for leaves and
    /// operators that pulled no rows).
    pub fn selectivity(&self) -> Option<f64> {
        (!self.leaf && self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

/// Capture per-operator profiles from a drained plan, preorder (the same
/// order `EXPLAIN` prints). Counts reflect rows pulled so far, so drain
/// the tree first.
pub fn operator_profiles(op: &BoxOp) -> Vec<OperatorProfile> {
    fn walk(op: &BoxOp, depth: usize, out: &mut Vec<OperatorProfile>) {
        let children = op.children();
        out.push(OperatorProfile {
            depth,
            describe: op.describe(),
            rows_in: children.iter().map(|c| c.rows_out()).sum(),
            rows_out: op.rows_out(),
            leaf: children.is_empty(),
        });
        for c in children {
            walk(c, depth + 1, out);
        }
    }
    let mut out = Vec::new();
    walk(op, 0, &mut out);
    out
}

/// Render an *executed* operator tree with per-operator row counts:
/// each line is `describe() (rows in=I out=O)`, where `in` is the sum of
/// the children's emitted rows. Drain the tree first — counts reflect
/// rows pulled so far.
pub fn explain_analyze(op: &BoxOp) -> String {
    let mut out = String::new();
    for p in operator_profiles(op) {
        for _ in 0..p.depth {
            out.push_str("  ");
        }
        out.push_str(&p.describe);
        if p.leaf {
            out.push_str(&format!(" (rows out={})", p.rows_out));
        } else {
            out.push_str(&format!(" (rows in={} out={})", p.rows_in, p.rows_out));
        }
        out.push('\n');
    }
    out
}

/// Boxed operator (the tree's edge type).
pub type BoxOp = Box<dyn Operator + Send>;

/// Materialized input rows (used for policy tests and for tables shipped
/// from the storage engine to the host).
pub struct Values {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
    emitted: u64,
}

impl Values {
    /// Wrap rows with their schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Values { schema, rows: rows.into_iter(), emitted: 0 }
    }
}

impl Operator for Values {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let row = self.rows.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }

    fn describe(&self) -> String {
        format!("Values ({} columns)", self.schema.len())
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }
}

/// Filter: passes rows whose predicate is truthy.
pub struct Filter {
    input: BoxOp,
    predicate: Expr,
    emitted: u64,
}

impl Filter {
    /// Wrap `input` with `predicate`.
    pub fn new(input: BoxOp, predicate: Expr) -> Self {
        Filter { input, predicate, emitted: 0 }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn describe(&self) -> String {
        format!("Filter: {}", crate::ast::expr_to_sql(&self.predicate))
    }

    fn children(&self) -> Vec<&BoxOp> {
        vec![&self.input]
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if eval(&self.predicate, self.input.schema(), &row)?.is_truthy() {
                self.emitted += 1;
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Projection: computes output expressions per row.
pub struct Project {
    input: BoxOp,
    exprs: Vec<Expr>,
    schema: Schema,
    emitted: u64,
}

impl Project {
    /// Project `exprs` out of `input`, naming outputs per `schema`.
    pub fn new(input: BoxOp, exprs: Vec<Expr>, schema: Schema) -> Self {
        debug_assert_eq!(exprs.len(), schema.len());
        Project { input, exprs, schema, emitted: 0 }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let cols: Vec<String> = self.schema.columns.iter().map(|c| c.name.clone()).collect();
        format!("Project: {}", cols.join(", "))
    }

    fn children(&self) -> Vec<&BoxOp> {
        vec![&self.input]
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(eval(e, self.input.schema(), &row)?);
                }
                self.emitted += 1;
                Ok(Some(out))
            }
        }
    }
}

/// Limit: stops after `n` rows.
pub struct Limit {
    input: BoxOp,
    remaining: u64,
    emitted: u64,
}

impl Limit {
    /// Pass at most `n` rows of `input`.
    pub fn new(input: BoxOp, n: u64) -> Self {
        Limit { input, remaining: n, emitted: 0 }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn describe(&self) -> String {
        format!("Limit: {}", self.remaining)
    }

    fn children(&self) -> Vec<&BoxOp> {
        vec![&self.input]
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                self.emitted += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }
}

/// Drain an operator into a row vector.
pub fn collect(mut op: BoxOp) -> Result<(Schema, Vec<Row>)> {
    let schema = op.schema().clone();
    let mut rows = Vec::new();
    while let Some(r) = op.next()? {
        rows.push(r);
    }
    Ok((schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    pub(crate) fn test_schema() -> Schema {
        Schema::new(vec![Column::new("a", DataType::Int), Column::new("b", DataType::Text)])
    }

    pub(crate) fn test_rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i), Value::Text(format!("s{i}"))]).collect()
    }

    #[test]
    fn values_streams_rows() {
        let (_, rows) = collect(Box::new(Values::new(test_schema(), test_rows(5)))).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn filter_keeps_matching() {
        let v = Box::new(Values::new(test_schema(), test_rows(10)));
        let f = Box::new(Filter::new(v, parse_expression("a >= 7").unwrap()));
        let (_, rows) = collect(f).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Int(7));
    }

    #[test]
    fn project_computes_expressions() {
        let v = Box::new(Values::new(test_schema(), test_rows(3)));
        let out_schema = Schema::new(vec![Column::new("double_a", DataType::Int)]);
        let p = Box::new(Project::new(v, vec![parse_expression("a * 2").unwrap()], out_schema));
        let (schema, rows) = collect(p).unwrap();
        assert_eq!(schema.columns[0].name, "double_a");
        assert_eq!(rows[2][0], Value::Int(4));
    }

    #[test]
    fn limit_truncates() {
        let v = Box::new(Values::new(test_schema(), test_rows(10)));
        let (_, rows) = collect(Box::new(Limit::new(v, 4))).unwrap();
        assert_eq!(rows.len(), 4);
        let v = Box::new(Values::new(test_schema(), test_rows(2)));
        let (_, rows) = collect(Box::new(Limit::new(v, 100))).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
