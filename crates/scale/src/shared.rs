//! [`QueryBackend`] binding: serve a federation through the same seam
//! the single-node shared system uses.

use crate::federation::FederatedCsaSystem;
use ironsafe_csa::{CsaError, QueryBackend, QueryReport};
use ironsafe_obs::TraceSnapshot;
use ironsafe_sql::ast::Statement;
use ironsafe_tpch::queries::PaperQuery;

impl QueryBackend for FederatedCsaSystem {
    fn run_query_with_dop(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> ironsafe_csa::Result<(QueryReport, Option<TraceSnapshot>)> {
        let (report, snapshot) = self
            .run_query_federated(q, session_key, dop)
            .map_err(CsaError::from)?;
        Ok((report.to_query_report(), Some(snapshot)))
    }

    fn run_statement_with_dop(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> ironsafe_csa::Result<(QueryReport, Option<TraceSnapshot>)> {
        let (report, snapshot) = self
            .run_statement_federated(stmt, session_key, dop)
            .map_err(CsaError::from)?;
        Ok((report.to_query_report(), Some(snapshot)))
    }

    fn take_flight_dump(&self) -> Vec<String> {
        FederatedCsaSystem::take_flight_dump(self)
    }
}
