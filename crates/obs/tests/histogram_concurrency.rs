//! Determinism of histograms under concurrency — the same bar as
//! golden parity: whatever the thread interleaving, the numbers that
//! come out must be bit-identical.
//!
//! Two properties:
//! * one *shared* histogram recorded from many threads equals the same
//!   multiset recorded serially (atomics commute), and
//! * *per-worker* histograms merged via [`HistogramSnapshot::merge`]
//!   are identical in any merge order (merge is `u64` addition
//!   per field, hence commutative and associative).

use ironsafe_obs::metrics::{Histogram, HistogramSnapshot};

/// Deterministic per-worker sample stream (SplitMix64-style mixer, the
/// same construction the fault plan uses — no global RNG).
fn samples(worker: u64, n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let mut z = worker
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i.wrapping_mul(0xd134_2543_de82_ef95));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) & 0xffff
        })
        .collect()
}

const WORKERS: u64 = 8;
const PER_WORKER: u64 = 5_000;

fn serial_expected() -> HistogramSnapshot {
    let h = Histogram::new();
    for w in 0..WORKERS {
        for v in samples(w, PER_WORKER) {
            h.record(v);
        }
    }
    h.snapshot()
}

#[test]
fn shared_histogram_is_interleaving_independent() {
    let expected = serial_expected();
    // Several rounds so distinct interleavings are actually exercised.
    for _ in 0..5 {
        let shared = Histogram::new();
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let shared = &shared;
                s.spawn(move || {
                    for v in samples(w, PER_WORKER) {
                        shared.record(v);
                    }
                });
            }
        });
        assert_eq!(shared.snapshot(), expected, "shared recording must be bit-identical");
    }
}

#[test]
fn per_worker_merge_is_order_independent() {
    let expected = serial_expected();
    let per_worker: Vec<HistogramSnapshot> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                s.spawn(move || {
                    let h = Histogram::new();
                    for v in samples(w, PER_WORKER) {
                        h.record(v);
                    }
                    h.snapshot()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Merge in worker order, reverse order, and an arbitrary shuffle:
    // all three must be bit-identical to the serial recording.
    let merge_in = |order: &[usize]| {
        let mut acc = HistogramSnapshot::default();
        for &i in order {
            acc.merge(&per_worker[i]);
        }
        acc
    };
    let forward: Vec<usize> = (0..WORKERS as usize).collect();
    let backward: Vec<usize> = (0..WORKERS as usize).rev().collect();
    let shuffled = vec![3usize, 7, 0, 5, 1, 6, 2, 4];

    // An empty-default accumulator has no buckets until the first merge
    // pads it, so normalize by comparing against the expected snapshot's
    // bucket length.
    let normalize = |mut s: HistogramSnapshot| {
        s.buckets.resize(expected.buckets.len(), 0);
        s
    };
    assert_eq!(normalize(merge_in(&forward)), expected);
    assert_eq!(normalize(merge_in(&backward)), expected);
    assert_eq!(normalize(merge_in(&shuffled)), expected);
}

#[test]
fn merge_pads_shorter_bucket_vectors() {
    let a = HistogramSnapshot { count: 1, sum: 0, buckets: vec![1] };
    let b = HistogramSnapshot { count: 1, sum: 8, buckets: vec![0, 0, 0, 1] };
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);
    assert_eq!(ab.count, 2);
    assert_eq!(ab.sum, 8);
    assert_eq!(ab.buckets, vec![1, 0, 0, 1]);
}
