//! SGX remote attestation: quotes and the attestation service.
//!
//! The paper relies on SCONE's Configuration and Attestation Service (CAS),
//! itself rooted in Intel IAS. We model the same trust structure:
//!
//! 1. Each genuine [`SgxPlatform`](crate::sgx::SgxPlatform) holds a
//!    quote-signing key derived from its fused secret.
//! 2. The [`AttestationService`] (IAS/CAS stand-in) knows which platform
//!    keys are genuine — registration models Intel's provisioning — and
//!    verifies quote signatures on behalf of relying parties.
//! 3. A [`Quote`] binds an enclave measurement and caller-chosen report
//!    data (e.g. a session public key) to a genuine platform.

use crate::image::Measurement;
use crate::sgx::enclave::{Enclave, SgxPlatform};
use crate::{Result, TeeError};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::{PublicKey, Signature};
use std::collections::HashMap;

/// A signed attestation quote.
#[derive(Debug, Clone)]
pub struct Quote {
    /// MRENCLAVE of the quoted enclave.
    pub measurement: Measurement,
    /// Version of the software inside the enclave.
    pub fw_version: u32,
    /// Identifier of the quoting platform.
    pub platform_id: [u8; 16],
    /// 64 bytes chosen by the enclave (typically a key commitment + nonce).
    pub report_data: Vec<u8>,
    /// Signature by the platform's quote key.
    pub signature: Signature,
}

impl Quote {
    fn signed_bytes(
        measurement: &Measurement,
        fw_version: u32,
        platform_id: &[u8; 16],
        report_data: &[u8],
    ) -> Vec<u8> {
        let mut msg = b"ironsafe-sgx-quote-v1".to_vec();
        msg.extend_from_slice(measurement.as_bytes());
        msg.extend_from_slice(&fw_version.to_be_bytes());
        msg.extend_from_slice(platform_id);
        msg.extend_from_slice(&(report_data.len() as u32).to_be_bytes());
        msg.extend_from_slice(report_data);
        msg
    }

    /// Produce a quote for `enclave` on `platform` with caller `report_data`.
    pub fn generate(
        platform: &SgxPlatform,
        enclave: &Enclave,
        report_data: &[u8],
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Quote {
        let measurement = enclave.measurement();
        let fw_version = enclave.image_version();
        let msg = Self::signed_bytes(&measurement, fw_version, &platform.platform_id, report_data);
        let signature = platform.quote_keys().secret.sign(&msg, rng);
        Quote {
            measurement,
            fw_version,
            platform_id: platform.platform_id,
            report_data: report_data.to_vec(),
            signature,
        }
    }
}

/// Outcome of a successful quote verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuoteVerification {
    /// The verified enclave measurement.
    pub measurement: Measurement,
    /// The verified firmware version.
    pub fw_version: u32,
    /// The platform that produced the quote.
    pub platform_id: [u8; 16],
}

/// IAS/CAS stand-in: the registry of genuine SGX platforms.
#[derive(Default)]
pub struct AttestationService {
    group: Option<Group>,
    platforms: HashMap<[u8; 16], PublicKey>,
}

impl AttestationService {
    /// Create an empty service for `group`.
    pub fn new(group: &Group) -> Self {
        AttestationService { group: Some(group.clone()), platforms: HashMap::new() }
    }

    /// Register a genuine platform (models Intel provisioning).
    pub fn register_platform(&mut self, platform: &SgxPlatform) {
        self.platforms.insert(platform.platform_id, platform.quote_keys().public.clone());
    }

    /// Number of registered platforms.
    pub fn platform_count(&self) -> usize {
        self.platforms.len()
    }

    /// Verify a quote: the platform must be registered and the signature
    /// must check out. Returns the verified claims.
    pub fn verify_quote(&self, quote: &Quote) -> Result<QuoteVerification> {
        let group = self.group.as_ref().ok_or(TeeError::InvalidState("service not initialized"))?;
        let key = self
            .platforms
            .get(&quote.platform_id)
            .ok_or(TeeError::AttestationFailed("unknown platform"))?;
        let msg = Quote::signed_bytes(
            &quote.measurement,
            quote.fw_version,
            &quote.platform_id,
            &quote.report_data,
        );
        key.verify(group, &msg, &quote.signature)
            .map_err(|_| TeeError::AttestationFailed("bad quote signature"))?;
        Ok(QuoteVerification {
            measurement: quote.measurement,
            fw_version: quote.fw_version,
            platform_id: quote.platform_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SoftwareImage;
    use crate::sgx::enclave::EnclaveConfig;
    use rand::SeedableRng;

    fn setup() -> (Group, SgxPlatform, Enclave, AttestationService, rand::rngs::StdRng) {
        let group = Group::modp_1024();
        let platform = SgxPlatform::from_seed(&group, b"host-0");
        let enclave = platform.create_enclave(
            &SoftwareImage::new("host-engine", 7, b"code".to_vec()),
            EnclaveConfig::default(),
        );
        let mut ias = AttestationService::new(&group);
        ias.register_platform(&platform);
        (group, platform, enclave, ias, rand::rngs::StdRng::seed_from_u64(3))
    }

    #[test]
    fn genuine_quote_verifies() {
        let (_, platform, enclave, ias, mut rng) = setup();
        let quote = Quote::generate(&platform, &enclave, b"session-key-commitment", &mut rng);
        let v = ias.verify_quote(&quote).unwrap();
        assert_eq!(v.measurement, enclave.measurement());
        assert_eq!(v.fw_version, 7);
    }

    #[test]
    fn unknown_platform_rejected() {
        let (group, _, enclave, ias, mut rng) = setup();
        let rogue = SgxPlatform::from_seed(&group, b"rogue");
        let quote = Quote::generate(&rogue, &enclave, b"", &mut rng);
        assert_eq!(ias.verify_quote(&quote), Err(TeeError::AttestationFailed("unknown platform")));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (_, platform, enclave, ias, mut rng) = setup();
        let mut quote = Quote::generate(&platform, &enclave, b"", &mut rng);
        quote.measurement.0[0] ^= 1;
        assert!(ias.verify_quote(&quote).is_err());
    }

    #[test]
    fn tampered_report_data_rejected() {
        let (_, platform, enclave, ias, mut rng) = setup();
        let mut quote = Quote::generate(&platform, &enclave, b"honest data", &mut rng);
        quote.report_data = b"evil data!!".to_vec();
        assert!(ias.verify_quote(&quote).is_err());
    }

    #[test]
    fn fw_version_downgrade_rejected() {
        let (_, platform, enclave, ias, mut rng) = setup();
        let mut quote = Quote::generate(&platform, &enclave, b"", &mut rng);
        quote.fw_version = 99;
        assert!(ias.verify_quote(&quote).is_err());
    }

    #[test]
    fn platform_impersonation_rejected() {
        // A rogue platform replaying a genuine platform's id without its key.
        let (group, platform, enclave, ias, mut rng) = setup();
        let rogue = SgxPlatform::from_seed(&group, b"rogue");
        let mut quote = Quote::generate(&rogue, &enclave, b"", &mut rng);
        quote.platform_id = platform.platform_id;
        assert_eq!(ias.verify_quote(&quote), Err(TeeError::AttestationFailed("bad quote signature")));
    }
}
