//! Expression evaluation against a row.

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::{Result, SqlError};
use std::cmp::Ordering;

/// Evaluate `expr` against `row` described by `schema`.
///
/// Aggregate calls are *not* valid here — the aggregation operator
/// replaces them with computed columns before evaluation.
pub fn eval(expr: &Expr, schema: &Schema, row: &Row) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let idx = schema.resolve(name)?;
            Ok(row[idx].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary { op, expr } => {
            let v = eval(expr, schema, row)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(SqlError::Eval(format!("cannot negate {other:?}"))),
                },
                UnaryOp::Not => {
                    if v.is_null() {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Int(!v.is_truthy() as i64))
                    }
                }
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, schema, row),
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, schema, row)?;
            let lo = eval(low, schema, row)?;
            let hi = eval(high, schema, row)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Int((inside ^ negated) as i64))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval(item, schema, row)?;
                if v.compare(&iv) == Some(Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Int((found ^ negated) as i64))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, schema, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int((like_match(pattern, &s) ^ negated) as i64)),
                other => Err(SqlError::Eval(format!("LIKE needs text, got {other:?}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(Value::Int((v.is_null() ^ negated) as i64))
        }
        Expr::Case { when_then, else_expr } => {
            for (cond, val) in when_then {
                if eval(cond, schema, row)?.is_truthy() {
                    return eval(val, schema, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, schema, row),
                None => Ok(Value::Null),
            }
        }
        Expr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, schema, row)?);
            }
            eval_func(name, &vals)
        }
        Expr::Agg { .. } => Err(SqlError::Eval("aggregate outside aggregation context".into())),
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, schema: &Schema, row: &Row) -> Result<Value> {
    // Short-circuit logical operators with SQL three-valued logic.
    match op {
        BinOp::And => {
            let l = eval(left, schema, row)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Int(0));
            }
            let r = eval(right, schema, row)?;
            if !r.is_null() && !r.is_truthy() {
                return Ok(Value::Int(0));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            return Ok(Value::Int(1));
        }
        BinOp::Or => {
            let l = eval(left, schema, row)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Int(1));
            }
            let r = eval(right, schema, row)?;
            if !r.is_null() && r.is_truthy() {
                return Ok(Value::Int(1));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            return Ok(Value::Int(0));
        }
        _ => {}
    }

    let l = eval(left, schema, row)?;
    let r = eval(right, schema, row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let ord = l
                .compare(&r)
                .ok_or_else(|| SqlError::Eval(format!("cannot compare {l:?} and {r:?}")))?;
            let b = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::NotEq => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::LtEq => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Int op Int stays Int (except division, which is exact only when even).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(SqlError::Eval("division by zero".into()))
                } else if a % b == 0 {
                    Ok(Value::Int(a / b))
                } else {
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Err(SqlError::Eval("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        };
    }
    let a = l.as_f64()?;
    let b = r.as_f64()?;
    match op {
        BinOp::Add => Ok(Value::Float(a + b)),
        BinOp::Sub => Ok(Value::Float(a - b)),
        BinOp::Mul => Ok(Value::Float(a * b)),
        BinOp::Div => {
            if b == 0.0 {
                Err(SqlError::Eval("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Err(SqlError::Eval("modulo by zero".into()))
            } else {
                Ok(Value::Float(a % b))
            }
        }
        _ => unreachable!(),
    }
}

/// Evaluate a built-in scalar function over already-evaluated arguments.
fn eval_func(name: &str, args: &[Value]) -> Result<Value> {
    // NULL in, NULL out for every built-in.
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match name {
        "SUBSTR" => {
            // SUBSTR(s, start [, len]) — 1-based start, char-wise.
            if args.len() != 2 && args.len() != 3 {
                return Err(SqlError::Eval("SUBSTR takes 2 or 3 arguments".into()));
            }
            let s = args[0].as_str()?;
            let start = args[1].as_i64()?.max(1) as usize - 1;
            let chars: Vec<char> = s.chars().collect();
            let end = match args.get(2) {
                Some(l) => (start + l.as_i64()?.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            let start = start.min(chars.len());
            Ok(Value::Text(chars[start..end].iter().collect()))
        }
        "LENGTH" => {
            if args.len() != 1 {
                return Err(SqlError::Eval("LENGTH takes 1 argument".into()));
            }
            Ok(Value::Int(args[0].as_str()?.chars().count() as i64))
        }
        "YEAR" => {
            // YEAR('YYYY-MM-DD') — the four leading digits as an integer.
            if args.len() != 1 {
                return Err(SqlError::Eval("YEAR takes 1 argument".into()));
            }
            let s = args[0].as_str()?;
            let y: i64 = s
                .get(..4)
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| SqlError::Eval(format!("YEAR: `{s}` is not an ISO date")))?;
            Ok(Value::Int(y))
        }
        "ABS" => {
            if args.len() != 1 {
                return Err(SqlError::Eval("ABS takes 1 argument".into()));
            }
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                v => Ok(Value::Float(v.as_f64()?.abs())),
            }
        }
        "ROUND" => {
            // ROUND(x [, digits])
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::Eval("ROUND takes 1 or 2 arguments".into()));
            }
            let x = args[0].as_f64()?;
            let digits = match args.get(1) {
                Some(d) => d.as_i64()?,
                None => 0,
            };
            let m = 10f64.powi(digits as i32);
            Ok(Value::Float((x * m).round() / m))
        }
        other => Err(SqlError::Eval(format!("unknown function `{other}`"))),
    }
}

/// SQL `LIKE` matcher: `%` matches any run, `_` matches one character.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // Collapse consecutive %.
            let rest = &p[1..];
            if rest.is_empty() {
                return true;
            }
            for skip in 0..=t.len() {
                if like_rec(rest, &t[skip..]) {
                    return true;
                }
            }
            false
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some(c) => t.first() == Some(c) && like_rec(&p[1..], &t[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("n", DataType::Int),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(10), Value::Float(2.5), Value::Text("hello".into()), Value::Null]
    }

    fn run(src: &str) -> Value {
        eval(&parse_expression(src).unwrap(), &schema(), &row()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("a + 5"), Value::Int(15));
        assert_eq!(run("a * b"), Value::Float(25.0));
        assert_eq!(run("a / 4"), Value::Float(2.5));
        assert_eq!(run("a / 5"), Value::Int(2));
        assert_eq!(run("a % 3"), Value::Int(1));
        assert_eq!(run("-a"), Value::Int(-10));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = parse_expression("a / 0").unwrap();
        assert!(eval(&e, &schema(), &row()).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("a = 10"), Value::Int(1));
        assert_eq!(run("a <> 10"), Value::Int(0));
        assert_eq!(run("b < 3"), Value::Int(1));
        assert_eq!(run("s = 'hello'"), Value::Int(1));
        assert_eq!(run("s < 'world'"), Value::Int(1));
    }

    #[test]
    fn null_propagation() {
        assert!(run("n + 1").is_null());
        assert!(run("n = n").is_null());
        assert!(run("NOT n").is_null());
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert_eq!(run("n = 1 AND a = 99"), Value::Int(0));
        assert!(run("n = 1 AND a = 10").is_null());
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
        assert_eq!(run("n = 1 OR a = 10"), Value::Int(1));
        assert!(run("n = 1 OR a = 99").is_null());
    }

    #[test]
    fn between_in() {
        assert_eq!(run("a BETWEEN 5 AND 15"), Value::Int(1));
        assert_eq!(run("a BETWEEN 11 AND 15"), Value::Int(0));
        assert_eq!(run("a NOT BETWEEN 11 AND 15"), Value::Int(1));
        assert_eq!(run("a IN (1, 10, 100)"), Value::Int(1));
        assert_eq!(run("a NOT IN (1, 10, 100)"), Value::Int(0));
        assert_eq!(run("s IN ('x', 'hello')"), Value::Int(1));
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(run("n IS NULL"), Value::Int(1));
        assert_eq!(run("n IS NOT NULL"), Value::Int(0));
        assert_eq!(run("a IS NULL"), Value::Int(0));
    }

    #[test]
    fn case_expr() {
        assert_eq!(run("CASE WHEN a = 10 THEN 'ten' ELSE 'other' END"), Value::Text("ten".into()));
        assert_eq!(run("CASE WHEN a = 11 THEN 'x' END"), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("h%", "hello"));
        assert!(like_match("%llo", "hello"));
        assert!(like_match("%ell%", "hello"));
        assert!(like_match("h_llo", "hello"));
        assert!(like_match("%", ""));
        assert!(!like_match("h_llo", "hllo"));
        assert!(!like_match("hello", "hell"));
        assert!(!like_match("", "x"));
        assert!(like_match("%%x%%", "aaxbb"));
    }

    #[test]
    fn like_in_sql() {
        assert_eq!(run("s LIKE 'hel%'"), Value::Int(1));
        assert_eq!(run("s NOT LIKE '%z%'"), Value::Int(1));
    }

    #[test]
    fn aggregate_outside_context_errors() {
        let e = parse_expression("SUM(a)").unwrap();
        assert!(eval(&e, &schema(), &row()).is_err());
    }

    #[test]
    fn date_comparison_as_text() {
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let row = vec![Value::Text("1995-06-17".into())];
        let e = parse_expression("d BETWEEN '1995-01-01' AND '1995-12-31'").unwrap();
        assert_eq!(eval(&e, &schema, &row).unwrap(), Value::Int(1));
    }
}

#[cfg(test)]
mod func_tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn run(src: &str) -> Value {
        let schema = Schema::new(vec![Column::new("d", DataType::Text), Column::new("x", DataType::Float)]);
        let row = vec![Value::Text("1995-06-17".into()), Value::Float(-2.7173)];
        eval(&parse_expression(src).unwrap(), &schema, &row).unwrap()
    }

    #[test]
    fn year_extracts_leading_digits() {
        assert_eq!(run("YEAR(d)"), Value::Int(1995));
    }

    #[test]
    fn substr_is_one_based_and_clamped() {
        assert_eq!(run("SUBSTR(d, 1, 4)"), Value::Text("1995".into()));
        assert_eq!(run("SUBSTR(d, 6, 2)"), Value::Text("06".into()));
        assert_eq!(run("SUBSTR(d, 9)"), Value::Text("17".into()));
        assert_eq!(run("SUBSTR(d, 100, 5)"), Value::Text(String::new()));
    }

    #[test]
    fn length_abs_round() {
        assert_eq!(run("LENGTH(d)"), Value::Int(10));
        assert_eq!(run("ABS(x)"), Value::Float(2.7173));
        assert_eq!(run("ROUND(x, 2)"), Value::Float(-2.72));
        assert_eq!(run("ROUND(x)"), Value::Float(-3.0));
        assert_eq!(run("ABS(0 - 5)"), Value::Int(5));
    }

    #[test]
    fn null_propagates_through_functions() {
        let schema = Schema::new(vec![Column::new("n", DataType::Text)]);
        let row = vec![Value::Null];
        let v = eval(&parse_expression("YEAR(n)").unwrap(), &schema, &row).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn unknown_function_rejected_at_parse() {
        // Unknown names parse as column refs and fail resolution later;
        // known-but-misused arities fail at eval.
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let row = vec![Value::Text("x".into())];
        assert!(eval(&parse_expression("SUBSTR(d)").unwrap(), &schema, &row).is_err());
    }

    #[test]
    fn functions_inside_aggregates_via_db() {
        use crate::db::Database;
        use ironsafe_storage::pager::PlainPager;
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE t (d DATE, v FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES ('1995-01-01', 10.0), ('1995-06-01', 20.0), ('1996-01-01', 40.0)").unwrap();
        let r = db
            .execute("SELECT YEAR(d) AS y, SUM(v) FROM t GROUP BY YEAR(d) ORDER BY y")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][0], Value::Int(1995));
        assert_eq!(r.rows()[0][1], Value::Float(30.0));
    }
}
