//! Federation topology and partitioning configuration.

use crate::{Result, ScaleError};
use ironsafe_csa::{CostParams, PushdownDepth, SystemConfig};
use std::collections::HashMap;

/// How a table's rows map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// `fnv1a(key) % shards`. Placement-oblivious, so summed per-shard
    /// page counts are *not* conserved versus one node (row boundaries
    /// fall mid-page); result rows remain bit-identical.
    Hash,
    /// Contiguous key ranges with boundaries snapped to canonical heap
    /// page starts. On key-sorted data (the TPC-H generator emits every
    /// table in partition-key order) each shard's greedy heap packing
    /// reproduces the canonical page splits exactly, so summed per-shard
    /// page reads/writes/decrypts/encrypts are conserved at any N.
    Range,
}

/// Configuration for a [`FederatedCsaSystem`](crate::FederatedCsaSystem).
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of shards (primary storage nodes).
    pub shards: usize,
    /// Extra replicas per shard (failover chain length is
    /// `replicas + 1`). Must be smaller than `shards`: a cluster of
    /// `shards` nodes cannot hold more copies of a partition than it
    /// has distinct nodes.
    pub replicas: usize,
    /// Row-to-shard mapping.
    pub mode: PartitionMode,
    /// Per-node system configuration (Table 2 row). Secure
    /// configurations give every node its own `SecurePager`, Merkle
    /// tree, RPMB root and attestation record.
    pub system: SystemConfig,
    /// Cost-model parameters (shared by every node and the coordinator).
    pub params: CostParams,
    /// Partition-key column per table.
    pub partition_keys: HashMap<String, String>,
    /// Run every node's read-only fragments through the vectorized
    /// (column-batch) operators. Rows, breakdowns and summed stats stay
    /// bit-identical to scalar execution.
    pub vectorized: bool,
    /// Store every node's pages compressed before encrypt+MAC. Result
    /// rows are unchanged; physical page/crypto counters drop with the
    /// achieved compression ratio (honest accounting).
    pub compressed: bool,
    /// How far single-table work pushes down into the shards: partial
    /// aggregation (when the query shape allows it) or qualifying rows
    /// only. Depth changes fan-in traffic and cost, never the merged
    /// answer.
    pub pushdown: PushdownDepth,
}

impl FederationConfig {
    /// A federation of `shards` nodes in `system`, range-partitioned on
    /// the TPC-H primary keys, no replicas.
    pub fn new(shards: usize, system: SystemConfig) -> Self {
        FederationConfig {
            shards,
            replicas: 0,
            mode: PartitionMode::Range,
            system,
            params: CostParams::default(),
            partition_keys: tpch_partition_keys(),
            vectorized: false,
            compressed: false,
            pushdown: PushdownDepth::default(),
        }
    }

    /// Switch vectorized execution on for every node.
    pub fn with_vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Store every node's pages compressed before encrypt+MAC.
    pub fn with_compressed(mut self, on: bool) -> Self {
        self.compressed = on;
        self
    }

    /// Set the replica count (extra copies per shard).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Set the partitioning mode.
    pub fn with_mode(mut self, mode: PartitionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the shard pushdown depth.
    pub fn with_pushdown(mut self, depth: PushdownDepth) -> Self {
        self.pushdown = depth;
        self
    }

    /// Set the cost-model parameters.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Override one table's partition key.
    pub fn with_partition_key(mut self, table: &str, key: &str) -> Self {
        self.partition_keys.insert(table.to_string(), key.to_string());
        self
    }

    /// Reject degenerate topologies. Pure — called before any node is
    /// built or any page is written, so a bad config costs no I/O.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ScaleError::NoShards);
        }
        if self.replicas >= self.shards {
            return Err(ScaleError::TooManyReplicas {
                replicas: self.replicas,
                shards: self.shards,
            });
        }
        Ok(())
    }
}

/// Default partition keys: each TPC-H table's generation-order key (the
/// generator emits rows in ascending key order, which is what lets
/// [`PartitionMode::Range`] snap boundaries to canonical page starts).
pub fn tpch_partition_keys() -> HashMap<String, String> {
    [
        ("region", "r_regionkey"),
        ("nation", "n_nationkey"),
        ("supplier", "s_suppkey"),
        ("customer", "c_custkey"),
        ("part", "p_partkey"),
        ("partsupp", "ps_partkey"),
        ("orders", "o_orderkey"),
        ("lineitem", "l_orderkey"),
    ]
    .into_iter()
    .map(|(t, k)| (t.to_string(), k.to_string()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_rejected() {
        let cfg = FederationConfig::new(0, SystemConfig::IronSafe);
        assert!(matches!(cfg.validate(), Err(ScaleError::NoShards)));
    }

    #[test]
    fn replica_count_must_be_below_shard_count() {
        let cfg = FederationConfig::new(2, SystemConfig::IronSafe).with_replicas(2);
        assert!(matches!(
            cfg.validate(),
            Err(ScaleError::TooManyReplicas { replicas: 2, shards: 2 })
        ));
        let cfg = FederationConfig::new(2, SystemConfig::IronSafe).with_replicas(1);
        assert!(cfg.validate().is_ok());
    }
}
