//! Multi-client serving: one attested deployment, one shared dataset,
//! many concurrent sessions with admission control and backpressure.
//!
//! ```text
//! cargo run --release --example multi_client
//! ```

use ironsafe::serve::{AdmitError, Job, ServeConfig};
use ironsafe::{Client, Deployment};
use ironsafe_obs::Registry;
use std::thread;

fn main() {
    // 1. Attest the deployment and load data single-client, exactly as
    //    in the quickstart.
    let mut dep = Deployment::builder().region("EU").build().expect("attestation succeeds");
    dep.create_database(
        "airline",
        "read :- sessionKeyIs(airline) | sessionKeyIs(hotel) | sessionKeyIs(analyst)\n\
         write :- sessionKeyIs(airline)",
    );
    let airline = Client::new("airline");
    dep.submit(&airline, "airline", "CREATE TABLE bookings (customer INT, flight TEXT, arrival DATE)", "")
        .unwrap();
    dep.submit(
        &airline,
        "airline",
        "INSERT INTO bookings VALUES \
         (1, 'LH441', '1997-05-02'), \
         (2, 'LH442', '1997-05-03'), \
         (3, 'LH441', '1997-05-02'), \
         (4, 'LH443', '1997-05-04')",
        "",
    )
    .unwrap();
    println!("✔ deployment attested, 4 bookings loaded");

    // 2. Go multi-session: the deployment becomes a server with a
    //    4-worker pool and bounded per-session queues.
    let server = dep.serve(ServeConfig { workers: 4, queue_capacity: 8, ..Default::default() });
    let registry = Registry::new();
    server.metrics().register(&registry);

    // 3. Three clients hammer the same shared dataset concurrently.
    //    Every query still goes through the monitor: policy check,
    //    rewrite, per-query session key, audit entry.
    let clients = ["airline", "hotel", "analyst"];
    let queries = [
        "SELECT COUNT(*) FROM bookings",
        "SELECT flight FROM bookings WHERE customer = 2",
        "SELECT arrival FROM bookings WHERE flight = 'LH441' ORDER BY customer",
    ];
    thread::scope(|s| {
        for (i, name) in clients.iter().enumerate() {
            let server = &server;
            s.spawn(move || {
                let session = server.open_session(name, "airline");
                for round in 0..4 {
                    let sql = queries[(i + round) % queries.len()];
                    // Backpressure-aware submit: a full queue means
                    // retry after draining one response, never blocking.
                    let ticket = loop {
                        match server.submit(session.id, Job::Sql(sql.into())) {
                            Ok(t) => break t,
                            Err(AdmitError::QueueFull { .. } | AdmitError::Busy) => {
                                thread::yield_now();
                            }
                            Err(e) => panic!("admission refused: {e}"),
                        }
                    };
                    let resp = ticket.wait();
                    let report = resp.outcome.expect("policy-compliant query");
                    println!(
                        "  {name:>8} q{round}: {:>2} row(s), {:.1} µs simulated",
                        report.result.rows().len(),
                        report.total_ns() / 1_000.0
                    );
                }
            });
        }
    });

    // 4. A revoked session is refused cleanly — per request, no panic.
    let mallory = server.open_session("hotel", "airline");
    server.revoke_session(mallory.id).unwrap();
    match server.submit(mallory.id, Job::Sql("SELECT COUNT(*) FROM bookings".into())) {
        Err(AdmitError::SessionClosed { reason, .. }) => {
            println!("✔ revoked session refused ({reason})");
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // 5. Drain and inspect the serving metrics.
    let metrics = server.shutdown();
    assert_eq!(metrics.admitted.get(), metrics.completed.get());
    println!("✔ drained: every admitted query completed");
    println!("{}", registry.snapshot().render_table());
}
