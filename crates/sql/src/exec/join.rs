//! Join operators: hash join (equi) and nested-loop join (general).

use crate::ast::Expr;
use crate::exec::{BoxOp, Operator};
use crate::expr::eval;
use crate::schema::{Row, Schema};
use crate::Result;
use std::collections::HashMap;

/// Inner hash join on equality keys.
///
/// Builds a hash table over the left input, then streams the right input,
/// emitting `left ‖ right` rows for every key match. NULL keys never match
/// (SQL semantics).
pub struct HashJoin {
    left: Option<BoxOp>,
    right: BoxOp,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    schema: Schema,
    table: HashMap<Vec<u8>, Vec<Row>>,
    /// Matches pending for the current probe row.
    pending: Vec<Row>,
    pending_right: Option<Row>,
    emitted: u64,
}

impl HashJoin {
    /// Join `left` and `right` on `left_keys[i] = right_keys[i]`.
    pub fn new(left: BoxOp, right: BoxOp, left_keys: Vec<Expr>, right_keys: Vec<Expr>) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "hash join needs at least one key");
        let schema = left.schema().join(right.schema());
        HashJoin {
            left: Some(left),
            right,
            left_keys,
            right_keys,
            schema,
            table: HashMap::new(),
            pending: Vec::new(),
            pending_right: None,
            emitted: 0,
        }
    }

    /// Compute the hash key; `None` when any key value is NULL.
    fn key_of(exprs: &[Expr], schema: &Schema, row: &Row) -> Result<Option<Vec<u8>>> {
        let mut key = Vec::with_capacity(exprs.len() * 9);
        for e in exprs {
            let v = eval(e, schema, row)?;
            if v.is_null() {
                return Ok(None);
            }
            v.key_bytes(&mut key);
        }
        Ok(Some(key))
    }

    fn build(&mut self) -> Result<()> {
        let mut left = self.left.take().expect("build called once");
        while let Some(row) = left.next()? {
            if let Some(key) = Self::key_of(&self.left_keys, left.schema(), &row)? {
                self.table.entry(key).or_default().push(row);
            }
        }
        Ok(())
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .left_keys
            .iter()
            .zip(self.right_keys.iter())
            .map(|(l, r)| format!("{} = {}", crate::ast::expr_to_sql(l), crate::ast::expr_to_sql(r)))
            .collect();
        format!("HashJoin: {}", keys.join(" AND "))
    }

    fn children(&self) -> Vec<&BoxOp> {
        let mut out = Vec::new();
        if let Some(l) = &self.left {
            out.push(l);
        }
        out.push(&self.right);
        out
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.left.is_some() {
            self.build()?;
        }
        loop {
            if let Some(l) = self.pending.pop() {
                let r = self.pending_right.as_ref().expect("pending implies probe row");
                let mut out = l;
                out.extend(r.iter().cloned());
                self.emitted += 1;
                return Ok(Some(out));
            }
            match self.right.next()? {
                None => return Ok(None),
                Some(r) => {
                    if let Some(key) = Self::key_of(&self.right_keys, self.right.schema(), &r)? {
                        if let Some(matches) = self.table.get(&key) {
                            self.pending = matches.clone();
                            self.pending_right = Some(r);
                        }
                    }
                }
            }
        }
    }
}

/// Nested-loop join with an arbitrary predicate (`None` = cross join).
///
/// Materializes the right input; used for the rare non-equi joins.
pub struct NestedLoopJoin {
    left: BoxOp,
    right_rows: Vec<Row>,
    schema: Schema,
    predicate: Option<Expr>,
    current_left: Option<Row>,
    right_index: usize,
    emitted: u64,
}

impl NestedLoopJoin {
    /// Join `left` against materialized `right` under `predicate`.
    pub fn new(left: BoxOp, mut right: BoxOp, predicate: Option<Expr>) -> Result<Self> {
        let schema = left.schema().join(right.schema());
        let mut right_rows = Vec::new();
        while let Some(r) = right.next()? {
            right_rows.push(r);
        }
        Ok(NestedLoopJoin {
            left,
            right_rows,
            schema,
            predicate,
            current_left: None,
            right_index: 0,
            emitted: 0,
        })
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        match &self.predicate {
            Some(p) => format!("NestedLoopJoin: {}", crate::ast::expr_to_sql(p)),
            None => format!("NestedLoopJoin: cross ({} right rows)", self.right_rows.len()),
        }
    }

    fn children(&self) -> Vec<&BoxOp> {
        vec![&self.left]
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.right_index = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let l = self.current_left.as_ref().expect("set above");
            while self.right_index < self.right_rows.len() {
                let r = &self.right_rows[self.right_index];
                self.right_index += 1;
                let mut out = l.clone();
                out.extend(r.iter().cloned());
                match &self.predicate {
                    None => {
                        self.emitted += 1;
                        return Ok(Some(out));
                    }
                    Some(p) => {
                        if eval(p, &self.schema, &out)?.is_truthy() {
                            self.emitted += 1;
                            return Ok(Some(out));
                        }
                    }
                }
            }
            self.current_left = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, Values};
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn orders() -> BoxOp {
        let schema = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_cust", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(3), Value::Int(10)],
            vec![Value::Int(4), Value::Null],
        ];
        Box::new(Values::new(schema, rows))
    }

    fn customers() -> BoxOp {
        let schema = Schema::new(vec![
            Column::new("c_id", DataType::Int),
            Column::new("c_name", DataType::Text),
        ]);
        let rows = vec![
            vec![Value::Int(10), Value::Text("alice".into())],
            vec![Value::Int(20), Value::Text("bob".into())],
            vec![Value::Int(30), Value::Text("carol".into())],
            vec![Value::Null, Value::Text("nobody".into())],
        ];
        Box::new(Values::new(schema, rows))
    }

    #[test]
    fn hash_join_matches_keys() {
        let j = HashJoin::new(
            customers(),
            orders(),
            vec![parse_expression("c_id").unwrap()],
            vec![parse_expression("o_cust").unwrap()],
        );
        let (schema, rows) = collect(Box::new(j)).unwrap();
        assert_eq!(schema.len(), 4);
        // alice matches orders 1 and 3; bob matches order 2; carol none.
        assert_eq!(rows.len(), 3);
        let mut names: Vec<String> = rows.iter().map(|r| r[1].as_str().unwrap().to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["alice", "alice", "bob"]);
    }

    #[test]
    fn null_keys_never_match() {
        let j = HashJoin::new(
            customers(),
            orders(),
            vec![parse_expression("c_id").unwrap()],
            vec![parse_expression("o_cust").unwrap()],
        );
        let (_, rows) = collect(Box::new(j)).unwrap();
        assert!(rows.iter().all(|r| !r[0].is_null() && !r[3].is_null()));
    }

    #[test]
    fn hash_join_empty_sides() {
        let empty_schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let empty = || Box::new(Values::new(empty_schema.clone(), vec![])) as BoxOp;
        let j = HashJoin::new(empty(), orders(), vec![parse_expression("x").unwrap()], vec![parse_expression("o_cust").unwrap()]);
        assert!(collect(Box::new(j)).unwrap().1.is_empty());
        let j = HashJoin::new(customers(), empty(), vec![parse_expression("c_id").unwrap()], vec![parse_expression("x").unwrap()]);
        assert!(collect(Box::new(j)).unwrap().1.is_empty());
    }

    #[test]
    fn nested_loop_cross_join() {
        let j = NestedLoopJoin::new(customers(), orders(), None).unwrap();
        let (_, rows) = collect(Box::new(j)).unwrap();
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn nested_loop_with_inequality() {
        let pred = parse_expression("c_id < o_cust").unwrap();
        let j = NestedLoopJoin::new(customers(), orders(), Some(pred)).unwrap();
        let (_, rows) = collect(Box::new(j)).unwrap();
        // c_id=10 < o_cust=20 is the only pair (NULLs never compare).
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1].as_str().unwrap(), "alice");
    }

    #[test]
    fn composite_join_keys() {
        let s1 = Schema::new(vec![Column::new("a1", DataType::Int), Column::new("b1", DataType::Text)]);
        let s2 = Schema::new(vec![Column::new("a2", DataType::Int), Column::new("b2", DataType::Text)]);
        let l = Box::new(Values::new(
            s1,
            vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Int(1), Value::Text("y".into())],
            ],
        ));
        let r = Box::new(Values::new(
            s2,
            vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Int(2), Value::Text("x".into())],
            ],
        ));
        let j = HashJoin::new(
            l,
            r,
            vec![parse_expression("a1").unwrap(), parse_expression("b1").unwrap()],
            vec![parse_expression("a2").unwrap(), parse_expression("b2").unwrap()],
        );
        let (_, rows) = collect(Box::new(j)).unwrap();
        assert_eq!(rows.len(), 1, "only (1, x) pairs");
    }
}
