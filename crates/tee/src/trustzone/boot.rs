//! Secure boot of the storage system.
//!
//! Models the paper's trusted-boot pipeline (§3.2, §4.1): the ROM verifies
//! the trusted-firmware image against the manufacturer key, the trusted
//! firmware verifies the trusted OS, and the trusted OS *measures* the
//! normal-world image (kernel + CSA runtime + storage engine) before
//! handing over control. The result is a per-boot certificate chain rooted
//! in the device certificate, carrying each stage's measurement and
//! firmware version; the trusted monitor later decides from the
//! normal-world measurement whether the system is eligible for offloading.

use crate::image::{Measurement, SoftwareImage};
use crate::trustzone::device::TrustZoneDevice;
use crate::{Result, TeeError};
use ironsafe_crypto::cert::{Certificate, CertificateChain, SubjectInfo};
use ironsafe_crypto::schnorr::{KeyPair, PublicKey, Signature};

/// A vendor-signed boot image.
#[derive(Clone, Debug)]
pub struct SignedImage {
    /// The image itself.
    pub image: SoftwareImage,
    /// Vendor signature over the image measurement.
    pub signature: Signature,
}

impl SignedImage {
    /// Sign `image` with the vendor (manufacturer) secret key.
    pub fn sign(
        _group: &ironsafe_crypto::group::Group,
        vendor: &ironsafe_crypto::schnorr::SecretKey,
        image: SoftwareImage,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Self {
        let sig = vendor.sign(image.measure().as_bytes(), rng);
        SignedImage { image, signature: sig }
    }

    /// Verify the vendor signature.
    pub fn verify(&self, group: &ironsafe_crypto::group::Group, vendor: &PublicKey) -> Result<()> {
        vendor
            .verify(group, self.image.measure().as_bytes(), &self.signature)
            .map_err(|_| TeeError::BootFailed("image signature invalid"))
    }
}

/// The set of images loaded at boot.
#[derive(Clone, Debug)]
pub struct BootImages {
    /// ARM Trusted Firmware (BL31-class).
    pub trusted_firmware: SignedImage,
    /// The trusted OS (OP-TEE-class) running in the secure world.
    pub trusted_os: SignedImage,
    /// The normal-world image: kernel, CSA runtime and storage engine.
    /// Measured (not signature-gated) — matching the paper, where an
    /// unexpected normal world boots but is deemed ineligible by the
    /// monitor.
    pub normal_world: SoftwareImage,
}

/// The secure-boot procedure.
pub struct SecureBoot;

impl SecureBoot {
    /// Boot `device` with `images`, verifying signatures stage by stage and
    /// producing the attestation state.
    pub fn boot(
        device: &TrustZoneDevice,
        vendor_key: &PublicKey,
        images: &BootImages,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<BootedSystem> {
        let group = device.group().clone();

        // Stage 1: ROM verifies the trusted firmware.
        images.trusted_firmware.verify(&group, vendor_key)?;
        // Stage 2: trusted firmware verifies the trusted OS.
        images.trusted_os.verify(&group, vendor_key)?;
        // Stage 3: trusted OS measures the normal world (no gate).
        let nw_measurement = images.normal_world.measure();

        // Build the boot certificate chain below the manufacturer-issued
        // device certificate. Each stage gets a per-boot key certified by
        // the previous stage's key; the leaf is the attestation TA key.
        let device_keys = device.attestation_keys().clone();
        let tf_keys = KeyPair::derive(&group, device.derive_huk_key(b"boot-tf").as_slice(), b"tf");
        let tos_keys = KeyPair::derive(&group, device.derive_huk_key(b"boot-tos").as_slice(), b"tos");

        let mut chain = CertificateChain::new();
        chain.push(device.device_cert.clone());
        chain.push(Certificate::issue(
            &group,
            &device_keys.secret,
            SubjectInfo {
                name: images.trusted_firmware.image.name.clone(),
                role: "trusted-firmware".to_string(),
                fw_version: images.trusted_firmware.image.version,
                measurement: images.trusted_firmware.image.measure().as_bytes().to_vec(),
            },
            tf_keys.public.clone(),
            rng,
        ));
        chain.push(Certificate::issue(
            &group,
            &tf_keys.secret,
            SubjectInfo {
                name: images.trusted_os.image.name.clone(),
                role: "trusted-os".to_string(),
                fw_version: images.trusted_os.image.version,
                measurement: images.trusted_os.image.measure().as_bytes().to_vec(),
            },
            tos_keys.public.clone(),
            rng,
        ));
        chain.push(Certificate::issue(
            &group,
            &tos_keys.secret,
            SubjectInfo {
                name: images.normal_world.name.clone(),
                role: "normal-world".to_string(),
                fw_version: images.normal_world.version,
                measurement: nw_measurement.as_bytes().to_vec(),
            },
            // The leaf key is the attestation TA's signing key for this boot.
            tos_keys.public.clone(),
            rng,
        ));

        Ok(BootedSystem {
            chain,
            nw_measurement,
            nw_version: images.normal_world.version,
            attestation_signing: tos_keys,
        })
    }
}

/// A successfully booted storage system, ready to attest.
pub struct BootedSystem {
    /// Certificate chain: device cert → TF → trusted OS → normal world.
    pub chain: CertificateChain,
    /// Normal-world measurement recorded at boot.
    pub nw_measurement: Measurement,
    /// Normal-world firmware version.
    pub nw_version: u32,
    /// The per-boot signing key the attestation TA uses (leaf of the chain).
    pub attestation_signing: KeyPair,
}

impl std::fmt::Debug for BootedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BootedSystem(nw v{}, {:?})", self.nw_version, self.nw_measurement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trustzone::device::Manufacturer;
    use ironsafe_crypto::group::Group;
    use rand::SeedableRng;

    fn setup() -> (Group, Manufacturer, TrustZoneDevice, BootImages, rand::rngs::StdRng) {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dev = mfr.make_device("storage-0", 8, &mut rng);
        let vendor = ironsafe_crypto::schnorr::KeyPair::derive(&group, b"acme", b"tz-manufacturer-root");
        let images = BootImages {
            trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut rng),
            trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"optee".to_vec()), &mut rng),
            normal_world: SoftwareImage::new("nw", 5, b"kernel+engine".to_vec()),
        };
        (group, mfr, dev, images, rng)
    }

    #[test]
    fn clean_boot_produces_verifiable_chain() {
        let (group, mfr, dev, images, mut rng) = setup();
        let booted = SecureBoot::boot(&dev, &mfr.root_public(), &images, &mut rng).unwrap();
        let leaf = booted.chain.verify(&group, &mfr.root_public()).unwrap();
        assert_eq!(leaf.subject.role, "normal-world");
        assert_eq!(leaf.subject.measurement, booted.nw_measurement.as_bytes().to_vec());
        assert_eq!(booted.chain.find_role("trusted-os").unwrap().subject.fw_version, 34);
    }

    #[test]
    fn tampered_trusted_firmware_refused() {
        let (_, mfr, dev, mut images, mut rng) = setup();
        images.trusted_firmware.image.code = b"rootkit".to_vec();
        assert_eq!(
            SecureBoot::boot(&dev, &mfr.root_public(), &images, &mut rng).unwrap_err(),
            TeeError::BootFailed("image signature invalid")
        );
    }

    #[test]
    fn tampered_trusted_os_refused() {
        let (_, mfr, dev, mut images, mut rng) = setup();
        images.trusted_os.image.version = 35; // version bump breaks signature
        assert!(SecureBoot::boot(&dev, &mfr.root_public(), &images, &mut rng).is_err());
    }

    #[test]
    fn tampered_normal_world_boots_but_measurement_changes() {
        let (_, mfr, dev, mut images, mut rng) = setup();
        let clean = SecureBoot::boot(&dev, &mfr.root_public(), &images, &mut rng).unwrap();
        images.normal_world.code = b"evil engine".to_vec();
        let dirty = SecureBoot::boot(&dev, &mfr.root_public(), &images, &mut rng).unwrap();
        assert_ne!(clean.nw_measurement, dirty.nw_measurement);
    }

    #[test]
    fn chain_from_unknown_device_rejected_by_verifier() {
        let (group, mfr, _, images, mut rng) = setup();
        let evil_mfr = Manufacturer::from_seed(&group, b"mallory");
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let evil_dev = evil_mfr.make_device("fake-storage", 8, &mut rng2);
        let evil_vendor = ironsafe_crypto::schnorr::KeyPair::derive(&group, b"mallory", b"tz-manufacturer-root");
        let evil_images = BootImages {
            trusted_firmware: SignedImage::sign(&group, &evil_vendor.secret, images.trusted_firmware.image.clone(), &mut rng),
            trusted_os: SignedImage::sign(&group, &evil_vendor.secret, images.trusted_os.image.clone(), &mut rng),
            normal_world: images.normal_world.clone(),
        };
        let booted = SecureBoot::boot(&evil_dev, &evil_mfr.root_public(), &evil_images, &mut rng).unwrap();
        // Verifier pins the genuine manufacturer: evil chain fails.
        assert!(booted.chain.verify(&group, &mfr.root_public()).is_err());
    }
}
