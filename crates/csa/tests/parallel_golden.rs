//! Golden parity: parallel execution must be invisible in every
//! simulated observable.
//!
//! For each Table 2 configuration, running the same queries at DOP 1 and
//! DOP 4 must produce bit-identical rows, bit-identical simulated
//! [`CostBreakdown`]s, and field-wise identical [`PagerStats`] deltas.
//! Parallelism buys wall-clock time only.

use ironsafe_csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe_storage::pager::PagerStats;
use ironsafe_tpch::queries::query;

fn stats_delta(before: PagerStats, after: PagerStats) -> PagerStats {
    PagerStats {
        page_reads: after.page_reads - before.page_reads,
        page_writes: after.page_writes - before.page_writes,
        decrypts: after.decrypts - before.decrypts,
        encrypts: after.encrypts - before.encrypts,
        merkle_nodes: after.merkle_nodes - before.merkle_nodes,
        rpmb_ops: after.rpmb_ops - before.rpmb_ops,
    }
}

#[test]
fn dop4_matches_dop1_for_all_configs() {
    let data = ironsafe_tpch::generate(0.002, 42);
    for config in SystemConfig::all() {
        for qid in [1u8, 6] {
            let q = query(qid).unwrap();

            let mut serial = CsaSystem::build(config, &data, CostParams::default()).unwrap();
            let before = serial.storage_db().pager_stats();
            let serial_report = serial.run_query(&q).unwrap();
            let serial_delta = stats_delta(before, serial.storage_db().pager_stats());

            let mut parallel = CsaSystem::build(config, &data, CostParams::default()).unwrap();
            parallel.set_dop(4);
            let before = parallel.storage_db().pager_stats();
            let parallel_report = parallel.run_query(&q).unwrap();
            let parallel_delta = stats_delta(before, parallel.storage_db().pager_stats());

            let tag = format!("{} q{qid}", config.abbrev());
            assert_eq!(
                parallel_report.result, serial_report.result,
                "{tag}: rows must be bit-identical"
            );
            assert_eq!(
                parallel_report.breakdown, serial_report.breakdown,
                "{tag}: simulated cost breakdown must be bit-identical"
            );
            assert_eq!(parallel_delta, serial_delta, "{tag}: pager-stats delta must be identical");
            assert_eq!(
                parallel_report.pages_read_storage, serial_report.pages_read_storage,
                "{tag}: pages read"
            );
            assert_eq!(
                parallel_report.bytes_shipped, serial_report.bytes_shipped,
                "{tag}: bytes shipped"
            );
        }
    }
}

#[test]
fn morsel_counters_tick_only_under_parallel_runs() {
    let data = ironsafe_tpch::generate(0.002, 42);
    let q = query(6).unwrap();

    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default()).unwrap();
    sys.run_query(&q).unwrap();
    assert_eq!(sys.exec_options().metrics.rows.get(), 0, "serial runs bypass the morsel pool");

    sys.set_dop(4);
    sys.run_query(&q).unwrap();
    let m = &sys.exec_options().metrics;
    assert!(m.scans.get() > 0, "parallel run dispatched no scans");
    assert!(m.morsels.get() > 0, "parallel run claimed no morsels");
    assert!(m.rows.get() > 0, "parallel run decoded no rows");
}
