//! The `paperbench profile` harness: end-to-end `EXPLAIN ANALYZE`
//! profiles for Q1/Q6 across every Table 2 configuration, exported as
//! the `BENCH_6.json` snapshot and byte-compared against the committed
//! baseline as a deterministic regression gate.
//!
//! Every number in the snapshot is derived from the simulated cost
//! model and the deterministic pager/TEE counters — never wall-clock —
//! so the same toolchain, scale factor and seed always reproduce the
//! file byte for byte. A counter that drifts (an extra page read, a
//! lost MAC verification, a perturbed cost term) fails the gate before
//! it reaches `main`.

use crate::figures::SEED;
use ironsafe_csa::{CostParams, CsaSystem, QueryProfile, SystemConfig};
use ironsafe_tpch::generate;

/// Default scale factor for the profile gate: small enough that the
/// whole sweep (10 profiled runs) finishes in seconds.
pub const PROFILE_SF: f64 = 0.002;

/// Profile each query id under each configuration, on a fresh system
/// per configuration (queries share the system, so Merkle-cache warm-up
/// order is part of the pinned baseline).
pub fn profile_matrix(sf: f64, configs: &[SystemConfig], query_ids: &[u8]) -> Vec<QueryProfile> {
    let data = generate(sf, SEED);
    let mut out = Vec::new();
    for &config in configs {
        let mut sys =
            CsaSystem::build(config, &data, CostParams::default()).expect("system builds");
        for &id in query_ids {
            let q = ironsafe_tpch::queries::query(id).expect("known query");
            let (_, profile) = sys
                .profile_query(&q)
                .unwrap_or_else(|e| panic!("{} Q{id}: {e}", config.abbrev()));
            out.push(profile);
        }
    }
    out
}

/// Serialize a profile sweep as the `BENCH_6.json` snapshot: a
/// deterministic envelope around each profile's own stable JSON.
pub fn profiles_json(sf: f64, profiles: &[QueryProfile]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"sf\": {sf},\n  \"seed\": {SEED},\n  \"profiles\": [\n"));
    for (i, p) in profiles.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&p.to_json());
        s.push_str(if i + 1 == profiles.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Regression gate: compare a freshly generated snapshot against the
/// committed baseline, byte for byte. Returns a human-readable report
/// of the first few diverging lines (empty = pass).
pub fn diff_snapshots(baseline: &str, current: &str) -> Vec<String> {
    if baseline == current {
        return Vec::new();
    }
    let mut report = Vec::new();
    let base_lines: Vec<&str> = baseline.lines().collect();
    let cur_lines: Vec<&str> = current.lines().collect();
    if base_lines.len() != cur_lines.len() {
        report.push(format!(
            "line count differs: baseline {} vs current {}",
            base_lines.len(),
            cur_lines.len()
        ));
    }
    for (n, (b, c)) in base_lines.iter().zip(&cur_lines).enumerate() {
        if b != c {
            report.push(format!("line {}:\n  baseline: {b}\n  current:  {c}", n + 1));
            if report.len() >= 5 {
                report.push("... (further differences elided)".to_string());
                break;
            }
        }
    }
    if report.is_empty() {
        // Same shared prefix but different trailing bytes/newlines.
        report.push("files differ only in trailing content".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn profile_snapshot_is_deterministic_valid_json() {
        let configs = [SystemConfig::IronSafe];
        let a = profiles_json(PROFILE_SF, &profile_matrix(PROFILE_SF, &configs, &[6]));
        let b = profiles_json(PROFILE_SF, &profile_matrix(PROFILE_SF, &configs, &[6]));
        assert_eq!(a, b, "snapshot must be byte-deterministic");
        assert!(looks_like_valid_json(&a), "{a}");
        assert!(a.contains("\"config\":\"scs\""));
        assert!(diff_snapshots(&a, &b).is_empty());
    }

    #[test]
    fn diff_reports_first_divergence() {
        let base = "{\n  \"x\": 1,\n  \"y\": 2\n}\n";
        let cur = "{\n  \"x\": 1,\n  \"y\": 3\n}\n";
        let report = diff_snapshots(base, cur);
        assert!(!report.is_empty());
        assert!(report[0].contains("line 3"), "{report:?}");
        assert!(diff_snapshots(base, base).is_empty());
    }
}
