//! Adaptive, telemetry-driven offload planning.
//!
//! The static partitioner ([`crate::partition`]) always pushes filters
//! down; the paper's own Figures 6 and 9 show the best host/storage
//! split flips with selectivity and enclave memory pressure. This
//! module makes placement a *cost-based* decision evaluated against
//! observed statistics:
//!
//! * **Estimates** ([`AdaptiveState`]) — per-(table, predicate)
//!   selectivity, wire bytes per shipped row and host temp-table
//!   density, seeded from catalog-shape priors
//!   ([`prior_selectivity`]) and refined by an EWMA feedback loop fed
//!   from [`QueryProfile`](crate::QueryProfile) row counts after every
//!   split run.
//! * **Cost rule** ([`offload_cost_ns`] / [`ship_pages_cost_ns`] /
//!   [`choose`]) — pure functions mirroring, term by term, exactly the
//!   charges [`CsaSystem`](crate::CsaSystem)'s split runner attributes
//!   to each placement, so with exact estimates the model's argmin *is*
//!   the cheaper real execution.
//! * **Re-planning** ([`ReplanPolicy`] / [`divergence_trip`]) — the
//!   morsel driver records per-morsel `(rows_in, rows_out)` through a
//!   [`ScanWatch`](ironsafe_sql::exec::ScanWatch); when cumulative
//!   observed selectivity diverges from the estimate past a hysteresis
//!   band, the remaining morsels are re-placed and the switch is
//!   charged honestly (`plan/replan` span, `plan.replan` counter).
//!
//! Everything here is deterministic and side-effect-free: placement
//! changes cost, never answers.

use crate::cost::CostParams;
use crate::partition::OffloadDecision;
use ironsafe_obs::{Counter, Registry};
use ironsafe_sql::ast::{BinOp, Expr, UnaryOp};
use std::collections::BTreeMap;

/// Bytes [`crate::net::SecureChannel::seal_rows`] adds per sealed
/// record: an 8-byte sequence number plus a 32-byte MAC.
pub const RECORD_OVERHEAD_BYTES: u64 = 40;

/// Rows per sealed channel record (`seal_rows` chunk size).
pub const ROWS_PER_RECORD: u64 = 4096;

/// Shape-based selectivity prior for a pushed-down predicate — the
/// "catalog statistics" seed used before any observation exists.
/// Classic System-R style constants: equality is selective, ranges keep
/// a third, negations keep the complement.
pub fn prior_selectivity(pred: &Expr) -> f64 {
    match pred {
        Expr::Binary { op, left, right } => match op {
            BinOp::And => prior_selectivity(left) * prior_selectivity(right),
            BinOp::Or => {
                let (a, b) = (prior_selectivity(left), prior_selectivity(right));
                (a + b - a * b).min(1.0)
            }
            BinOp::Eq => 0.1,
            BinOp::NotEq => 0.9,
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 1.0 / 3.0,
            // Arithmetic in boolean position: no information.
            _ => 0.5,
        },
        Expr::Between { negated, .. } => {
            // Two range bounds.
            let base = 1.0 / 9.0;
            if *negated { 1.0 - base } else { base }
        }
        Expr::Like { negated, .. } => {
            if *negated { 0.9 } else { 0.25 }
        }
        Expr::IsNull { negated, .. } => {
            if *negated { 0.95 } else { 0.05 }
        }
        Expr::InList { list, negated, .. } => {
            let base = (0.1 * list.len() as f64).min(1.0);
            if *negated { 1.0 - base } else { base }
        }
        Expr::Unary { op: UnaryOp::Not, expr } => 1.0 - prior_selectivity(expr),
        _ => 0.5,
    }
}

/// One refined statistic set for a (table, predicate) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Fraction of the table's rows the pushed predicate keeps.
    pub selectivity: f64,
    /// Serialized bytes per shipped row on the secure channel
    /// (pre-record-overhead).
    pub row_wire_bytes: f64,
    /// Host temp-table heap density (rows per 4 KiB page) for the
    /// fragment's projection.
    pub temp_rows_per_page: f64,
    /// Observations folded into this estimate.
    pub observations: u64,
}

/// EWMA-refined estimate store keyed by `"{table}|{predicate_sql}"`,
/// with a `"{table}|*"` fallback for table-level pins.
///
/// The first observation for a key *sets* the estimate exactly; later
/// observations blend with weight `alpha` — so a primed second run of
/// the same query plans against exact statistics.
#[derive(Debug, Clone)]
pub struct AdaptiveState {
    estimates: BTreeMap<String, Estimate>,
    /// EWMA blend weight for observations after the first.
    pub alpha: f64,
}

impl Default for AdaptiveState {
    fn default() -> Self {
        AdaptiveState { estimates: BTreeMap::new(), alpha: 0.5 }
    }
}

fn key_of(table: &str, predicate_sql: Option<&str>) -> String {
    match predicate_sql {
        Some(p) => format!("{table}|{p}"),
        None => format!("{table}|*"),
    }
}

impl AdaptiveState {
    /// Empty store with the default blend weight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the refined estimate for `table` under `predicate_sql`,
    /// falling back to the table-level (`*`) entry.
    pub fn lookup(&self, table: &str, predicate_sql: Option<&str>) -> Option<&Estimate> {
        if let Some(p) = predicate_sql {
            if let Some(e) = self.estimates.get(&key_of(table, Some(p))) {
                return Some(e);
            }
        }
        self.estimates.get(&key_of(table, None))
    }

    /// Fold one observed fragment outcome into the store. Returns `true`
    /// when an existing estimate was refined (vs. freshly seeded).
    pub fn observe(
        &mut self,
        table: &str,
        predicate_sql: Option<&str>,
        selectivity: f64,
        row_wire_bytes: f64,
        temp_rows_per_page: f64,
    ) -> bool {
        let alpha = self.alpha;
        let entry = self.estimates.entry(key_of(table, predicate_sql));
        match entry {
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.selectivity = alpha * selectivity + (1.0 - alpha) * e.selectivity;
                e.row_wire_bytes = alpha * row_wire_bytes + (1.0 - alpha) * e.row_wire_bytes;
                e.temp_rows_per_page =
                    alpha * temp_rows_per_page + (1.0 - alpha) * e.temp_rows_per_page;
                e.observations += 1;
                true
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(Estimate {
                    selectivity,
                    row_wire_bytes,
                    temp_rows_per_page,
                    observations: 1,
                });
                false
            }
        }
    }

    /// Pin a table-level estimate (used by benches and the parity guard
    /// to plan against known-wrong or known-exact statistics).
    pub fn pin_table(&mut self, table: &str, estimate: Estimate) {
        self.estimates.insert(key_of(table, None), estimate);
    }

    /// Number of keys in the store.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Is the store empty (no observations or pins yet)?
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

/// Snapshot of the host enclave's EPC at planning time, sampled from
/// [`ironsafe_tee::sgx::EpcSimulator`].
#[derive(Debug, Clone, Copy)]
pub struct EpcView {
    /// Pages currently resident (background working set + earlier
    /// stages' temp pages).
    pub occupied_pages: u64,
    /// Total EPC capacity in pages.
    pub capacity_pages: u64,
}

impl EpcView {
    /// A view of an empty EPC with `capacity_bytes` of enclave memory.
    pub fn empty(capacity_bytes: usize) -> EpcView {
        EpcView {
            occupied_pages: 0,
            capacity_pages: (capacity_bytes / 4096).max(1) as u64,
        }
    }
}

/// Everything the cost rule needs to price one fragment's placement.
#[derive(Debug, Clone, Copy)]
pub struct FragmentStats {
    /// Rows in the fragment's base table.
    pub table_rows: u64,
    /// Heap pages of the base table.
    pub table_pages: u64,
    /// Estimated selectivity of the pushed predicate (1.0 if none).
    pub selectivity: f64,
    /// Serialized bytes per shipped row (pre-record-overhead).
    pub row_wire_bytes: f64,
    /// Host temp-table density (rows per page) for the projection.
    pub temp_rows_per_page: f64,
    /// Host-side operator complexity the shipped rows flow through.
    pub host_ops: u64,
    /// Does the configuration pay enclave costs (scs)?
    pub secure: bool,
}

fn temp_pages(rows: u64, rows_per_page: f64) -> u64 {
    if rows == 0 {
        0
    } else {
        (rows as f64 / rows_per_page.max(1.0)).ceil() as u64
    }
}

/// EPC cost of landing `temp` fresh pages in the host enclave: each
/// cold-faults once, and if they push the resident set past capacity
/// the background working set is cyclically evicted and re-faulted in
/// full — the LRU paging cliff of Figure 9a.
pub fn epc_cost_ns(temp: u64, epc: &EpcView, p: &CostParams) -> f64 {
    let cold = temp as f64 * p.epc_fault_ns as f64;
    let thrash = if epc.occupied_pages + temp > epc.capacity_pages {
        epc.occupied_pages as f64 * p.epc_fault_ns as f64
    } else {
        0.0
    };
    cold + thrash
}

/// Simulated cost of *offloading* the fragment (push filter +
/// projection down; serialize and seal the surviving rows through the
/// secure channel). Only terms that differ between the two placements
/// are included — shared terms (fragment scan, device I/O, fragment
/// setup) cancel in the comparison.
pub fn offload_cost_ns(f: &FragmentStats, epc: &EpcView, p: &CostParams) -> f64 {
    let rows = (f.table_rows as f64 * f.selectivity.clamp(0.0, 1.0)).round() as u64;
    let records = rows.div_ceil(ROWS_PER_RECORD);
    let wire_bytes = rows as f64 * f.row_wire_bytes + (records * RECORD_OVERHEAD_BYTES) as f64;
    let mut ns = rows as f64 * p.serialize_row_ns as f64 * p.storage_cpu_factor
        / p.storage_parallel();
    ns += p.net_ns(wire_bytes as u64, records.max(1));
    ns += p.host_compute_ns(rows, f.host_ops.max(1));
    ns += p.storage_compute_ns(f.table_rows, 1) * (p.storage_mem_penalty(wire_bytes as u64) - 1.0);
    if f.secure {
        ns += (records * 2 * p.enclave_transition_ns) as f64;
        ns += epc_cost_ns(temp_pages(rows, f.temp_rows_per_page), epc, p);
        ns += wire_bytes * 0.05;
    }
    ns
}

/// Simulated cost of *shipping raw pages* (withdraw the pushdown; the
/// host filters every row itself). Same term selection as
/// [`offload_cost_ns`].
pub fn ship_pages_cost_ns(f: &FragmentStats, epc: &EpcView, p: &CostParams) -> f64 {
    let bytes = f.table_pages * 4096;
    let mut ns = p.net_ns(bytes, 1);
    ns += p.host_compute_ns(f.table_rows, f.host_ops.max(1));
    ns += p.storage_compute_ns(f.table_rows, 1) * (p.storage_mem_penalty(bytes) - 1.0);
    if f.secure {
        ns += epc_cost_ns(temp_pages(f.table_rows, f.temp_rows_per_page), epc, p);
        ns += bytes as f64 * 0.05;
    }
    ns
}

/// The decision rule: evaluate both placements and take the cheaper
/// one (ties offload, matching the static partitioner's preference).
/// Returns the decision with both candidate costs, so callers can log
/// the margin.
pub fn choose(f: &FragmentStats, epc: &EpcView, p: &CostParams) -> (OffloadDecision, f64, f64) {
    let off = offload_cost_ns(f, epc, p);
    let ship = ship_pages_cost_ns(f, epc, p);
    let decision =
        if off <= ship { OffloadDecision::Offload } else { OffloadDecision::ShipPages };
    (decision, off, ship)
}

/// Mid-flight re-planning policy: how far observed selectivity may
/// drift from the estimate before the remaining morsels are re-placed.
#[derive(Debug, Clone, Copy)]
pub struct ReplanPolicy {
    /// Absolute divergence band; inside it, never re-plan (hysteresis —
    /// an estimate oscillating within the band causes zero flapping).
    pub hysteresis: f64,
    /// Minimum rows observed before the divergence test is applied
    /// (early morsels are too noisy to act on).
    pub min_rows: u64,
    /// Morsels between divergence checkpoints.
    pub check_every: usize,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy { hysteresis: 0.2, min_rows: 256, check_every: 4 }
    }
}

/// Deterministic divergence detector over per-morsel `(rows_in,
/// rows_out)` slots (from a [`ScanWatch`](ironsafe_sql::exec::ScanWatch),
/// which records by morsel index — the result is identical at any DOP).
///
/// Walks the morsels in order, and at each checkpoint compares the
/// *cumulative* observed selectivity against `estimated`. Returns the
/// first `(switch_morsel, observed_selectivity)` where divergence
/// exceeds the hysteresis band — the re-plan point: morsels
/// `[0, switch_morsel)` ran under the original placement, the rest are
/// re-placed. Latches once; returns `None` when the estimate holds.
pub fn divergence_trip(
    slots: &[(u64, u64)],
    estimated: f64,
    policy: &ReplanPolicy,
) -> Option<(usize, f64)> {
    let mut cum_in = 0u64;
    let mut cum_out = 0u64;
    for (i, &(rows_in, rows_out)) in slots.iter().enumerate() {
        cum_in += rows_in;
        cum_out += rows_out;
        let at_checkpoint = (i + 1) % policy.check_every.max(1) == 0;
        if !at_checkpoint || cum_in < policy.min_rows {
            continue;
        }
        let observed = cum_out as f64 / cum_in as f64;
        if (observed - estimated).abs() > policy.hysteresis {
            // Never "re-plan" after the last morsel — there is nothing
            // left to re-place.
            if i + 1 < slots.len() {
                return Some((i + 1, observed));
            }
            return None;
        }
    }
    None
}

/// Live `plan.*` counters for the adaptive planner.
#[derive(Debug, Clone, Default)]
pub struct PlanMetrics {
    /// Fragments the cost rule offloaded (`plan.decide.offload`).
    pub decide_offload: Counter,
    /// Fragments the cost rule kept on the host (`plan.decide.ship_pages`).
    pub decide_ship_pages: Counter,
    /// EWMA estimates refined by observed row counts
    /// (`plan.estimate.refined`).
    pub estimate_refined: Counter,
    /// Mid-flight re-plans committed (`plan.replan`).
    pub replans: Counter,
}

impl PlanMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach every cell to `registry` under its `plan.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("plan.decide.offload", &self.decide_offload);
        registry.register_counter("plan.decide.ship_pages", &self.decide_ship_pages);
        registry.register_counter("plan.estimate.refined", &self.estimate_refined);
        registry.register_counter("plan.replan", &self.replans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_sql::parser::parse_expression;

    fn stats(selectivity: f64) -> FragmentStats {
        FragmentStats {
            table_rows: 12_000,
            table_pages: 440,
            selectivity,
            row_wire_bytes: 24.0,
            temp_rows_per_page: 70.0,
            host_ops: 2,
            secure: true,
        }
    }

    #[test]
    fn priors_follow_predicate_shape() {
        let sel = |s: &str| prior_selectivity(&parse_expression(s).unwrap());
        assert!(sel("a = 1") < sel("a < 1"));
        assert!(sel("a < 1") < sel("a <> 1"));
        assert!(sel("a < 1 AND b < 1") < sel("a < 1"));
        assert!(sel("a < 1 OR b < 1") > sel("a < 1"));
        assert!(sel("a NOT LIKE '%x%'") > 0.8, "weak NOT LIKE keeps most rows");
        assert!(sel("a BETWEEN 1 AND 2") < sel("a < 1"));
        // Q6's conjunct stack is extremely selective a priori.
        let q6 = sel(
            "l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        );
        assert!(q6 < 0.02, "q6 prior {q6}");
    }

    #[test]
    fn ewma_first_observation_sets_exactly_then_blends() {
        let mut s = AdaptiveState::new();
        assert!(!s.observe("lineitem", Some("l_quantity < 24"), 0.4, 30.0, 64.0));
        let e = s.lookup("lineitem", Some("l_quantity < 24")).unwrap();
        assert_eq!(e.selectivity, 0.4);
        assert_eq!(e.observations, 1);
        assert!(s.observe("lineitem", Some("l_quantity < 24"), 0.8, 30.0, 64.0));
        let e = s.lookup("lineitem", Some("l_quantity < 24")).unwrap();
        assert!((e.selectivity - 0.6).abs() < 1e-12, "alpha=0.5 blend");
        assert_eq!(e.observations, 2);
    }

    #[test]
    fn table_pin_is_the_fallback() {
        let mut s = AdaptiveState::new();
        s.pin_table(
            "lineitem",
            Estimate {
                selectivity: 0.01,
                row_wire_bytes: 24.0,
                temp_rows_per_page: 70.0,
                observations: 100,
            },
        );
        assert_eq!(s.lookup("lineitem", Some("anything")).unwrap().selectivity, 0.01);
        assert!(s.lookup("orders", None).is_none());
    }

    #[test]
    fn selective_fragments_offload_weak_ones_ship() {
        let p = CostParams::default();
        let epc = EpcView::empty(p.epc_limit_bytes);
        let (d, off, ship) = choose(&stats(0.01), &epc, &p);
        assert_eq!(d, OffloadDecision::Offload);
        assert!(off < ship);
        let (d, off, ship) = choose(&stats(1.0), &epc, &p);
        assert_eq!(d, OffloadDecision::ShipPages);
        assert!(ship < off, "serialize + per-row wire beats page wire at sel=1: {off} vs {ship}");
    }

    #[test]
    fn epc_pressure_flips_the_decision_toward_offload() {
        let p = CostParams::default();
        // At sel=1.0 with a calm EPC, shipping raw pages wins…
        let calm = EpcView::empty(p.epc_limit_bytes);
        let f = stats(0.9);
        let (d, ..) = choose(&f, &calm, &p);
        assert_eq!(d, OffloadDecision::ShipPages);
        // …but near-full occupancy makes the larger raw working set
        // cross the paging cliff the filtered one avoids.
        let cap = calm.capacity_pages;
        let pressured = EpcView {
            occupied_pages: cap - temp_pages(f.table_rows, f.temp_rows_per_page) + 10,
            capacity_pages: cap,
        };
        let (d, off, ship) = choose(&f, &pressured, &p);
        assert_eq!(d, OffloadDecision::Offload, "off {off} ship {ship}");
    }

    #[test]
    fn divergence_trips_once_past_the_band_and_never_inside_it() {
        let policy = ReplanPolicy { hysteresis: 0.2, min_rows: 100, check_every: 2 };
        // Observed ≈ estimate: no trip.
        let calm: Vec<(u64, u64)> = (0..10).map(|_| (100, 50)).collect();
        assert_eq!(divergence_trip(&calm, 0.5, &policy), None);
        // Observed selectivity 1.0 against estimate 0.1: trips at the
        // first eligible checkpoint (morsel index 1 → switch at 2).
        let hot: Vec<(u64, u64)> = (0..10).map(|_| (100, 100)).collect();
        assert_eq!(divergence_trip(&hot, 0.1, &policy), Some((2, 1.0)));
    }

    #[test]
    fn divergence_never_trips_after_the_last_morsel() {
        let policy = ReplanPolicy { hysteresis: 0.1, min_rows: 10_000, check_every: 2 };
        // min_rows so high the first eligible checkpoint is the final
        // morsel — nothing left to re-place, so no trip.
        let slots: Vec<(u64, u64)> = (0..6).map(|_| (2000, 2000)).collect();
        assert_eq!(divergence_trip(&slots, 0.0, &policy), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn any_interconnect() -> impl Strategy<Value = crate::cost::Interconnect> {
            prop_oneof![
                Just(crate::cost::Interconnect::NvmePcie),
                Just(crate::cost::Interconnect::NvmeOf),
                Just(crate::cost::Interconnect::TcpTls),
            ]
        }

        proptest! {
            #[test]
            fn adaptive_choice_never_worse_than_both_static_policies(
                selectivity in 0.0f64..=1.0,
                occupied in 0u64..30_000,
                rows in 1u64..200_000,
                secure in any::<bool>(),
                interconnect in any_interconnect(),
            ) {
                // The adaptive rule picks min(offload, ship): for ANY
                // (selectivity, EPC occupancy, interconnect) point its
                // cost is ≤ both static policies' costs.
                let p = CostParams::default().with_interconnect(interconnect);
                let epc = EpcView { occupied_pages: occupied, capacity_pages: 24_576 };
                let f = FragmentStats {
                    table_rows: rows,
                    table_pages: (rows / 27).max(1),
                    selectivity,
                    row_wire_bytes: 24.0,
                    temp_rows_per_page: 70.0,
                    host_ops: 2,
                    secure,
                };
                let (_, off, ship) = choose(&f, &epc, &p);
                let chosen = off.min(ship);
                prop_assert!(chosen <= off && chosen <= ship);
                prop_assert!(chosen.is_finite() && chosen >= 0.0);
            }

            #[test]
            fn offload_cost_monotone_in_selectivity(
                lo in 0.0f64..=1.0,
                hi in 0.0f64..=1.0,
                occupied in 0u64..30_000,
            ) {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let p = CostParams::default();
                let epc = EpcView { occupied_pages: occupied, capacity_pages: 24_576 };
                let mk = |s| FragmentStats {
                    table_rows: 50_000,
                    table_pages: 1_800,
                    selectivity: s,
                    row_wire_bytes: 24.0,
                    temp_rows_per_page: 70.0,
                    host_ops: 2,
                    secure: true,
                };
                prop_assert!(offload_cost_ns(&mk(lo), &epc, &p) <= offload_cost_ns(&mk(hi), &epc, &p));
                // Ship-pages cost ignores selectivity entirely.
                prop_assert_eq!(
                    ship_pages_cost_ns(&mk(lo), &epc, &p),
                    ship_pages_cost_ns(&mk(hi), &epc, &p)
                );
            }

            #[test]
            fn no_flapping_inside_the_hysteresis_band(
                estimate in 0.1f64..=0.9,
                wobble in 0.0f64..0.049,
                morsels in 4usize..40,
            ) {
                // Observed selectivity oscillates ±wobble around the
                // estimate, well inside the 0.2 band: never re-plans.
                let policy = ReplanPolicy::default();
                let slots: Vec<(u64, u64)> = (0..morsels)
                    .map(|i| {
                        let s = if i % 2 == 0 { estimate + wobble } else { estimate - wobble };
                        (1000, (1000.0 * s.clamp(0.0, 1.0)).round() as u64)
                    })
                    .collect();
                prop_assert_eq!(divergence_trip(&slots, estimate, &policy), None);
            }

            #[test]
            fn priors_are_probabilities(pick in 0usize..13) {
                const SHAPES: [&str; 13] = [
                    "a = 1", "a < 1", "a <> 1", "NOT a < 1",
                    "a BETWEEN 1 AND 2", "a NOT BETWEEN 1 AND 2",
                    "a LIKE '%x%'", "a NOT LIKE '%x%'",
                    "a IS NULL", "a IS NOT NULL",
                    "a IN (1, 2, 3)", "a NOT IN (1, 2)",
                    "a < 1 AND b = 2 OR c <> 3",
                ];
                let seed = SHAPES[pick];
                let e = parse_expression(seed).unwrap();
                let s = prior_selectivity(&e);
                prop_assert!((0.0..=1.0).contains(&s), "{seed}: {s}");
            }
        }
    }
}
