//! Morsel-path microbenches: page codec encrypt/decrypt, heap-page
//! decode (fresh per-row `Vec`s vs the reused scratch row), batched vs
//! single-page secure reads, and a Q1-style grouped-aggregation scan at
//! DOP 1/2/4 through the public `select_with` entry point.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ironsafe_crypto::group::Group;
use ironsafe_sql::ast::Statement;
use ironsafe_sql::exec::ExecOptions;
use ironsafe_sql::heap::{decode_page_rows, scan_page_rows, shared, HeapFile};
use ironsafe_sql::{Database, Row, Value};
use ironsafe_storage::codec::{PageCodec, PAGE_PAYLOAD};
use ironsafe_storage::pager::{Pager, PlainPager};
use ironsafe_storage::SecurePager;
use ironsafe_tee::trustzone::Manufacturer;
use ironsafe_tpch::queries::query;
use rand::SeedableRng;

const PAGES: u64 = 64;

fn bench_page_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("morsel_codec");
    g.throughput(Throughput::Bytes(PAGE_PAYLOAD as u64));
    let mut codec = PageCodec::from_db_key(&[7u8; 16]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let payload = vec![0xabu8; PAGE_PAYLOAD];
    let (block, _) = codec.encrypt_page(3, &payload, &mut rng).unwrap();
    let mut out = vec![0u8; PAGE_PAYLOAD];
    g.bench_function("encrypt_page", |b| {
        b.iter(|| codec.encrypt_page(3, &payload, &mut rng).unwrap())
    });
    g.bench_function("decrypt_page", |b| {
        b.iter(|| codec.decrypt_page(3, &block, &mut out).unwrap())
    });
    g.finish();
}

fn bench_heap_decode(c: &mut Criterion) {
    // One full heap page of mixed-type rows, decoded two ways: the
    // allocating row-vector API vs the scratch-row visitor the morsel
    // workers use.
    let pager = shared(PlainPager::new());
    let mut heap = HeapFile::new();
    heap.append_rows(
        &pager,
        (0..2000i64).map(|i| {
            vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.125),
                Value::Text(format!("row-{i:05}")),
                Value::Int(i % 7),
            ]
        }),
    )
    .unwrap();
    let payload_size = pager.lock().payload_size();
    let mut page = vec![0u8; payload_size];
    pager.lock().read_page(heap.pages[0], &mut page).unwrap();

    let mut g = c.benchmark_group("morsel_heap_decode");
    g.throughput(Throughput::Bytes(payload_size as u64));
    g.bench_function("decode_page_rows_alloc", |b| {
        b.iter(|| black_box(decode_page_rows(&page, 4).unwrap()))
    });
    let mut scratch: Row = Vec::with_capacity(4);
    g.bench_function("scan_page_rows_scratch", |b| {
        b.iter(|| {
            let mut n = 0usize;
            scan_page_rows(&page, 4, &mut scratch, |row| {
                n += row.len();
                Ok(())
            })
            .unwrap();
            black_box(n)
        })
    });
    g.finish();
}

fn bench_batched_secure_reads(c: &mut Criterion) {
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"bench");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let device = mfr.make_device("bench-dev", 8, &mut rng);
    let mut pager = SecurePager::create(device, 0).unwrap();
    let payload = vec![0xabu8; PAGE_PAYLOAD];
    for _ in 0..PAGES {
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload).unwrap();
    }
    pager.commit().unwrap();

    const BATCH: usize = 16;
    let ids: Vec<u64> = (0..BATCH as u64).collect();
    let mut buf = vec![0u8; BATCH * PAGE_PAYLOAD];
    let mut g = c.benchmark_group("morsel_secure_read");
    g.throughput(Throughput::Bytes((BATCH * PAGE_PAYLOAD) as u64));
    g.bench_function("single_page_loop", |b| {
        b.iter(|| {
            for (i, id) in ids.iter().enumerate() {
                pager
                    .read_page(*id, &mut buf[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD])
                    .unwrap();
            }
        })
    });
    g.bench_function("read_pages_batched", |b| {
        b.iter(|| pager.read_pages(&ids, &mut buf).unwrap())
    });
    g.finish();
}

fn bench_q1_scan_dop(c: &mut Criterion) {
    // End-to-end: TPC-H Q1 grouped aggregation through the planner. DOP 1
    // is the serial volcano plan; DOP 2/4 take the morsel path (worker
    // count additionally capped by the machine's available parallelism).
    let data = ironsafe_tpch::generate(0.002, 42);
    let mut db = Database::new(PlainPager::new());
    ironsafe_tpch::load_into(&mut db, &data).unwrap();
    let q1 = query(1).unwrap();
    let stmt = ironsafe_sql::parser::parse_statement(&q1.stages[0].sql).unwrap();
    let sel = match stmt {
        Statement::Select(s) => s,
        _ => unreachable!("Q1 is a SELECT"),
    };

    let mut g = c.benchmark_group("morsel_q1_scan");
    for dop in [1usize, 2, 4] {
        let opts = ExecOptions::with_dop(dop);
        g.bench_function(format!("dop{dop}"), |b| {
            b.iter(|| black_box(db.select_with(&sel, &opts).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_page_codec,
    bench_heap_decode,
    bench_batched_secure_reads,
    bench_q1_scan_dop
);
criterion_main!(benches);
