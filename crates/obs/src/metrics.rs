//! Metrics registry: named counters, gauges, and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics. Instrumented components create (or are handed)
//! handles once at construction and update them lock-free afterwards;
//! the registry mutex is touched only by `register_*`/`snapshot`.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New unregistered counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (used by components that expose `reset_stats`).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// New unregistered gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 65; // bucket i counts values with bit_length i (0 => value 0)

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed histogram of `u64` samples (e.g. Merkle path
/// lengths, span durations).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// New unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Frozen view of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `buckets[i]` counts samples whose bit length is `i` (bucket 0 is
    /// the value zero), i.e. bucket `i > 0` spans `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self` (bucket-wise and count/sum addition).
    ///
    /// Merging is plain `u64` addition per field, so it is commutative
    /// and associative: per-worker histograms merged in any order — or
    /// recorded into one shared histogram under any thread
    /// interleaving — produce bit-identical snapshots. Shorter bucket
    /// vectors are padded, so snapshots of differing lengths merge
    /// losslessly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics.
///
/// Clones share the same underlying registry. Names should follow
/// `subsystem.object.event` (see crate docs).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock();
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock();
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Attach an existing counter handle under `name`, so component-owned
    /// counters show up in snapshots. Panics if `name` is taken by a
    /// different cell.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut g = self.inner.lock();
        if let Some(existing) = g.counters.get(name) {
            assert!(
                existing.same_cell(counter),
                "metric name registered twice with different cells: {name}"
            );
            return;
        }
        g.counters.insert(name.to_string(), counter.clone());
    }

    /// Attach an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        self.inner.lock().gauges.insert(name.to_string(), gauge.clone());
    }

    /// Attach an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner
            .lock()
            .histograms
            .insert(name.to_string(), histogram.clone());
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Human-readable table of all metrics.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} count={} mean={:.1} p95<={}\n",
                    h.count,
                    h.mean(),
                    h.quantile_upper_bound(0.95),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_cell() {
        let r = Registry::new();
        let a = r.counter("storage.page.read");
        let b = r.counter("storage.page.read");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("storage.page.read"), Some(3));
    }

    #[test]
    fn register_existing_counter() {
        let owned = Counter::new();
        owned.add(7);
        let r = Registry::new();
        r.register_counter("tee.enclave.transition", &owned);
        assert_eq!(r.snapshot().counter("tee.enclave.transition"), Some(7));
        // Re-registering the same cell is fine.
        r.register_counter("tee.enclave.transition", &owned);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn register_conflicting_counter_panics() {
        let r = Registry::new();
        r.register_counter("x", &Counter::new());
        r.register_counter("x", &Counter::new());
    }

    #[test]
    fn gauge_and_histogram() {
        let r = Registry::new();
        let g = r.gauge("tee.epc.resident");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);

        let h = r.histogram("storage.merkle.path_len");
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1023);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // [1,2)
        assert_eq!(s.buckets[2], 2); // [2,4)
        assert!(s.quantile_upper_bound(0.5) <= 8);
        assert!(s.quantile_upper_bound(1.0) >= 1000);
    }

    #[test]
    fn snapshot_sorted_and_renders() {
        let r = Registry::new();
        r.counter("b.x.y").inc();
        r.counter("a.x.y").inc();
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.x.y");
        let table = s.render_table();
        assert!(table.contains("a.x.y"));
        assert!(table.contains("counters:"));
    }
}
