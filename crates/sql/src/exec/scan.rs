//! Sequential heap scan.

use crate::exec::Operator;
use crate::heap::{HeapFile, SharedPager};
use crate::schema::{Row, Schema};
use crate::Result;

/// Streams every row of a heap file, one page at a time.
pub struct SeqScan {
    schema: Schema,
    heap: HeapFile,
    pager: SharedPager,
    page_index: usize,
    buffer: std::vec::IntoIter<Row>,
    emitted: u64,
}

impl SeqScan {
    /// Scan `heap` (described by `schema`) through `pager`.
    pub fn new(schema: Schema, heap: HeapFile, pager: SharedPager) -> Self {
        SeqScan { schema, heap, pager, page_index: 0, buffer: Vec::new().into_iter(), emitted: 0 }
    }
}

impl Operator for SeqScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        format!("SeqScan ({} pages, {} rows)", self.heap.pages.len(), self.heap.row_count)
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.buffer.next() {
                self.emitted += 1;
                return Ok(Some(row));
            }
            if self.page_index >= self.heap.pages.len() {
                return Ok(None);
            }
            let rows = self.heap.read_page_rows(&self.pager, self.page_index, self.schema.len())?;
            self.page_index += 1;
            self.buffer = rows.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::collect;
    use crate::heap::shared;
    use crate::schema::Column;
    use crate::value::{DataType, Value};
    use ironsafe_storage::pager::PlainPager;

    #[test]
    fn scan_streams_all_pages() {
        let pager = shared(PlainPager::new());
        let mut heap = HeapFile::new();
        let schema = Schema::new(vec![Column::new("id", DataType::Int), Column::new("pad", DataType::Text)]);
        let rows: Vec<Row> = (0..300).map(|i| vec![Value::Int(i), Value::Text("p".repeat(100))]).collect();
        heap.append_rows(&pager, rows.clone()).unwrap();
        assert!(heap.page_count() > 1);

        let scan = Box::new(SeqScan::new(schema, heap, pager.clone()));
        let (_, got) = collect(scan).unwrap();
        assert_eq!(got, rows);
        assert!(pager.lock().stats().page_reads >= 2, "read page by page");
    }

    #[test]
    fn empty_heap_yields_nothing() {
        let pager = shared(PlainPager::new());
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut scan = SeqScan::new(schema, HeapFile::new(), pager);
        assert!(scan.next().unwrap().is_none());
        assert!(scan.next().unwrap().is_none(), "stays exhausted");
    }
}
