//! The five evaluated system configurations and the query runner.
//!
//! A [`CsaSystem`] owns the storage-resident database (plaintext for the
//! non-secure baselines, the full encrypted + Merkle + RPMB stack for the
//! secure ones) and executes the paper's (multi-stage) queries under one
//! of the Table 2 configurations, producing a [`QueryReport`] with the
//! simulated-time breakdown and data-movement counters every figure is
//! built from.

use crate::adaptive::{
    choose, divergence_trip, prior_selectivity, AdaptiveState, EpcView, FragmentStats,
    PlanMetrics, ReplanPolicy, RECORD_OVERHEAD_BYTES, ROWS_PER_RECORD,
};
use crate::cost::{CostBreakdown, CostParams};
use crate::net::channel_pair;
use crate::profile::{CostTerm, Placement, PlanProfile, ProfileExtras, QueryProfile, ReplanEvent};
use crate::partition::{partition_select, partition_select_strategic, OffloadDecision, Partition, StorageQuery};
use crate::Result;
use ironsafe_crypto::group::Group;
use ironsafe_sql::ast::{expr_to_sql, SelectItem, SelectStmt, Statement};
use ironsafe_sql::exec::{ExecOptions, ScanWatch};
use parking_lot::Mutex;
use ironsafe_sql::{Database, QueryResult, Schema};
use ironsafe_faults::{retry_with, FaultPlan, RetryPolicy};
use ironsafe_storage::pager::{PagerStats, PlainPager};
use ironsafe_sql::catalog::Catalog;
use ironsafe_storage::{PageCache, SecurePager, SharedPending, SnapshotPin, ViewPager};
use ironsafe_obs::{Span, Trace, TraceCtx, TraceSnapshot};
use ironsafe_tee::sgx::epc::EpcSimulator;
use ironsafe_tee::trustzone::Manufacturer;
use ironsafe_tpch::queries::PaperQuery;
use ironsafe_tpch::TpchData;
use rand::SeedableRng;
use std::sync::Arc;

/// The Table 2 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemConfig {
    /// `hons`: host-only, non-secure (NFS-attached storage).
    HostOnlyNonSecure,
    /// `hos`: host-only, secure (SGX enclave + host-side page crypto).
    HostOnlySecure,
    /// `vcs`: vanilla computational storage (split, non-secure).
    VanillaCs,
    /// `scs`: IronSafe (split, secure).
    IronSafe,
    /// `sos`: storage-only, secure.
    StorageOnlySecure,
}

impl SystemConfig {
    /// Paper abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            SystemConfig::HostOnlyNonSecure => "hons",
            SystemConfig::HostOnlySecure => "hos",
            SystemConfig::VanillaCs => "vcs",
            SystemConfig::IronSafe => "scs",
            SystemConfig::StorageOnlySecure => "sos",
        }
    }

    /// Does this configuration split queries across host and storage?
    pub fn split(&self) -> bool {
        matches!(self, SystemConfig::VanillaCs | SystemConfig::IronSafe)
    }

    /// Does this configuration run the secure storage stack?
    pub fn secure(&self) -> bool {
        matches!(
            self,
            SystemConfig::HostOnlySecure | SystemConfig::IronSafe | SystemConfig::StorageOnlySecure
        )
    }

    /// All five, paper order.
    pub fn all() -> [SystemConfig; 5] {
        [
            SystemConfig::HostOnlyNonSecure,
            SystemConfig::HostOnlySecure,
            SystemConfig::VanillaCs,
            SystemConfig::IronSafe,
            SystemConfig::StorageOnlySecure,
        ]
    }
}

/// Outcome of one query run.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Configuration used.
    pub config: SystemConfig,
    /// TPC-H query number.
    pub query_id: u8,
    /// The actual query result (identical across configurations).
    pub result: QueryResult,
    /// Simulated-time breakdown.
    pub breakdown: CostBreakdown,
    /// Pages read from the medium near the data.
    pub pages_read_storage: u64,
    /// Page-equivalents moved between storage and host.
    pub pages_shipped: u64,
    /// Rows shipped storage→host (0 for non-split configs' row count view).
    pub rows_shipped: u64,
    /// Bytes moved across the interconnect.
    pub bytes_shipped: u64,
}

impl QueryReport {
    /// Total simulated time.
    pub fn total_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }
}

/// How split configurations decide per-table offloading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Always push filters + projection down (the paper's heuristic).
    #[default]
    Static,
    /// Never push down: every fragment ships raw pages and the host
    /// applies the filter itself (the all-host static baseline).
    AllHost,
    /// Cost-based per-fragment placement: evaluate the offload and
    /// ship-pages alternatives under [`CostParams`] with selectivity
    /// estimates from the [`AdaptiveState`] EWMA store (seeded from
    /// predicate-shape priors) and the live EPC occupancy — the paper's
    /// §8 future work, implemented.
    Adaptive,
}

/// A host+storage deployment in one configuration.
pub struct CsaSystem {
    /// Active configuration.
    pub config: SystemConfig,
    /// Cost-model parameters.
    pub params: CostParams,
    /// Offloading strategy for split configurations.
    pub strategy: PartitionStrategy,
    storage_db: Database,
    session_key: [u8; 32],
    last_trace: Option<TraceSnapshot>,
    /// Per-plan operator profiles captured from every plan the most
    /// recent run drained (stages, fragments, host joins).
    last_plans: Vec<PlanProfile>,
    /// Enclave-side observations of the most recent run (transitions,
    /// EPC faults, occupancy samples).
    last_extras: ProfileExtras,
    /// Shared decrypted-page cache, cloned into every [`read_view`]
    /// (see [`CsaSystem::read_view`]) so sibling views decrypt each base
    /// page once while still charging identical per-view costs.
    read_cache: Arc<PageCache>,
    /// Morsel-execution options for read-only fragments. Parallelism
    /// changes wall-clock only: reports, breakdowns and pager-stats
    /// deltas stay bit-identical to serial execution at any DOP.
    exec: ExecOptions,
    /// Deterministic fault-injection plan, pushed into the storage pager
    /// and the secure channel. [`FaultPlan::none`] by default.
    fault_plan: FaultPlan,
    /// Retry budget used when recovering from injected transient faults
    /// on the channel path.
    retry: RetryPolicy,
    /// Shared EWMA estimate store feeding the adaptive planner. Cloned
    /// (by `Arc`) into every view so observations made inside a view
    /// refine the base system's estimates.
    adaptive: Arc<Mutex<AdaptiveState>>,
    /// Live `plan.*` counters (decisions, refinements, re-plans).
    plan_metrics: PlanMetrics,
    /// When set, the adaptive strategy skips the cost rule and applies
    /// this decision to every fragment (the golden-parity guard).
    pinned_decision: Option<OffloadDecision>,
    /// Mid-flight re-planning policy (`None` = disabled).
    replan: Option<ReplanPolicy>,
    /// Simulated background enclave working set (pages) held resident by
    /// concurrent tenants; 0 = calm EPC. Applied identically under every
    /// strategy — pressure is environment, not policy.
    epc_pressure_pages: u64,
}

/// Attribute one simulated cost term to a named accounting span.
///
/// Each term gets its own span so [`CostBreakdown::from_trace`] sums
/// category totals in span-creation order — the exact order the old
/// inline accumulation added them, preserving bit-identical breakdowns.
fn charge(name: &str, category: &'static str, ns: f64) {
    let span = Span::enter(name);
    span.add_sim_ns(category, ns);
}

fn complexity(stmt: &SelectStmt) -> u64 {
    let joins = stmt.from.len().saturating_sub(1) as u64;
    let has_agg = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        });
    let has_sort = !stmt.order_by.is_empty();
    1 + joins + has_agg as u64 + has_sort as u64
}

impl CsaSystem {
    /// Build a system in `config`, loading `data` into its storage node.
    pub fn build(config: SystemConfig, data: &TpchData, params: CostParams) -> Result<CsaSystem> {
        Self::build_with_compression(config, data, params, false)
    }

    /// [`CsaSystem::build`] with per-page compression optionally layered
    /// under the page crypto: pages are compressed *before* encrypt+MAC
    /// (and decompressed after decrypt+verify), so compressible data
    /// spends fewer physical blocks — and therefore fewer encryptions,
    /// MACs and Merkle leaves. The reduction is honest: `PagerStats`
    /// report physical-block work, and the cost model charges exactly
    /// those counters.
    pub fn build_with_compression(
        config: SystemConfig,
        data: &TpchData,
        params: CostParams,
        compressed: bool,
    ) -> Result<CsaSystem> {
        let mut storage_db = if config.secure() {
            let group = Group::modp_1024();
            let mfr = Manufacturer::from_seed(&group, b"ironsafe-storage-vendor");
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xC5A);
            let device = mfr.make_device("storage-0", 8, &mut rng);
            let pager = SecurePager::create(device, 0xC5A).map_err(crate::CsaError::Storage)?;
            if compressed {
                Database::new(ironsafe_storage::CompressedPager::new(pager))
            } else {
                Database::new(pager)
            }
        } else if compressed {
            Database::new(ironsafe_storage::CompressedPager::new(PlainPager::new()))
        } else {
            Database::new(PlainPager::new())
        };
        ironsafe_tpch::load_into(&mut storage_db, data)?;
        storage_db.reset_pager_stats();
        // Bound the verified-node cache by the enclave memory budget the
        // cost model assumes — the cache is TEE-resident, so it competes
        // with the query working set for EPC.
        storage_db.pager().lock().set_merkle_cache_capacity(
            ironsafe_tee::sgx::epc::verified_node_cache_capacity(params.epc_limit_bytes as u64),
        );
        // The flight recorder is TEE-resident too: its ring capacity is
        // derived from the same enclave memory budget.
        storage_db.pager().lock().set_flight_budget(params.epc_limit_bytes as u64);
        Ok(CsaSystem {
            config,
            params,
            strategy: PartitionStrategy::default(),
            storage_db,
            session_key: [0x5e; 32],
            last_trace: None,
            last_plans: Vec::new(),
            last_extras: ProfileExtras::default(),
            read_cache: Arc::new(PageCache::new()),
            exec: ExecOptions::serial(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            adaptive: Arc::new(Mutex::new(AdaptiveState::new())),
            plan_metrics: PlanMetrics::new(),
            pinned_decision: None,
            replan: None,
            epc_pressure_pages: 0,
        })
    }

    /// Build over an already-populated database (e.g. the GDPR workload).
    pub fn from_database(config: SystemConfig, storage_db: Database, params: CostParams) -> Self {
        CsaSystem {
            config,
            params,
            strategy: PartitionStrategy::default(),
            storage_db,
            session_key: [0x5e; 32],
            last_trace: None,
            last_plans: Vec::new(),
            last_extras: ProfileExtras::default(),
            read_cache: Arc::new(PageCache::new()),
            exec: ExecOptions::serial(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            adaptive: Arc::new(Mutex::new(AdaptiveState::new())),
            plan_metrics: PlanMetrics::new(),
            pinned_decision: None,
            replan: None,
            epc_pressure_pages: 0,
        }
    }

    /// Open an isolated read view of this system for one query run.
    ///
    /// The view is a full `CsaSystem` sharing this system's pages
    /// through a copy-on-write [`ViewPager`]: reads go through the
    /// shared decrypted-page cache, while temporary tables, catalog
    /// checkpoints and any other writes stay private to the view and are
    /// discarded when it drops. Pager stats start at zero and count only
    /// the view's own work, so concurrent views produce bit-identical
    /// [`CostBreakdown`]s to serial execution.
    ///
    /// The caller must exclude base writes for the view's lifetime
    /// (the serving layer holds a `RwLock` read guard — see
    /// [`SharedCsaSystem`](crate::SharedCsaSystem)).
    pub fn read_view(&self) -> CsaSystem {
        let pager = ViewPager::over(self.storage_db.pager().clone(), self.read_cache.clone());
        let storage_db =
            Database::from_parts(ironsafe_sql::heap::shared(pager), self.storage_db.catalog().clone());
        CsaSystem {
            config: self.config,
            params: self.params.clone(),
            strategy: self.strategy,
            storage_db,
            session_key: self.session_key,
            last_trace: None,
            last_plans: Vec::new(),
            last_extras: ProfileExtras::default(),
            read_cache: self.read_cache.clone(),
            exec: self.exec.clone(),
            fault_plan: self.fault_plan.clone(),
            retry: self.retry,
            adaptive: self.adaptive.clone(),
            plan_metrics: self.plan_metrics.clone(),
            pinned_decision: self.pinned_decision,
            replan: self.replan,
            epc_pressure_pages: self.epc_pressure_pages,
        }
    }

    /// Open a *snapshot* read view pinned to the epoch captured in `pin`,
    /// with the catalog published at that epoch.
    ///
    /// Unlike [`CsaSystem::read_view`], the caller does **not** need to
    /// exclude base writes: pages a later flush overwrites are served
    /// from the MVCC retained-version store
    /// ([`ironsafe_storage::Snapshots`]), so the view keeps reading the
    /// epoch it opened at while writers commit the next one.
    pub fn read_view_at(&self, pin: SnapshotPin, catalog: Catalog) -> CsaSystem {
        let pager =
            ViewPager::over_pinned(self.storage_db.pager().clone(), self.read_cache.clone(), pin);
        let storage_db = Database::from_parts(ironsafe_sql::heap::shared(pager), catalog);
        CsaSystem {
            config: self.config,
            params: self.params.clone(),
            strategy: self.strategy,
            storage_db,
            session_key: self.session_key,
            last_trace: None,
            last_plans: Vec::new(),
            last_extras: ProfileExtras::default(),
            read_cache: self.read_cache.clone(),
            exec: self.exec.clone(),
            fault_plan: self.fault_plan.clone(),
            retry: self.retry,
            adaptive: self.adaptive.clone(),
            plan_metrics: self.plan_metrics.clone(),
            pinned_decision: self.pinned_decision,
            replan: self.replan,
            epc_pressure_pages: self.epc_pressure_pages,
        }
    }

    /// Open a *writer* view: a copy-on-write view whose reads additionally
    /// see `pending` — the group-commit buffer of transactions already
    /// accepted but not yet flushed to the base — and whose `catalog` is
    /// the write path's running catalog (ahead of the published one by
    /// the buffered transactions). The accumulated overlay is harvested
    /// with `take_txn_pages` after a successful statement.
    pub fn write_view(&self, pending: SharedPending, catalog: Catalog) -> CsaSystem {
        let pager = ViewPager::over_writer(
            self.storage_db.pager().clone(),
            self.read_cache.clone(),
            pending,
        );
        let storage_db = Database::from_parts(ironsafe_sql::heap::shared(pager), catalog);
        CsaSystem {
            config: self.config,
            params: self.params.clone(),
            strategy: self.strategy,
            storage_db,
            session_key: self.session_key,
            last_trace: None,
            last_plans: Vec::new(),
            last_extras: ProfileExtras::default(),
            read_cache: self.read_cache.clone(),
            exec: self.exec.clone(),
            fault_plan: self.fault_plan.clone(),
            retry: self.retry,
            adaptive: self.adaptive.clone(),
            plan_metrics: self.plan_metrics.clone(),
            pinned_decision: self.pinned_decision,
            replan: self.replan,
            epc_pressure_pages: self.epc_pressure_pages,
        }
    }

    /// The shared decrypted-page cache (the serving layer clears it when
    /// `with_system_mut` reseeds the store underneath it).
    pub(crate) fn read_cache(&self) -> &Arc<PageCache> {
        &self.read_cache
    }

    /// The active retry budget (the group-commit flush reuses it for the
    /// WAL append).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The cost-model parameters (the group-commit flush prices its
    /// deferred device work with these).
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Install a deterministic fault-injection plan on this system.
    ///
    /// The plan is pushed into the storage pager (device, page-integrity
    /// and freshness fault sites) and cloned into the secure channel of
    /// every subsequent split-query run, so one seeded plan governs the
    /// whole query path. Views opened via [`CsaSystem::read_view`] after
    /// this call inherit the plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.storage_db.pager().lock().set_fault_plan(plan.clone());
        self.fault_plan = plan;
    }

    /// The active fault-injection plan ([`FaultPlan::none`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Set the retry budget used to recover from injected transient faults.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
        self.storage_db.pager().lock().set_retry_policy(policy);
    }

    /// Telemetry trace of the most recent `run_query`/`run_statement`
    /// call: the span tree whose category totals *are* the reported
    /// [`CostBreakdown`], exportable via `ironsafe_obs::export`.
    pub fn last_trace(&self) -> Option<&TraceSnapshot> {
        self.last_trace.as_ref()
    }

    /// Take ownership of the most recent trace (used by the serving
    /// layer to hand a per-query trace back without cloning).
    pub fn take_last_trace(&mut self) -> Option<TraceSnapshot> {
        self.last_trace.take()
    }

    /// Per-plan operator profiles captured by the most recent
    /// `run_query`/`run_statement` call, in execution order.
    pub fn last_plans(&self) -> &[PlanProfile] {
        &self.last_plans
    }

    /// Enclave-side observations (transitions, EPC faults, occupancy
    /// samples) of the most recent run.
    pub fn last_extras(&self) -> &ProfileExtras {
        &self.last_extras
    }

    /// Drain the storage pager's TEE-resident flight recorder:
    /// deterministic forensic event lines describing faulted or
    /// violating page accesses (empty for plaintext pagers and clean
    /// runs). The serving layer appends these to the monitor audit
    /// trail when a query fails.
    pub fn take_flight_dump(&mut self) -> Vec<String> {
        self.storage_db.pager().lock().take_flight_dump()
    }

    /// Run `q` and assemble its [`QueryProfile`] alongside the normal
    /// report.
    ///
    /// Everything in the profile is measured, not copied from the
    /// report: the breakdown is re-derived from the recorded trace, the
    /// pager delta and secure counters are measured around the run, and
    /// the operator rows come from the drained plans — so the parity
    /// test can assert the profile agrees with the cost model
    /// bit-for-bit.
    pub fn profile_query(&mut self, q: &PaperQuery) -> Result<(QueryReport, QueryProfile)> {
        let registry = ironsafe_obs::Registry::new();
        self.storage_db.register_metrics(&registry);
        let counters_before = registry.snapshot();
        let stats_before = self.storage_db.pager_stats();
        let report = self.run_query(q)?;
        let pager = self.pager_delta(stats_before);
        let counters_after = registry.snapshot();
        let delta = |name: &str| -> u64 {
            counters_after.counter(name).unwrap_or(0) - counters_before.counter(name).unwrap_or(0)
        };
        let trace = self.last_trace.as_ref().expect("run_query records a trace");
        let profile = QueryProfile {
            config: self.config,
            query_id: q.id,
            dop: self.exec.dop.get(),
            breakdown: CostBreakdown::from_trace(trace),
            pager,
            pages_read_storage: report.pages_read_storage,
            pages_shipped: report.pages_shipped,
            rows_shipped: report.rows_shipped,
            bytes_shipped: report.bytes_shipped,
            macs_verified: delta("storage.page.hmac_verify"),
            merkle_cache_hits: delta("storage.merkle.cache.hit"),
            merkle_cache_misses: delta("storage.merkle.cache.miss"),
            enclave_transitions: self.last_extras.enclave_transitions,
            epc_faults: self.last_extras.epc_faults,
            epc_occupancy_pages: self.last_extras.epc_occupancy_pages.clone(),
            cost_terms: trace
                .spans
                .iter()
                .filter(|s| s.sim_ns > 0.0)
                .map(|s| CostTerm { name: s.name.clone(), sim_ns: s.sim_ns })
                .collect(),
            plans: self.last_plans.clone(),
            replan_events: self.last_extras.replans.clone(),
            span_count: trace.spans.len(),
            error_span_count: trace.error_spans().len(),
        };
        Ok((report, profile))
    }

    /// The storage-resident database (e.g. to inspect the catalog).
    pub fn storage_db(&self) -> &Database {
        &self.storage_db
    }

    /// Mutable access (loaders, policy experiments).
    pub fn storage_db_mut(&mut self) -> &mut Database {
        &mut self.storage_db
    }

    /// Install the per-request session key (from the trusted monitor).
    pub fn set_session_key(&mut self, key: [u8; 32]) {
        self.session_key = key;
    }

    /// Set the degree of parallelism for read-only query execution.
    ///
    /// DOP > 1 runs scans and single-table aggregations on the morsel
    /// worker pool; results, breakdowns and stats deltas stay
    /// bit-identical to DOP 1 (parallelism buys wall-clock only).
    pub fn set_dop(&mut self, dop: usize) {
        self.exec.dop = ironsafe_sql::exec::Dop::new(dop);
    }

    /// Switch vectorized (column-batch) execution on or off for
    /// read-only query fragments.
    ///
    /// Like DOP, vectorization buys wall-clock only: rows, breakdowns
    /// and pager-stats deltas stay bit-identical to scalar execution.
    pub fn set_vectorized(&mut self, on: bool) {
        self.exec.vectorized = on;
    }

    /// Current morsel-execution options.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.exec
    }

    /// Attach the morsel-execution counters (`exec.morsel.*`) to
    /// `registry`, alongside [`Database::register_metrics`] for the
    /// pager counters.
    pub fn register_exec_metrics(&self, registry: &ironsafe_obs::Registry) {
        self.exec.metrics.register(registry);
    }

    /// Select the partitioning strategy used by split configurations.
    pub fn set_partition_strategy(&mut self, strategy: PartitionStrategy) {
        self.strategy = strategy;
    }

    /// Handle on the shared selectivity-estimate store (survives across
    /// runs and views; feed it by running queries or pin entries).
    pub fn adaptive_state(&self) -> Arc<Mutex<AdaptiveState>> {
        self.adaptive.clone()
    }

    /// Pin a table-level estimate, overriding priors for every fragment
    /// on `table` that has no predicate-specific observation yet (used
    /// to model stale or deliberately wrong catalog statistics).
    pub fn pin_table_estimate(&mut self, table: &str, est: crate::adaptive::Estimate) {
        self.adaptive.lock().pin_table(table, est);
    }

    /// Pin the adaptive strategy to a fixed decision for every fragment
    /// (`None` restores cost-based choice). With a pin in place the
    /// adaptive path must reproduce the corresponding static plan
    /// bit-identically — the golden-parity guard asserts exactly this.
    pub fn pin_adaptive(&mut self, decision: Option<OffloadDecision>) {
        self.pinned_decision = decision;
    }

    /// Enable (`Some`) or disable (`None`, the default) mid-flight
    /// re-planning for adaptive offloaded fragments.
    pub fn set_replan(&mut self, policy: Option<ReplanPolicy>) {
        self.replan = policy;
    }

    /// Simulate background EPC pressure: `pages` enclave pages held
    /// resident by concurrent tenants for the whole run. Applied under
    /// every strategy (pressure is environment, not policy); 0 disables.
    pub fn set_epc_pressure(&mut self, pages: u64) {
        self.epc_pressure_pages = pages;
    }

    /// Attach the planner counters (`plan.*`) to `registry`.
    pub fn register_plan_metrics(&self, registry: &ironsafe_obs::Registry) {
        self.plan_metrics.register(registry);
    }

    fn pager_delta(&self, before: PagerStats) -> PagerStats {
        let after = self.storage_db.pager_stats();
        PagerStats {
            page_reads: after.page_reads - before.page_reads,
            page_writes: after.page_writes - before.page_writes,
            decrypts: after.decrypts - before.decrypts,
            encrypts: after.encrypts - before.encrypts,
            merkle_nodes: after.merkle_nodes - before.merkle_nodes,
            rpmb_ops: after.rpmb_ops - before.rpmb_ops,
        }
    }

    /// Run a single (possibly monitor-rewritten) statement.
    ///
    /// `SELECT`s go through the configuration's normal execution path;
    /// DML and DDL run directly on the storage-resident database (writes
    /// always land next to the data).
    pub fn run_statement(&mut self, stmt: &Statement) -> Result<QueryReport> {
        match stmt {
            Statement::Select(sel) => {
                let sql = crate::partition::render_select(sel);
                let q = PaperQuery {
                    id: 0,
                    name: "ad-hoc",
                    stages: vec![ironsafe_tpch::QueryStage { sql, into: None }],
                };
                self.run_query(&q)
            }
            other => {
                self.last_plans.clear();
                self.last_extras = ProfileExtras::default();
                let trace = Trace::new();
                let (result, delta) = {
                    let _active = trace.install();
                    let _ctx = TraceCtx::query(0).install();
                    let _stmt_span = Span::enter("statement/dml");
                    let before = self.storage_db.pager_stats();
                    let result = {
                        let _exec = Span::enter("storage/execute");
                        self.storage_db.execute_statement(other)?
                    };
                    let delta = self.pager_delta(before);
                    let p = &self.params;
                    charge(
                        "storage/device_io",
                        "ndp",
                        (delta.page_reads + delta.page_writes) as f64 * p.device_read_ns_per_page,
                    );
                    charge(
                        "crypto/pages",
                        "crypto",
                        (delta.decrypts * p.decrypt_ns_per_page
                            + delta.encrypts * p.encrypt_ns_per_page) as f64,
                    );
                    charge(
                        "freshness/verify",
                        "freshness",
                        (delta.merkle_nodes * p.merkle_node_ns + delta.rpmb_ops * p.rpmb_op_ns)
                            as f64,
                    );
                    (result, delta)
                };
                let snapshot = trace.snapshot();
                let breakdown = CostBreakdown::from_trace(&snapshot);
                self.last_trace = Some(snapshot);
                Ok(QueryReport {
                    config: self.config,
                    query_id: 0,
                    result,
                    breakdown,
                    pages_read_storage: delta.page_reads,
                    pages_shipped: 0,
                    rows_shipped: 0,
                    bytes_shipped: 0,
                })
            }
        }
    }

    /// Run a paper query, producing its report.
    pub fn run_query(&mut self, q: &PaperQuery) -> Result<QueryReport> {
        match self.config {
            SystemConfig::StorageOnlySecure => self.run_storage_only(q),
            SystemConfig::HostOnlyNonSecure | SystemConfig::HostOnlySecure => self.run_host_only(q),
            SystemConfig::VanillaCs | SystemConfig::IronSafe => self.run_split(q),
        }
    }

    // ---------------------------------------------------------------
    // sos: the whole query runs next to the data, on the weak CPU.
    // ---------------------------------------------------------------
    fn run_storage_only(&mut self, q: &PaperQuery) -> Result<QueryReport> {
        let exec = self.exec.clone();
        self.last_plans.clear();
        self.last_extras = ProfileExtras::default();
        let trace = Trace::new();
        let (result, delta) = {
            let _active = trace.install();
            let _ctx = TraceCtx::query(q.id as u64).install();
            let _query_span = Span::enter(&format!("query/q{}", q.id));
            let before = self.storage_db.pager_stats();
            let mut scanned_rows = 0u64;
            let mut ops_total = 0u64;
            let mut probe_requests = 0u64;
            let mut result = None;
            let mut temps = Vec::new();
            for (stage_no, stage) in q.stages.iter().enumerate() {
                let _stage_span = Span::enter(&format!("stage{stage_no}/storage_exec"));
                let stmt = ironsafe_sql::parser::parse_statement(&stage.sql)?;
                if let Statement::Select(sel) = &stmt {
                    let mut stage_rows = 0u64;
                    for t in &sel.from {
                        if let Ok(info) = self.storage_db.catalog().table(&t.name) {
                            stage_rows += info.heap.row_count;
                        }
                    }
                    scanned_rows += stage_rows;
                    ops_total += complexity(sel);
                    // SQLite-style access amplification: every join probe
                    // re-requests an inner page through the pager, and each
                    // request pays decrypt + freshness (the paper's Q2/Q9
                    // "request pages ~200K / ~23M times").
                    if sel.from.len() > 1 {
                        probe_requests += stage_rows;
                    }
                }
                let r = match &stmt {
                    Statement::Select(sel) => {
                        let (r, ops) = self.storage_db.select_with_profile(sel, &exec)?;
                        self.last_plans.push(PlanProfile::new(
                            format!("stage{stage_no}/storage_exec"),
                            Placement::Storage,
                            ops,
                        ));
                        r
                    }
                    other => self.storage_db.execute_statement_with(other, &exec)?,
                };
                match &stage.into {
                    Some(name) => {
                        self.storage_db.create_table(name, r.schema())?;
                        self.storage_db.insert_rows(name, r.rows().to_vec())?;
                        temps.push(name.clone());
                    }
                    None => result = Some(r),
                }
            }
            for t in temps {
                self.storage_db.execute(&format!("DROP TABLE {t}"))?;
            }
            let delta = self.pager_delta(before);
            let db_pages = self
                .storage_db
                .catalog()
                .tables()
                .map(|t| t.heap.pages.len() as u64)
                .sum::<u64>()
                .max(2);
            let p = &self.params;
            let compute_ns = scanned_rows as f64
                * ops_total.max(1) as f64
                * p.host_row_ns
                * p.storage_cpu_factor;
            let path_nodes = 2 * db_pages.ilog2() as u64 + 1;
            charge("storage/compute", "ndp", compute_ns);
            charge(
                "storage/device_io",
                "ndp",
                delta.page_reads as f64 * p.device_read_ns_per_page,
            );
            charge(
                "freshness/verify",
                "freshness",
                ((delta.merkle_nodes + probe_requests * path_nodes) * p.merkle_node_ns
                    + delta.rpmb_ops * p.rpmb_op_ns) as f64,
            );
            charge(
                "crypto/pages",
                "crypto",
                ((delta.decrypts + probe_requests) * p.decrypt_ns_per_page
                    + delta.encrypts * p.encrypt_ns_per_page) as f64,
            );
            (result, delta)
        };
        let snapshot = trace.snapshot();
        let breakdown = CostBreakdown::from_trace(&snapshot);
        self.last_trace = Some(snapshot);
        Ok(QueryReport {
            config: self.config,
            query_id: q.id,
            result: result.expect("query has an output stage"),
            breakdown,
            pages_read_storage: delta.page_reads,
            pages_shipped: 0,
            rows_shipped: 0,
            bytes_shipped: 0,
        })
    }

    // ---------------------------------------------------------------
    // hons / hos: all pages cross the network; the host does everything.
    // hos additionally pays enclave transitions, host-side page crypto +
    // Merkle freshness, and EPC paging for data pages and tree nodes.
    // ---------------------------------------------------------------
    fn run_host_only(&mut self, q: &PaperQuery) -> Result<QueryReport> {
        let secure = self.config.secure();
        let exec = self.exec.clone();
        self.last_plans.clear();
        self.last_extras = ProfileExtras::default();
        let trace = Trace::new();
        let (result, delta, scanned_rows, bytes) = {
            let _active = trace.install();
            let _ctx = TraceCtx::query(q.id as u64).install();
            let _query_span = Span::enter(&format!("query/q{}", q.id));
            let before = self.storage_db.pager_stats();
            let mut scanned_rows = 0u64;
            let mut ops_total = 0u64;
            let mut probe_requests = 0u64;
            let mut result = None;
            let mut temps = Vec::new();
            let db_pages = {
                // Total pages of all base tables (Merkle leaf count).
                self.storage_db
                    .catalog()
                    .tables()
                    .map(|t| t.heap.pages.len() as u64)
                    .sum::<u64>()
                    .max(2)
            };
            for (stage_no, stage) in q.stages.iter().enumerate() {
                let _stage_span = Span::enter(&format!("stage{stage_no}/host_exec"));
                let stmt = ironsafe_sql::parser::parse_statement(&stage.sql)?;
                if let Statement::Select(sel) = &stmt {
                    ops_total += complexity(sel);
                    let mut stage_rows = 0u64;
                    for t in &sel.from {
                        if let Ok(info) = self.storage_db.catalog().table(&t.name) {
                            stage_rows += info.heap.row_count;
                            scanned_rows += info.heap.row_count;
                        }
                    }
                    // Join probes re-request pages through the in-enclave
                    // SQLCipher pager (same amplification as sos).
                    if sel.from.len() > 1 {
                        probe_requests += stage_rows;
                    }
                }
                let r = match &stmt {
                    Statement::Select(sel) => {
                        let (r, ops) = self.storage_db.select_with_profile(sel, &exec)?;
                        self.last_plans.push(PlanProfile::new(
                            format!("stage{stage_no}/host_exec"),
                            Placement::Host,
                            ops,
                        ));
                        r
                    }
                    other => self.storage_db.execute_statement_with(other, &exec)?,
                };
                match &stage.into {
                    Some(name) => {
                        self.storage_db.create_table(name, r.schema())?;
                        self.storage_db.insert_rows(name, r.rows().to_vec())?;
                        temps.push(name.clone());
                    }
                    None => result = Some(r),
                }
            }
            for t in temps {
                self.storage_db.execute(&format!("DROP TABLE {t}"))?;
            }
            let delta = self.pager_delta(before);
            // One OCALL round per fetched page batch (mirrors the
            // `tee/transitions` charge below).
            if secure {
                self.last_extras.enclave_transitions = delta.page_reads * 2;
            }
            let p = &self.params;
            let bytes = delta.page_reads * 4096;
            // NFS-style page fetches batch ~64 pages per round trip.
            let messages = delta.page_reads.div_ceil(64).max(1);
            charge("host/compute", "ndp", p.host_compute_ns(scanned_rows, ops_total.max(1)));
            charge(
                "storage/device_io",
                "ndp",
                delta.page_reads as f64 * p.device_read_ns_per_page,
            );
            charge("net/page_fetch", "ndp", p.net_ns(bytes, messages));
            if secure {
                let path_nodes = 2 * db_pages.ilog2() as u64 + 1;
                charge(
                    "crypto/pages",
                    "crypto",
                    ((delta.decrypts + probe_requests) * p.decrypt_ns_per_page
                        + delta.encrypts * p.encrypt_ns_per_page) as f64,
                );
                charge(
                    "freshness/verify",
                    "freshness",
                    ((delta.merkle_nodes + probe_requests * path_nodes) * p.merkle_node_ns
                        + delta.rpmb_ops * p.rpmb_op_ns) as f64,
                );
                // One OCALL round per page batch fetched into the enclave.
                charge(
                    "tee/transitions",
                    "transitions",
                    (delta.page_reads * 2 * p.enclave_transition_ns) as f64,
                );
                // EPC paging: the in-enclave Merkle tree is the resident
                // working set (the paper's Figure 9a: 59/78/98 MiB at SF
                // 3/4/5 against 96 MiB of EPC). While the tree fits, path
                // verifications hit; once it overflows, the uncached fraction
                // of every path faults — the paging cliff.
                let tree_bytes = 2 * db_pages * 32;
                let overflow = 1.0 - (p.epc_limit_bytes as f64 / tree_bytes as f64).min(1.0);
                let verifications = delta.page_reads + probe_requests;
                charge(
                    "tee/epc_paging",
                    "epc",
                    verifications as f64 * path_nodes as f64 * overflow * p.epc_fault_ns as f64,
                );
            }
            (result, delta, scanned_rows, bytes)
        };
        let snapshot = trace.snapshot();
        let breakdown = CostBreakdown::from_trace(&snapshot);
        self.last_trace = Some(snapshot);
        Ok(QueryReport {
            config: self.config,
            query_id: q.id,
            result: result.expect("query has an output stage"),
            breakdown,
            pages_read_storage: delta.page_reads,
            pages_shipped: delta.page_reads,
            rows_shipped: scanned_rows,
            bytes_shipped: bytes,
        })
    }

    // ---------------------------------------------------------------
    // vcs / scs: per-table filter fragments run near the data; filtered
    // rows ship to the host, which joins/aggregates them.
    // ---------------------------------------------------------------
    fn run_split(&mut self, q: &PaperQuery) -> Result<QueryReport> {
        let secure = self.config == SystemConfig::IronSafe;
        let p = self.params.clone();
        let exec = self.exec.clone();
        self.last_plans.clear();
        self.last_extras = ProfileExtras::default();
        let trace = Trace::new();
        let (result, delta, bytes, rows_shipped) = {
            let _active = trace.install();
            let _ctx = TraceCtx::query(q.id as u64).install();
            let _query_span = Span::enter(&format!("query/q{}", q.id));
            let before = self.storage_db.pager_stats();
            let mut host_db = Database::new(PlainPager::new());
            let mut epc = EpcSimulator::new(p.epc_limit_bytes);
            if secure && self.epc_pressure_pages > 0 {
                // Concurrent tenants hold a resident working set before
                // the query's first temp page lands. Applied under every
                // strategy: pressure is environment, not policy.
                epc.preload_background(self.epc_pressure_pages);
            }
            let (mut tx, mut rx) = channel_pair(&self.session_key);
            rx.set_fault_plan(self.fault_plan.clone());
            let plan = self.fault_plan.clone();
            let retry = self.retry;

            let mut scanned_rows = 0u64;
            let mut rows_shipped = 0u64;
            let mut rows_serialized = 0u64;
            let mut page_transfer_bytes = 0u64;
            let mut host_input_rows = 0u64;
            let mut host_ops = 0u64;
            let mut fragments = 0u64;
            let mut result = None;

            for (stage_no, stage) in q.stages.iter().enumerate() {
                let _stage_span = Span::enter(&format!("stage{stage_no}/split_exec"));
                let stmt = ironsafe_sql::parser::parse_statement(&stage.sql)?;
                let sel = match stmt {
                    Statement::Select(s) => s,
                    other => {
                        // Non-SELECT stages run on the host.
                        host_db.execute_statement(&other)?;
                        continue;
                    }
                };
                let catalog_lookup = |name: &str| -> Option<Schema> {
                    self.storage_db.catalog().table(name).ok().map(|t| t.schema.clone())
                };
                let host_ops_est = complexity(&sel);
                let adaptive_live = self.strategy == PartitionStrategy::Adaptive
                    && self.pinned_decision.is_none();
                let Partition { storage, host } = match self.strategy {
                    PartitionStrategy::Static => partition_select(&sel, &catalog_lookup),
                    PartitionStrategy::AllHost => {
                        partition_select_strategic(&sel, &catalog_lookup, &|_, _| {
                            OffloadDecision::ShipPages
                        })
                    }
                    PartitionStrategy::Adaptive => match self.pinned_decision {
                        Some(pin) => {
                            partition_select_strategic(&sel, &catalog_lookup, &|_, _| pin)
                        }
                        None => {
                            let state = self.adaptive.lock();
                            // Occupancy at planning time: background
                            // pressure plus earlier stages' temp pages —
                            // so later stages adapt to a filling EPC.
                            let view = EpcView {
                                occupied_pages: epc.resident_pages() as u64,
                                capacity_pages: epc.capacity_pages() as u64,
                            };
                            let db = &self.storage_db;
                            let metrics = &self.plan_metrics;
                            partition_select_strategic(&sel, &catalog_lookup, &|table, frag| {
                                let Ok(info) = db.catalog().table(table) else {
                                    return OffloadDecision::Offload;
                                };
                                let shape = TableShape {
                                    rows: info.heap.row_count,
                                    pages: info.heap.pages.len() as u64,
                                    cols: info.schema.len(),
                                };
                                let f = fragment_stats(
                                    &state, table, frag, shape, host_ops_est, secure,
                                );
                                let (decision, _, _) = choose(&f, &view, &p);
                                match decision {
                                    OffloadDecision::Offload => metrics.decide_offload.inc(),
                                    OffloadDecision::ShipPages => {
                                        metrics.decide_ship_pages.inc()
                                    }
                                }
                                decision
                            })
                        }
                    },
                };

                // Run fragments near the data, ship results.
                let mut shipped_tables = Vec::new();
                for StorageQuery { table, stmt, mode, .. } in &storage {
                    let _frag_span = Span::enter(&format!("fragment/{table}"));
                    let info = self.storage_db.catalog().table(table)?;
                    let table_rows = info.heap.row_count;
                    let table_cols = info.schema.len();
                    scanned_rows += table_rows;
                    let table_pages = info.heap.pages.len() as u64;
                    let shape =
                        TableShape { rows: table_rows, pages: table_pages, cols: table_cols };
                    let est_sel = (adaptive_live && stmt.where_clause.is_some()).then(|| {
                        let state = self.adaptive.lock();
                        fragment_stats(&state, table, stmt, shape, host_ops_est, secure)
                            .selectivity
                    });
                    // Watch per-morsel row counts when this fragment may
                    // re-plan mid-flight (forces the morsel driver, which
                    // stays bit-identical to serial execution).
                    let watch = (adaptive_live
                        && self.replan.is_some()
                        && *mode == OffloadDecision::Offload
                        && est_sel.is_some())
                    .then(|| Arc::new(ScanWatch::new()));
                    let frag_exec = match &watch {
                        Some(w) => exec.clone().with_watch(w.clone()),
                        None => exec.clone(),
                    };
                    let (frag_result, frag_ops) =
                        self.storage_db.select_with_profile(stmt, &frag_exec)?;
                    let pushdown_sql = stmt.where_clause.as_ref().map(expr_to_sql);
                    let schema = frag_result.schema();
                    let rows = frag_result.rows().to_vec();
                    let frag_rows = rows.len();
                    rows_shipped += frag_rows as u64;
                    fragments += 1;
                    let observed_sel = (table_rows > 0 && stmt.where_clause.is_some())
                        .then(|| frag_rows as f64 / table_rows as f64);
                    self.last_plans.push(PlanProfile {
                        label: format!("stage{stage_no}/fragment/{table}"),
                        placement: match mode {
                            OffloadDecision::Offload => Placement::StorageOffload,
                            OffloadDecision::ShipPages => Placement::StorageShipPages,
                        },
                        pushdown_filter: pushdown_sql.clone(),
                        estimated_selectivity: est_sel,
                        observed_selectivity: observed_sel,
                        operators: frag_ops,
                    });

                    let bytes_before = tx.bytes_sent;
                    let mut sealed_rows = frag_rows;
                    match mode {
                        OffloadDecision::ShipPages => {
                            // Raw page transfer: no storage-side serialization,
                            // whole pages cross the wire.
                            page_transfer_bytes += table_pages * 4096;
                        }
                        OffloadDecision::Offload => {
                            // Mid-flight re-planning: if the cumulative
                            // per-morsel selectivity diverged from the
                            // estimate past the hysteresis band *and* the
                            // cost rule flips at the observed value, the
                            // remaining morsels abandon the pushdown —
                            // their raw pages cross the wire and the host
                            // filters them itself. Answers are unchanged;
                            // only the cost accounting moves.
                            if let (Some(w), Some(policy)) = (&watch, self.replan) {
                                let slots = w.take();
                                let est = est_sel.unwrap_or(1.0);
                                if let Some((m, obs)) = divergence_trip(&slots, est, &policy) {
                                    let mut f = {
                                        let state = self.adaptive.lock();
                                        fragment_stats(
                                            &state, table, stmt, shape, host_ops_est, secure,
                                        )
                                    };
                                    f.selectivity = obs;
                                    let view = EpcView {
                                        occupied_pages: epc.resident_pages() as u64,
                                        capacity_pages: epc.capacity_pages() as u64,
                                    };
                                    let (rechoice, _, _) = choose(&f, &view, &p);
                                    if rechoice == OffloadDecision::ShipPages {
                                        let pre_filtered: u64 =
                                            slots[..m].iter().map(|(_, out)| *out).sum();
                                        let post_raw: u64 =
                                            slots[m..].iter().map(|(inp, _)| *inp).sum();
                                        let post_filtered: u64 =
                                            slots[m..].iter().map(|(_, out)| *out).sum();
                                        sealed_rows = pre_filtered as usize;
                                        let covered = (m * exec.morsel_pages) as u64;
                                        page_transfer_bytes +=
                                            table_pages.saturating_sub(covered) * 4096;
                                        // The host filters the raw remainder
                                        // itself…
                                        host_input_rows += post_raw - post_filtered;
                                        if secure {
                                            // …and its enclave touches the
                                            // extra temp pages those raw rows
                                            // occupy before filtering.
                                            let density = f.temp_rows_per_page.max(1.0);
                                            let extra_pages = ((post_raw - post_filtered)
                                                as f64
                                                / density)
                                                .ceil()
                                                as u64;
                                            epc.access_range(
                                                2_000_000_000 + fragments * 1_000_000,
                                                extra_pages,
                                            );
                                        }
                                        charge(
                                            "plan/replan",
                                            "ndp",
                                            p.fragment_setup_ns as f64,
                                        );
                                        self.plan_metrics.replans.inc();
                                        self.last_extras.replans.push(ReplanEvent {
                                            label: format!("stage{stage_no}/fragment/{table}"),
                                            from: Placement::StorageOffload,
                                            to: Placement::StorageShipPages,
                                            at_morsel: m,
                                            estimated: est,
                                            observed: obs,
                                        });
                                    }
                                }
                            }
                            rows_serialized += sealed_rows as u64;
                            // Serialize through the channel (records of ≤4096 rows).
                            // Each record is sealed once; injected transit faults
                            // (drop/corrupt/reorder) reject delivery without
                            // advancing the receive window, and the retransmit of
                            // the pristine record is accepted under the retry
                            // budget — so bytes_sent counts each record once.
                            for chunk in rows[..sealed_rows].chunks(4096) {
                                let record = tx.seal_rows(&schema, chunk);
                                let back =
                                    retry_with(&plan, &retry, || rx.recv_rows(&record))?;
                                debug_assert_eq!(back.len(), chunk.len());
                            }
                        }
                    }
                    if host_db.catalog().has_table(table) {
                        host_db.execute(&format!("DROP TABLE {table}"))?;
                    }
                    host_db.create_table(table, schema)?;
                    host_db.insert_rows(table, rows)?;
                    shipped_tables.push(table.clone());

                    // Feedback: fold the fragment's observed statistics
                    // into the shared EWMA store (under every strategy —
                    // static runs prime the adaptive planner too).
                    if *mode == OffloadDecision::Offload
                        && stmt.where_clause.is_some()
                        && sealed_rows > 0
                    {
                        let obs = frag_rows as f64 / table_rows.max(1) as f64;
                        let records = (sealed_rows as u64).div_ceil(ROWS_PER_RECORD);
                        let wire = tx.bytes_sent - bytes_before;
                        let per_row = wire.saturating_sub(records * RECORD_OVERHEAD_BYTES)
                            as f64
                            / sealed_rows as f64;
                        let temp_pages = host_db
                            .catalog()
                            .table(table)
                            .map(|i| i.heap.pages.len())
                            .unwrap_or(1)
                            .max(1);
                        let density = frag_rows as f64 / temp_pages as f64;
                        let refined = self.adaptive.lock().observe(
                            table,
                            pushdown_sql.as_deref(),
                            obs,
                            per_row,
                            density,
                        );
                        if refined {
                            self.plan_metrics.estimate_refined.inc();
                        }
                    }
                }

                // Host-side execution over the shipped intermediates.
                host_input_rows += shipped_tables
                    .iter()
                    .map(|t| host_db.catalog().table(t).map(|i| i.heap.row_count).unwrap_or(0))
                    .sum::<u64>();
                host_ops += complexity(&host);
                if secure {
                    // The host engine's enclave touches every temp page.
                    for t in &shipped_tables {
                        if let Ok(info) = host_db.catalog().table(t) {
                            for &page in &info.heap.pages {
                                epc.access(1_000_000 + page);
                            }
                        }
                    }
                    // Sample EPC occupancy once per stage, after the
                    // stage's working set landed.
                    self.last_extras.epc_occupancy_pages.push(epc.resident_pages() as u64);
                    // The background tenants re-touch their working set
                    // while the host stage computes; against a full EPC
                    // this faults (and cascades) deterministically.
                    if self.epc_pressure_pages > 0 {
                        epc.touch_background(self.epc_pressure_pages);
                    }
                }
                let r = {
                    let _host_span = Span::enter("host/join_aggregate");
                    let (r, host_ops_profile) = host_db.select_with_profile(&host, &exec)?;
                    self.last_plans.push(PlanProfile::new(
                        format!("stage{stage_no}/host"),
                        Placement::Host,
                        host_ops_profile,
                    ));
                    r
                };
                match &stage.into {
                    Some(name) => {
                        host_db.create_table(name, r.schema())?;
                        host_db.insert_rows(name, r.rows().to_vec())?;
                    }
                    None => result = Some(r),
                }
                for t in shipped_tables {
                    host_db.execute(&format!("DROP TABLE {t}"))?;
                }
            }

            let delta = self.pager_delta(before);
            let bytes = tx.bytes_sent + page_transfer_bytes;
            self.last_extras.epc_faults = epc.faults();
            if secure {
                // Two transitions per shipped record batch (mirrors the
                // `tee/transitions` charge below).
                self.last_extras.enclave_transitions = tx.messages * 2;
            }
            // The storage-side application buffers the intermediates it ships.
            let mem_penalty = p.storage_mem_penalty(bytes);
            charge(
                "storage/compute",
                "ndp",
                p.storage_compute_ns(scanned_rows, 1) * mem_penalty,
            );
            // Serializing shipped rows and instantiating the per-fragment CS
            // service are storage-side costs vanilla CS also pays — this is
            // why weakly-selective queries regress under CS (paper Figure 6).
            charge(
                "storage/serialize",
                "ndp",
                rows_serialized as f64 * p.serialize_row_ns as f64 * p.storage_cpu_factor
                    / p.storage_parallel(),
            );
            charge("storage/fragment_setup", "ndp", fragments as f64 * p.fragment_setup_ns as f64);
            charge(
                "host/compute",
                "ndp",
                p.host_compute_ns(host_input_rows, host_ops.max(1)),
            );
            charge(
                "storage/device_io",
                "ndp",
                delta.page_reads as f64 * p.device_read_ns_per_page,
            );
            charge("net/ship_rows", "ndp", p.net_ns(bytes, tx.messages.max(1)));
            if secure {
                // No probe amplification here: the host side of scs joins
                // in-memory temp tables (no SQLCipher pager on that path).
                charge(
                    "crypto/pages",
                    "crypto",
                    (delta.decrypts * p.decrypt_ns_per_page + delta.encrypts * p.encrypt_ns_per_page)
                        as f64,
                );
                charge(
                    "freshness/verify",
                    "freshness",
                    (delta.merkle_nodes * p.merkle_node_ns + delta.rpmb_ops * p.rpmb_op_ns) as f64,
                );
                // A couple of transitions per shipped record batch.
                charge(
                    "tee/transitions",
                    "transitions",
                    (tx.messages * 2 * p.enclave_transition_ns) as f64,
                );
                charge("tee/epc_paging", "epc", epc.faults() as f64 * p.epc_fault_ns as f64);
                let other = Span::enter("channel/other");
                other.add_sim_ns("other", p.session_setup_ns as f64);
                other.add_sim_ns("other", bytes as f64 * 0.05);
            }
            (result, delta, bytes, rows_shipped)
        };
        let snapshot = trace.snapshot();
        let breakdown = CostBreakdown::from_trace(&snapshot);
        self.last_trace = Some(snapshot);
        Ok(QueryReport {
            config: self.config,
            query_id: q.id,
            result: result.expect("query has an output stage"),
            breakdown,
            pages_read_storage: delta.page_reads,
            pages_shipped: bytes.div_ceil(4096),
            rows_shipped,
            bytes_shipped: bytes,
        })
    }
}

/// Catalog shape of one table, as the planner sees it.
#[derive(Clone, Copy)]
struct TableShape {
    rows: u64,
    pages: u64,
    cols: usize,
}

/// Assemble the planner's view of one storage fragment: EWMA-refined
/// estimates from the shared store when the fragment has been observed
/// before, predicate-shape priors and catalog statistics otherwise.
/// Pure — no page reads, no pager-stat perturbation.
fn fragment_stats(
    state: &AdaptiveState,
    table: &str,
    frag: &SelectStmt,
    shape: TableShape,
    host_ops: u64,
    secure: bool,
) -> FragmentStats {
    let TableShape { rows: table_rows, pages: table_pages, cols: table_cols } = shape;
    let where_sql = frag.where_clause.as_ref().map(expr_to_sql);
    let est = state.lookup(table, where_sql.as_deref());
    let selectivity = est.map(|e| e.selectivity).unwrap_or_else(|| {
        frag.where_clause.as_ref().map(prior_selectivity).unwrap_or(1.0)
    });
    let needed_cols = if frag.projections.iter().any(|i| matches!(i, SelectItem::Star)) {
        table_cols
    } else {
        frag.projections.len()
    }
    .max(1);
    let density_prior = if table_pages == 0 {
        64.0
    } else {
        (table_rows as f64 / table_pages as f64).max(1.0)
    };
    FragmentStats {
        table_rows,
        table_pages,
        selectivity,
        row_wire_bytes: est.map(|e| e.row_wire_bytes).unwrap_or(12.0 * needed_cols as f64),
        temp_rows_per_page: est.map(|e| e.temp_rows_per_page).unwrap_or(density_prior),
        host_ops,
        secure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_tee::sgx::epc::PAGE_SIZE;
    use ironsafe_tpch::queries::{paper_queries, query};

    fn data() -> TpchData {
        ironsafe_tpch::generate(0.002, 42)
    }

    fn run(config: SystemConfig, qid: u8, data: &TpchData) -> QueryReport {
        let mut sys = CsaSystem::build(config, data, CostParams::default()).unwrap();
        sys.run_query(&query(qid).unwrap()).unwrap()
    }

    #[test]
    fn q6_results_identical_across_all_configs() {
        let d = data();
        let reference = run(SystemConfig::HostOnlyNonSecure, 6, &d).result;
        for config in SystemConfig::all().into_iter().skip(1) {
            let r = run(config, 6, &d);
            assert_eq!(r.result, reference, "{}", config.abbrev());
        }
    }

    #[test]
    fn q3_results_identical_across_all_configs() {
        let d = data();
        let reference = run(SystemConfig::HostOnlyNonSecure, 3, &d).result;
        for config in SystemConfig::all().into_iter().skip(1) {
            let r = run(config, 3, &d);
            assert_eq!(r.result, reference, "{}", config.abbrev());
        }
    }

    #[test]
    fn split_ships_fewer_bytes_than_host_only() {
        let d = data();
        let hons = run(SystemConfig::HostOnlyNonSecure, 6, &d);
        let vcs = run(SystemConfig::VanillaCs, 6, &d);
        assert!(
            vcs.bytes_shipped < hons.bytes_shipped / 2,
            "Q6 filters hard: vcs {} vs hons {}",
            vcs.bytes_shipped,
            hons.bytes_shipped
        );
        assert!(vcs.pages_shipped < hons.pages_shipped);
    }

    #[test]
    fn secure_costs_more_than_non_secure() {
        let d = data();
        let hons = run(SystemConfig::HostOnlyNonSecure, 6, &d);
        let hos = run(SystemConfig::HostOnlySecure, 6, &d);
        assert!(hos.total_ns() > hons.total_ns());
        assert!(hos.breakdown.freshness_ns > 0.0);
        assert!(hos.breakdown.crypto_ns > 0.0);
        let vcs = run(SystemConfig::VanillaCs, 6, &d);
        let scs = run(SystemConfig::IronSafe, 6, &d);
        assert!(scs.total_ns() > vcs.total_ns());
    }

    #[test]
    fn ironsafe_beats_host_only_secure_on_selective_queries() {
        let d = data();
        let hos = run(SystemConfig::HostOnlySecure, 6, &d);
        let scs = run(SystemConfig::IronSafe, 6, &d);
        assert!(
            scs.total_ns() < hos.total_ns(),
            "scs {} should beat hos {}",
            scs.total_ns(),
            hos.total_ns()
        );
    }

    #[test]
    fn all_paper_queries_run_in_scs() {
        let d = data();
        let mut sys = CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
        for q in paper_queries() {
            let r = sys.run_query(&q).unwrap_or_else(|e| panic!("Q{}: {e}", q.id));
            assert!(r.total_ns() > 0.0);
        }
    }

    #[test]
    fn storage_cores_speed_up_split_execution() {
        let d = data();
        let p1 = CostParams { storage_cores: 1, ..CostParams::default() };
        let mut sys1 = CsaSystem::build(SystemConfig::IronSafe, &d, p1).unwrap();
        let r1 = sys1.run_query(&query(6).unwrap()).unwrap();
        let p8 = CostParams { storage_cores: 8, ..CostParams::default() };
        let mut sys8 = CsaSystem::build(SystemConfig::IronSafe, &d, p8).unwrap();
        let r8 = sys8.run_query(&query(6).unwrap()).unwrap();
        assert!(r8.total_ns() < r1.total_ns());
    }

    #[test]
    fn tiny_epc_causes_paging_in_hos() {
        let d = data();
        let p = CostParams { epc_limit_bytes: 8 * PAGE_SIZE, ..CostParams::default() };
        let mut sys = CsaSystem::build(SystemConfig::HostOnlySecure, &d, p).unwrap();
        let r = sys.run_query(&query(1).unwrap()).unwrap();
        assert!(r.breakdown.epc_ns > 0.0, "thrashing EPC must fault");
    }

    #[test]
    fn sos_pays_weak_cpu_but_no_network() {
        let d = data();
        let r = run(SystemConfig::StorageOnlySecure, 1, &d);
        assert_eq!(r.bytes_shipped, 0);
        assert!(r.breakdown.ndp_ns > 0.0);
        assert!(r.breakdown.freshness_ns > 0.0);
    }

    #[test]
    fn multi_stage_query_runs_split() {
        let d = data();
        let r = run(SystemConfig::IronSafe, 18, &d);
        let reference = run(SystemConfig::HostOnlyNonSecure, 18, &d);
        assert_eq!(r.result, reference.result);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use ironsafe_tpch::queries::query;

    fn data() -> TpchData {
        ironsafe_tpch::generate(0.002, 42)
    }

    fn run_with(strategy: PartitionStrategy, qid: u8, data: &TpchData) -> QueryReport {
        let mut sys = CsaSystem::build(SystemConfig::IronSafe, data, CostParams::default()).unwrap();
        sys.strategy = strategy;
        sys.run_query(&query(qid).unwrap()).unwrap()
    }

    #[test]
    fn adaptive_matches_static_results() {
        let d = data();
        for qid in [1u8, 3, 6, 13, 18] {
            let a = run_with(PartitionStrategy::Static, qid, &d);
            let b = run_with(PartitionStrategy::Adaptive, qid, &d);
            assert_eq!(a.result, b.result, "Q{qid}: strategy must never change answers");
        }
    }

    #[test]
    fn adaptive_keeps_selective_pushdowns() {
        // Q6's filter is brutal: the adaptive partitioner must keep it.
        let d = data();
        let a = run_with(PartitionStrategy::Adaptive, 6, &d);
        let s = run_with(PartitionStrategy::Static, 6, &d);
        assert_eq!(a.bytes_shipped, s.bytes_shipped, "Q6 still offloads fully");
    }

    #[test]
    fn adaptive_withdraws_weak_pushdowns() {
        // Q13's NOT LIKE keeps nearly every order: the adaptive strategy
        // withdraws the pushdown; the host applies the filter instead.
        let d = data();
        let a = run_with(PartitionStrategy::Adaptive, 13, &d);
        let s = run_with(PartitionStrategy::Static, 13, &d);
        assert!(
            a.rows_shipped >= s.rows_shipped,
            "withdrawn pushdown ships at least as many rows ({} vs {})",
            a.rows_shipped,
            s.rows_shipped
        );
        assert_eq!(a.result, s.result);
    }
}
