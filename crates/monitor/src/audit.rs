//! Tamper-evident audit log.
//!
//! The paper requires every data-sharing operation (and every attack
//! attempt, e.g. crafted queries) to land in a log that cannot be
//! silently truncated or edited. Entries form a hash chain; the monitor
//! countersigns the chain head on demand, so a regulator holding the
//! monitor's public key can verify the full history offline.

use ironsafe_crypto::sha256::sha256_concat;
use parking_lot::Mutex;

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub seq: u64,
    /// Logical timestamp supplied by the monitor.
    pub timestamp: i64,
    /// Which log stream this entry belongs to (from `logUpdate(l, ...)`),
    /// or `"monitor"` for the monitor's own decisions.
    pub stream: String,
    /// Identity key of the involved client.
    pub client_key: String,
    /// What happened (query text, decision, attack note...).
    pub message: String,
    /// Hash of the previous entry (all zero for the first).
    pub prev_hash: [u8; 32],
    /// Hash over this entry's contents ‖ `prev_hash`.
    pub hash: [u8; 32],
}

fn entry_hash(
    seq: u64,
    timestamp: i64,
    stream: &str,
    client_key: &str,
    message: &str,
    prev: &[u8; 32],
) -> [u8; 32] {
    sha256_concat(&[
        b"ironsafe-audit-v1",
        &seq.to_be_bytes(),
        &timestamp.to_be_bytes(),
        &(stream.len() as u32).to_be_bytes(),
        stream.as_bytes(),
        &(client_key.len() as u32).to_be_bytes(),
        client_key.as_bytes(),
        &(message.len() as u32).to_be_bytes(),
        message.as_bytes(),
        prev,
    ])
}

/// Hash-chained append-only log.
///
/// Appends take `&self`: the entry vector sits behind a single mutex so
/// concurrent sessions can log through a shared monitor without racing
/// the chain. Sequencing and `prev_hash` linkage are decided under that
/// lock, so whatever order threads arrive in, the resulting chain is
/// valid ([`first_bad_link`](AuditLog::first_bad_link) returns `None`).
#[derive(Default)]
pub struct AuditLog {
    entries: Mutex<Vec<AuditEntry>>,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog").field("entries", &*self.entries.lock()).finish()
    }
}

impl Clone for AuditLog {
    fn clone(&self) -> Self {
        AuditLog { entries: Mutex::new(self.entries.lock().clone()) }
    }
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry; returns its sequence number.
    pub fn append(&self, timestamp: i64, stream: &str, client_key: &str, message: &str) -> u64 {
        let mut entries = self.entries.lock();
        let seq = entries.len() as u64;
        let prev_hash = entries.last().map(|e| e.hash).unwrap_or([0; 32]);
        let hash = entry_hash(seq, timestamp, stream, client_key, message, &prev_hash);
        entries.push(AuditEntry {
            seq,
            timestamp,
            stream: stream.to_string(),
            client_key: client_key.to_string(),
            message: message.to_string(),
            prev_hash,
            hash,
        });
        seq
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries of one stream (what the regulator asks for).
    pub fn stream(&self, name: &str) -> Vec<AuditEntry> {
        self.entries.lock().iter().filter(|e| e.stream == name).cloned().collect()
    }

    /// Hash of the chain head (all zero when empty).
    pub fn head(&self) -> [u8; 32] {
        self.entries.lock().last().map(|e| e.hash).unwrap_or([0; 32])
    }

    /// Recompute every link; `false` if any entry was modified, reordered
    /// or removed from the middle.
    pub fn verify(&self) -> bool {
        self.first_bad_link().is_none()
    }

    /// Recompute every link and report the index of the first entry whose
    /// link fails to verify, or `None` when the whole chain is intact.
    ///
    /// A regulator uses this to localize tampering: everything *before*
    /// the returned index is still trustworthy (it hashes correctly up to
    /// that point), while the returned entry and everything after it must
    /// be treated as forged.
    pub fn first_bad_link(&self) -> Option<usize> {
        let entries = self.entries.lock();
        let mut prev = [0u8; 32];
        for (i, e) in entries.iter().enumerate() {
            if e.seq != i as u64 || e.prev_hash != prev {
                return Some(i);
            }
            let expect = entry_hash(e.seq, e.timestamp, &e.stream, &e.client_key, &e.message, &prev);
            if expect != e.hash {
                return Some(i);
            }
            prev = e.hash;
        }
        None
    }

    /// Test/attack helper: mutate the raw entry vector under the lock.
    #[doc(hidden)]
    pub fn with_raw_entries<R>(&self, f: impl FnOnce(&mut Vec<AuditEntry>) -> R) -> R {
        f(&mut self.entries.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditLog {
        let log = AuditLog::new();
        log.append(1, "monitor", "Ka", "grant read");
        log.append(2, "audit", "Kb", "SELECT arrival FROM people");
        log.append(3, "monitor", "Kc", "DENY write");
        log
    }

    #[test]
    fn clean_chain_verifies() {
        let log = sample();
        assert!(log.verify());
        assert_eq!(log.entries().len(), 3);
        assert_ne!(log.head(), [0; 32]);
    }

    #[test]
    fn edited_message_detected() {
        let log = sample();
        log.with_raw_entries(|e| e[1].message = "SELECT ssn FROM people".into());
        assert!(!log.verify());
    }

    #[test]
    fn tampered_middle_entry_reports_first_bad_index() {
        let log = sample();
        assert_eq!(log.first_bad_link(), None);
        // An attacker rewrites the middle entry in place. Entry 0 still
        // verifies; the chain breaks exactly at index 1 (its own hash no
        // longer matches its contents).
        log.with_raw_entries(|e| e[1].message = "grant write".into());
        assert_eq!(log.first_bad_link(), Some(1));
        assert!(!log.verify());

        // If the attacker also recomputes entry 1's hash, the break moves
        // to index 2: entry 2's prev_hash now points at a hash that no
        // longer exists in the chain.
        let log = sample();
        log.with_raw_entries(|entries| {
            let e = entries[1].clone();
            let forged_hash = super::entry_hash(
                e.seq,
                e.timestamp,
                &e.stream,
                &e.client_key,
                "grant write",
                &e.prev_hash,
            );
            entries[1].message = "grant write".into();
            entries[1].hash = forged_hash;
        });
        assert_eq!(log.first_bad_link(), Some(2));
    }

    #[test]
    fn dropped_middle_entry_detected() {
        let log = sample();
        log.with_raw_entries(|e| {
            e.remove(1);
        });
        assert!(!log.verify());
        // The dropped entry shifts everything after it: index 1 now holds
        // the old entry 2, whose seq/prev_hash both mismatch.
        assert_eq!(log.first_bad_link(), Some(1));
    }

    #[test]
    fn reordered_entries_detected() {
        let log = sample();
        log.with_raw_entries(|e| e.swap(0, 2));
        assert!(!log.verify());
    }

    #[test]
    fn truncation_changes_head() {
        let log = sample();
        let head = log.head();
        log.with_raw_entries(|e| {
            e.pop();
        });
        // Still internally consistent (an attacker may truncate the tail),
        // but the head no longer matches what the monitor signed.
        assert!(log.verify());
        assert_ne!(log.head(), head);
    }

    #[test]
    fn stream_filter() {
        let log = sample();
        assert_eq!(log.stream("audit").len(), 1);
        assert_eq!(log.stream("monitor").len(), 2);
    }

    #[test]
    fn interleaved_appends_from_many_threads_chain_cleanly() {
        let log = AuditLog::new();
        let threads = 8;
        let per_thread = 50;
        crossbeam::thread::scope(|s| {
            for t in 0..threads {
                let log = &log;
                s.spawn(move |_| {
                    let client = format!("K{t}");
                    for i in 0..per_thread {
                        log.append(i as i64, "audit", &client, &format!("query {i} from {t}"));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(log.len(), threads * per_thread);
        assert_eq!(log.first_bad_link(), None, "interleaved appends must chain");
        assert!(log.verify());
        // Sequence numbers were handed out densely under the lock.
        let entries = log.entries();
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn empty_log_verifies() {
        assert!(AuditLog::new().verify());
        assert_eq!(AuditLog::new().head(), [0; 32]);
    }
}
