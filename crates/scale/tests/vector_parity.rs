//! Golden parity for the vectorized execution path and the
//! compress-before-encrypt page store.
//!
//! Vectorization is a pure execution change, so it must preserve
//! *everything* the scalar baseline produces: rows, cost breakdowns,
//! shipped rows/bytes and summed per-shard pager deltas, at any DOP and
//! any shard count. Compression is a physical-layout change, so it must
//! preserve the *answer* (rows bit-identical at any DOP and shard
//! count) while honestly shrinking the physical counters: strictly
//! fewer page reads everywhere, strictly fewer decrypts/MAC checks on
//! secure configurations, and counters that do not depend on DOP.

use ironsafe_csa::system::SystemConfig;
use ironsafe_scale::{FederatedCsaSystem, FederatedReport, FederationConfig};
use ironsafe_tpch::queries::{paper_queries, PaperQuery};

const SF: f64 = 0.002;
const SEED: u64 = 42;
const KEY: [u8; 32] = [7u8; 32];

const ALL_CONFIGS: [SystemConfig; 5] = [
    SystemConfig::HostOnlyNonSecure,
    SystemConfig::HostOnlySecure,
    SystemConfig::VanillaCs,
    SystemConfig::IronSafe,
    SystemConfig::StorageOnlySecure,
];

fn queries() -> Vec<PaperQuery> {
    paper_queries().into_iter().filter(|q| q.id == 1 || q.id == 6).collect()
}

fn summed(report: &FederatedReport) -> (u64, u64, u64, u64) {
    report.per_shard.iter().fold((0, 0, 0, 0), |acc, d| {
        (
            acc.0 + d.stats.page_reads,
            acc.1 + d.stats.page_writes,
            acc.2 + d.stats.decrypts,
            acc.3 + d.stats.encrypts,
        )
    })
}

/// Run `queries()` × DOP {1, 4} on one federation in a fixed order so
/// cross-query node state (Merkle caches) evolves identically on every
/// federation being compared.
fn run_suite(fed: &FederatedCsaSystem) -> Vec<FederatedReport> {
    let mut out = Vec::new();
    for q in &queries() {
        for dop in [1usize, 4] {
            let (report, _) = fed.run_query_federated(q, KEY, dop).unwrap();
            out.push(report);
        }
    }
    out
}

fn check_config(config: SystemConfig) {
    let data = ironsafe_tpch::generate(SF, SEED);
    let base = {
        let fed = FederatedCsaSystem::build(FederationConfig::new(1, config), &data).unwrap();
        run_suite(&fed)
    };

    // Axis 1 — vectorized, raw pages: bit-identical to scalar on every
    // observable, at 1 and 2 shards.
    for shards in [1usize, 2] {
        let cfg = FederationConfig::new(shards, config).with_vectorized(true);
        let fed = FederatedCsaSystem::build(cfg, &data).unwrap();
        for (run, b) in run_suite(&fed).iter().zip(&base) {
            let label = format!("{config:?} q{} vec shards={shards}", run.query_id);
            assert_eq!(run.result, b.result, "{label}: rows diverged");
            assert_eq!(run.breakdown, b.breakdown, "{label}: breakdown diverged");
            assert_eq!(run.rows_shipped, b.rows_shipped, "{label}: rows_shipped diverged");
            assert_eq!(run.bytes_shipped, b.bytes_shipped, "{label}: bytes diverged");
            assert_eq!(summed(run), summed(b), "{label}: pager deltas diverged");
        }
    }

    // Axis 2 — vectorized + compressed pages: the answer is untouched,
    // the physical counters shrink honestly and are DOP-independent.
    let mut comp_at_1 = Vec::new();
    for shards in [1usize, 2] {
        let cfg = FederationConfig::new(shards, config).with_vectorized(true).with_compressed(true);
        let fed = FederatedCsaSystem::build(cfg, &data).unwrap();
        let runs = run_suite(&fed);
        for (run, b) in runs.iter().zip(&base) {
            let label = format!("{config:?} q{} vec+comp shards={shards}", run.query_id);
            assert_eq!(run.result, b.result, "{label}: rows diverged");
            assert_eq!(run.rows_shipped, b.rows_shipped, "{label}: rows_shipped diverged");
            let (reads, _, decrypts, _) = summed(run);
            let (b_reads, _, b_decrypts, _) = summed(b);
            assert!(
                reads < b_reads,
                "{label}: compressed scan should read fewer physical blocks ({reads} vs {b_reads})"
            );
            if b_decrypts > 0 {
                assert!(
                    decrypts < b_decrypts,
                    "{label}: compression must cut decrypt/MAC work ({decrypts} vs {b_decrypts})"
                );
            }
        }
        // DOP 1 vs DOP 4 of the same query hit identical physical pages:
        // the suite interleaves them, so compare pairwise per query.
        for pair in runs.chunks(2) {
            assert_eq!(
                summed(&pair[0]),
                summed(&pair[1]),
                "{config:?} q{} shards={shards}: compressed counters depend on DOP",
                pair[0].query_id
            );
        }
        if shards == 1 {
            comp_at_1 = runs;
        } else {
            // Sharding a compressed store re-compresses each partition
            // independently; the totals stay in a tight envelope of the
            // single-node compressed totals even though exact block
            // boundaries shift.
            for (run, one) in runs.iter().zip(&comp_at_1) {
                let (reads, writes, ..) = summed(run);
                let (o_reads, o_writes, ..) = summed(one);
                let label = format!("{config:?} q{} vec+comp", run.query_id);
                assert!(
                    (reads as f64 - o_reads as f64).abs() <= o_reads as f64 * 0.15 + 4.0,
                    "{label}: 2-shard reads {reads} far from 1-shard {o_reads}"
                );
                assert!(
                    (writes as f64 - o_writes as f64).abs() <= o_writes as f64 * 0.15 + 4.0,
                    "{label}: 2-shard writes {writes} far from 1-shard {o_writes}"
                );
            }
        }
    }
}

/// Deep check on the paper's own configuration.
#[test]
fn ironsafe_vector_and_compression_parity() {
    check_config(SystemConfig::IronSafe);
}

/// Every other Table 2 configuration holds the same invariants.
#[test]
fn all_configs_hold_vector_and_compression_parity() {
    for config in ALL_CONFIGS {
        if config == SystemConfig::IronSafe {
            continue; // covered by the deep test
        }
        check_config(config);
    }
}
