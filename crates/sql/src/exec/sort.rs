//! Sort operator.

use crate::ast::Expr;
use crate::exec::{BoxOp, Operator};
use crate::expr::eval;
use crate::schema::{Row, Schema};
use crate::Result;
use std::cmp::Ordering;

/// Materializing sort over expression keys.
pub struct Sort {
    input: Option<BoxOp>,
    schema: Schema,
    keys: Vec<(Expr, bool)>,
    sorted: std::vec::IntoIter<Row>,
    emitted: u64,
}

impl Sort {
    /// Sort `input` by `keys` (`true` = descending).
    pub fn new(input: BoxOp, keys: Vec<(Expr, bool)>) -> Self {
        let schema = input.schema().clone();
        Sort { input: Some(input), schema, keys, sorted: Vec::new().into_iter(), emitted: 0 }
    }

    fn materialize(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("materialize called once");
        let mut rows = Vec::new();
        while let Some(r) = input.next()? {
            rows.push(r);
        }
        // Precompute key values per row, then sort stably.
        let mut keyed: Vec<(Vec<crate::value::Value>, Row)> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut kv = Vec::with_capacity(self.keys.len());
            for (e, _) in &self.keys {
                kv.push(eval(e, &self.schema, &row)?);
            }
            keyed.push((kv, row));
        }
        let descs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = ka[i].sort_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.sorted = keyed.into_iter().map(|(_, r)| r).collect::<Vec<_>>().into_iter();
        Ok(())
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|(e, d)| format!("{}{}", crate::ast::expr_to_sql(e), if *d { " DESC" } else { "" }))
            .collect();
        format!("Sort: {}", keys.join(", "))
    }

    fn children(&self) -> Vec<&crate::exec::BoxOp> {
        self.input.as_ref().map(|i| vec![i]).unwrap_or_default()
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.input.is_some() {
            self.materialize()?;
        }
        let row = self.sorted.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, Values};
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn input(rows: Vec<Row>) -> BoxOp {
        let schema = Schema::new(vec![Column::new("a", DataType::Int), Column::new("b", DataType::Text)]);
        Box::new(Values::new(schema, rows))
    }

    fn row(a: i64, b: &str) -> Row {
        vec![Value::Int(a), Value::Text(b.into())]
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let rows = vec![row(3, "c"), row(1, "a"), row(2, "b")];
        let s = Box::new(Sort::new(input(rows.clone()), vec![(parse_expression("a").unwrap(), false)]));
        let (_, got) = collect(s).unwrap();
        assert_eq!(got, vec![row(1, "a"), row(2, "b"), row(3, "c")]);

        let s = Box::new(Sort::new(input(rows), vec![(parse_expression("a").unwrap(), true)]));
        let (_, got) = collect(s).unwrap();
        assert_eq!(got[0], row(3, "c"));
    }

    #[test]
    fn multi_key_with_mixed_direction() {
        let rows = vec![row(1, "z"), row(1, "a"), row(2, "m")];
        let keys = vec![
            (parse_expression("a").unwrap(), true),
            (parse_expression("b").unwrap(), false),
        ];
        let (_, got) = collect(Box::new(Sort::new(input(rows), keys))).unwrap();
        assert_eq!(got, vec![row(2, "m"), row(1, "a"), row(1, "z")]);
    }

    #[test]
    fn sorts_by_expression() {
        let rows = vec![row(5, "x"), row(-10, "y"), row(2, "z")];
        // Sort by a*a: 4, 25, 100.
        let keys = vec![(parse_expression("a * a").unwrap(), false)];
        let (_, got) = collect(Box::new(Sort::new(input(rows), keys))).unwrap();
        assert_eq!(got.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(), vec![2, 5, -10]);
    }

    #[test]
    fn nulls_sort_first() {
        let rows = vec![row(2, "b"), vec![Value::Null, Value::Text("n".into())], row(1, "a")];
        let keys = vec![(parse_expression("a").unwrap(), false)];
        let (_, got) = collect(Box::new(Sort::new(input(rows), keys))).unwrap();
        assert!(got[0][0].is_null());
    }

    #[test]
    fn empty_input() {
        let keys = vec![(parse_expression("a").unwrap(), false)];
        let (_, got) = collect(Box::new(Sort::new(input(vec![]), keys))).unwrap();
        assert!(got.is_empty());
    }
}
