//! Minimal `rand` 0.8 shim.
//!
//! Implements the subset of the rand API this workspace uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits and [`rngs::StdRng`].
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — fast and
//! statistically solid for simulation and test-vector generation, but
//! (unlike the real `StdRng`) **not** a CSPRNG. The workspace only ever
//! seeds it deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly at random (rand's `Standard`).
pub trait Random: Sized {
    /// Draw one value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random_from(rng) as i128
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types `gen_range` can sample uniformly (rand's `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(modulo_reduce(rng, span as u128) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                if span == <$u>::MAX as u128 {
                    return <$t>::random_from(rng);
                }
                lo.wrapping_add(modulo_reduce(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Uniform value in `[0, span)` via widening multiply (span > 0).
fn modulo_reduce<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t>::random_from(rng);
                lo + u * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi) // measure-zero endpoint
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Destinations [`Rng::fill`] can fill (rand's `Fill`).
pub trait Fill {
    /// Fill `self` with random data.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (integers: full range; floats: `[0, 1)`).
    fn gen<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::random_from(self) < p
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (expanded through SplitMix64, as in rand).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (not the real ChaCha12 —
    /// deterministic simulation quality only).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0x2545F4914F6CDD1D];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w: usize = r.gen_range(1..=7usize);
            assert!((1..=7).contains(&w));
            let f = r.gen_range(-999.99..9999.99);
            assert!((-999.99..9999.99).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_and_gen_arrays() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 16];
        Rng::fill(&mut r, &mut buf);
        assert_ne!(buf, [0u8; 16]);
        let arr: [u8; 32] = r.gen();
        assert_ne!(arr, [0u8; 32]);
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_mut_ref_and_unsized() {
        fn takes_impl(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        takes_impl(&mut r);
        let mr = &mut r;
        takes_impl(mr);
    }
}
