//! Minimal `proptest` shim.
//!
//! Source-compatible with the subset of proptest 1.x this workspace
//! uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!`, `any::<T>()`, range/tuple/`Just`/
//! mapped strategies, and `proptest::collection::vec`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic RNG seeded by the test's module path + name, there is
//! **no shrinking**, no failure persistence, and no forking. A failing
//! case panics with the generated values' `Debug` output where the
//! assertion message includes them.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_closed(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
}

/// `any::<T>()` and the [`Arbitrary`] trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_random {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )+};
    }
    impl_arbitrary_via_random!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool
    );

    // Note: unlike real proptest, floats are uniform in [0, 1) rather
    // than arbitrary bit patterns (no NaN/inf). The workspace only
    // draws floats from explicit ranges.
    impl_arbitrary_via_random!(f32, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy for vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test runner plumbing: config, RNG, case errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG seeded from the test's fully qualified name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped and retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest: too many prop_assume! rejections in {}",
                    stringify!($name),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match case {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", accepted + 1, stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, bool)> {
        (0i64..100, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, f in 0.0f64..1.0, n in 1usize..=4) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f), "f = {}", f);
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn tuples_and_map(p in arb_pair().prop_map(|(a, b)| if b { a } else { -a })) {
            prop_assert!((-99..100).contains(&p));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 3u8..10]) {
            prop_assert!((1..10).contains(&v));
            prop_assert_eq!(v, v);
        }

        #[test]
        fn assume_rejects(mut x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            x += 2;
            prop_assert_eq!(x % 2, 0, "x = {}", x);
            if x > 1000 { return Ok(()); }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        let s = crate::collection::vec(any::<u64>(), 3..4);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
