//! Federation seam: the execution interface the serving layer binds to.
//!
//! The paper evaluates one host against one computational-storage
//! device; scaling past a single Merkle tree and a single TrustZone
//! root means the serving layer must not care *what* executes a query —
//! one [`SharedCsaSystem`], or a sharded federation of independently
//! attested storage nodes (`ironsafe-scale`). [`QueryBackend`] is that
//! seam: exactly the three operations `ironsafe-serve` performs against
//! an execution engine, object-safe so a server can hold
//! `Arc<dyn QueryBackend>` and swap a federation in without touching
//! session management, admission control or audit plumbing.
//!
//! Every implementation must uphold the repo-wide determinism contract:
//! identical requests produce bit-identical rows and
//! [`CostBreakdown`](crate::CostBreakdown)s regardless of concurrency,
//! DOP, or (for federations) shard count.

use crate::system::QueryReport;
use crate::Result;
use ironsafe_obs::TraceSnapshot;
use ironsafe_sql::ast::Statement;
use ironsafe_tpch::queries::PaperQuery;

/// How far a federation pushes single-table work down into its shards.
///
/// Depth changes *where* the reduction happens — and therefore how many
/// rows cross the shard fan-in — never the merged answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushdownDepth {
    /// Push filter + projection *and* the partial aggregation down when
    /// the query shape allows it; shards return partial states.
    #[default]
    PartialAggregate,
    /// Push only filter + projection; shards return qualifying rows and
    /// the fan-in host re-aggregates everything itself.
    Rows,
}

/// Pick a pushdown depth from the planner's estimates: partial
/// aggregation pays off exactly when the shard-side filter still lets
/// many rows through (the fan-in would otherwise re-scan them all);
/// when almost nothing survives, shipping the few qualifying rows and
/// re-aggregating at the fan-in skips the partial-state machinery for
/// the same wire traffic.
pub fn choose_pushdown_depth(
    estimated_selectivity: f64,
    table_rows: u64,
    aggregates: bool,
) -> PushdownDepth {
    let surviving = estimated_selectivity.clamp(0.0, 1.0) * table_rows as f64;
    if aggregates && surviving > ROWS_PER_FANIN_BATCH {
        PushdownDepth::PartialAggregate
    } else {
        PushdownDepth::Rows
    }
}

/// Fan-in batch size under which re-aggregating shipped rows is cheaper
/// than managing shard-partial states.
const ROWS_PER_FANIN_BATCH: f64 = 256.0;

/// An execution engine the serving layer can run queries against.
pub trait QueryBackend: Send + Sync {
    /// Run one paper query under a per-request session key at the given
    /// degree of parallelism. Reports must be bit-identical at any DOP.
    fn run_query_with_dop(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)>;

    /// Run one ad-hoc statement (`SELECT`s concurrently, DML/DDL
    /// serialized) under a per-request session key.
    fn run_statement_with_dop(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)>;

    /// Drain the TEE-resident flight recorder(s): forensic event lines
    /// recorded by faulted or violating accesses, appended by the
    /// serving layer to the monitor audit trail on failure.
    fn take_flight_dump(&self) -> Vec<String>;

    /// Force any buffered (group-commit) transactions out to durable
    /// storage. The serving layer calls this on drain/shutdown so a
    /// partially-filled group is not left waiting for a flush trigger
    /// that will never come. Backends without a write buffer no-op.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

impl QueryBackend for crate::SharedCsaSystem {
    fn run_query_with_dop(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        SharedCsaSystem::run_query_with_dop(self, q, session_key, dop)
    }

    fn run_statement_with_dop(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        SharedCsaSystem::run_statement_with_dop(self, stmt, session_key, dop)
    }

    fn take_flight_dump(&self) -> Vec<String> {
        SharedCsaSystem::take_flight_dump(self)
    }

    fn flush(&self) -> Result<()> {
        SharedCsaSystem::flush(self)
    }
}

use crate::SharedCsaSystem;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostParams;
    use crate::system::{CsaSystem, SystemConfig};
    use ironsafe_tpch::queries::paper_queries;
    use std::sync::Arc;

    #[test]
    fn shared_system_serves_through_the_trait_object() {
        let data = ironsafe_tpch::generate(0.002, 42);
        let sys =
            CsaSystem::build(SystemConfig::VanillaCs, &data, CostParams::default()).unwrap();
        let shared = Arc::new(SharedCsaSystem::new(sys));
        let backend: Arc<dyn QueryBackend> = Arc::clone(&shared) as Arc<dyn QueryBackend>;
        let queries = paper_queries();
        let q = queries.iter().find(|q| q.id == 6).unwrap();
        let (direct, _) = shared.run_query(q, [3u8; 32]).unwrap();
        let (via_trait, _) = backend.run_query_with_dop(q, [3u8; 32], 1).unwrap();
        assert_eq!(direct.result, via_trait.result);
        assert_eq!(direct.breakdown, via_trait.breakdown);
    }
}
