//! Tamper-evident audit log.
//!
//! The paper requires every data-sharing operation (and every attack
//! attempt, e.g. crafted queries) to land in a log that cannot be
//! silently truncated or edited. Entries form a hash chain; the monitor
//! countersigns the chain head on demand, so a regulator holding the
//! monitor's public key can verify the full history offline.

use ironsafe_crypto::sha256::sha256_concat;

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub seq: u64,
    /// Logical timestamp supplied by the monitor.
    pub timestamp: i64,
    /// Which log stream this entry belongs to (from `logUpdate(l, ...)`),
    /// or `"monitor"` for the monitor's own decisions.
    pub stream: String,
    /// Identity key of the involved client.
    pub client_key: String,
    /// What happened (query text, decision, attack note...).
    pub message: String,
    /// Hash of the previous entry (all zero for the first).
    pub prev_hash: [u8; 32],
    /// Hash over this entry's contents ‖ `prev_hash`.
    pub hash: [u8; 32],
}

fn entry_hash(
    seq: u64,
    timestamp: i64,
    stream: &str,
    client_key: &str,
    message: &str,
    prev: &[u8; 32],
) -> [u8; 32] {
    sha256_concat(&[
        b"ironsafe-audit-v1",
        &seq.to_be_bytes(),
        &timestamp.to_be_bytes(),
        &(stream.len() as u32).to_be_bytes(),
        stream.as_bytes(),
        &(client_key.len() as u32).to_be_bytes(),
        client_key.as_bytes(),
        &(message.len() as u32).to_be_bytes(),
        message.as_bytes(),
        prev,
    ])
}

/// Hash-chained append-only log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry; returns its sequence number.
    pub fn append(&mut self, timestamp: i64, stream: &str, client_key: &str, message: &str) -> u64 {
        let seq = self.entries.len() as u64;
        let prev_hash = self.entries.last().map(|e| e.hash).unwrap_or([0; 32]);
        let hash = entry_hash(seq, timestamp, stream, client_key, message, &prev_hash);
        self.entries.push(AuditEntry {
            seq,
            timestamp,
            stream: stream.to_string(),
            client_key: client_key.to_string(),
            message: message.to_string(),
            prev_hash,
            hash,
        });
        seq
    }

    /// All entries.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Entries of one stream (what the regulator asks for).
    pub fn stream<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a AuditEntry> + 'a {
        self.entries.iter().filter(move |e| e.stream == name)
    }

    /// Hash of the chain head (all zero when empty).
    pub fn head(&self) -> [u8; 32] {
        self.entries.last().map(|e| e.hash).unwrap_or([0; 32])
    }

    /// Recompute every link; `false` if any entry was modified, reordered
    /// or removed from the middle.
    pub fn verify(&self) -> bool {
        self.first_bad_link().is_none()
    }

    /// Recompute every link and report the index of the first entry whose
    /// link fails to verify, or `None` when the whole chain is intact.
    ///
    /// A regulator uses this to localize tampering: everything *before*
    /// the returned index is still trustworthy (it hashes correctly up to
    /// that point), while the returned entry and everything after it must
    /// be treated as forged.
    pub fn first_bad_link(&self) -> Option<usize> {
        let mut prev = [0u8; 32];
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 || e.prev_hash != prev {
                return Some(i);
            }
            let expect = entry_hash(e.seq, e.timestamp, &e.stream, &e.client_key, &e.message, &prev);
            if expect != e.hash {
                return Some(i);
            }
            prev = e.hash;
        }
        None
    }

    /// Test/attack helper: raw mutable entry access.
    #[doc(hidden)]
    pub fn raw_entries_mut(&mut self) -> &mut Vec<AuditEntry> {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditLog {
        let mut log = AuditLog::new();
        log.append(1, "monitor", "Ka", "grant read");
        log.append(2, "audit", "Kb", "SELECT arrival FROM people");
        log.append(3, "monitor", "Kc", "DENY write");
        log
    }

    #[test]
    fn clean_chain_verifies() {
        let log = sample();
        assert!(log.verify());
        assert_eq!(log.entries().len(), 3);
        assert_ne!(log.head(), [0; 32]);
    }

    #[test]
    fn edited_message_detected() {
        let mut log = sample();
        log.raw_entries_mut()[1].message = "SELECT ssn FROM people".into();
        assert!(!log.verify());
    }

    #[test]
    fn tampered_middle_entry_reports_first_bad_index() {
        let mut log = sample();
        assert_eq!(log.first_bad_link(), None);
        // An attacker rewrites the middle entry in place. Entry 0 still
        // verifies; the chain breaks exactly at index 1 (its own hash no
        // longer matches its contents).
        log.raw_entries_mut()[1].message = "grant write".into();
        assert_eq!(log.first_bad_link(), Some(1));
        assert!(!log.verify());

        // If the attacker also recomputes entry 1's hash, the break moves
        // to index 2: entry 2's prev_hash now points at a hash that no
        // longer exists in the chain.
        let mut log = sample();
        let e = log.raw_entries_mut()[1].clone();
        let forged_hash = super::entry_hash(
            e.seq,
            e.timestamp,
            &e.stream,
            &e.client_key,
            "grant write",
            &e.prev_hash,
        );
        let slot = &mut log.raw_entries_mut()[1];
        slot.message = "grant write".into();
        slot.hash = forged_hash;
        assert_eq!(log.first_bad_link(), Some(2));
    }

    #[test]
    fn dropped_middle_entry_detected() {
        let mut log = sample();
        log.raw_entries_mut().remove(1);
        assert!(!log.verify());
        // The dropped entry shifts everything after it: index 1 now holds
        // the old entry 2, whose seq/prev_hash both mismatch.
        assert_eq!(log.first_bad_link(), Some(1));
    }

    #[test]
    fn reordered_entries_detected() {
        let mut log = sample();
        log.raw_entries_mut().swap(0, 2);
        assert!(!log.verify());
    }

    #[test]
    fn truncation_changes_head() {
        let mut log = sample();
        let head = log.head();
        log.raw_entries_mut().pop();
        // Still internally consistent (an attacker may truncate the tail),
        // but the head no longer matches what the monitor signed.
        assert!(log.verify());
        assert_ne!(log.head(), head);
    }

    #[test]
    fn stream_filter() {
        let log = sample();
        assert_eq!(log.stream("audit").count(), 1);
        assert_eq!(log.stream("monitor").count(), 2);
    }

    #[test]
    fn empty_log_verifies() {
        assert!(AuditLog::new().verify());
        assert_eq!(AuditLog::new().head(), [0; 32]);
    }
}
