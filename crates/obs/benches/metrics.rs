//! Microbenchmarks for the telemetry hot path.
//!
//! The acceptance bar: a registered counter increment must cost well
//! under 50 ns, and disabled-span operations must be near-free.

use criterion::{criterion_group, criterion_main, Criterion};
use ironsafe_obs::metrics::Registry;
use ironsafe_obs::span::Span;

fn bench_hot_path(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("storage.page.read");

    c.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    c.bench_function("counter_add", |b| b.iter(|| counter.add(criterion::black_box(3))));

    let histogram = registry.histogram("storage.merkle.path_len");
    c.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(criterion::black_box(12)))
    });

    // No trace installed: enter + drop must be a no-op.
    c.bench_function("span_enter_disabled", |b| {
        b.iter(|| Span::enter(criterion::black_box("query/q1/scan")))
    });
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
