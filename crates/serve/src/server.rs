//! The query server: bounded per-session queues, a fair worker pool,
//! and deterministic execution over one shared system.
//!
//! ## Admission and backpressure
//!
//! Every session owns a bounded queue ([`ServeConfig::queue_capacity`]).
//! [`QueryServer::submit`] either admits the job (returning a
//! [`Ticket`] the caller blocks on for the response) or rejects it
//! immediately: [`AdmitError::QueueFull`] when that session's queue is
//! at capacity, [`AdmitError::Busy`] when the server-wide backlog hit
//! [`ServeConfig::max_pending`], [`AdmitError::SessionClosed`] when the
//! monitor has revoked/expired the session, and
//! [`AdmitError::ShuttingDown`] during drain. Rejection instead of
//! blocking is what lets a saturated server shed load with bounded
//! memory — the client retries with its own policy.
//!
//! ## Fairness and determinism
//!
//! Workers pop jobs round-robin across session queues, so a chatty
//! session cannot starve the rest. Which worker runs which job is *not*
//! deterministic — but it does not need to be: queries execute on
//! copy-on-write read views whose results and simulated costs are
//! interleaving-independent, so a seeded arrival schedule produces
//! bit-identical responses and simulated-time totals on every run.
//!
//! ## Shutdown
//!
//! [`QueryServer::shutdown`] stops admissions, lets the pool drain every
//! queued job (each still gets its response), then joins the workers —
//! `serve.query.completed` ends equal to `serve.query.admitted`.

use crate::metrics::ServeMetrics;
use crate::session::{SessionHandle, SessionManager};
use ironsafe_csa::{QueryBackend, QueryReport, SharedCsaSystem};
use ironsafe_monitor::{MonitorError, TrustedMonitor};
use ironsafe_obs::{Span, Trace, TraceCtx, TraceSnapshot};
use ironsafe_tpch::queries::PaperQuery;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Server sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded depth of each session's request queue.
    pub queue_capacity: usize,
    /// Server-wide cap on queued (not yet running) queries; admissions
    /// beyond it are rejected [`AdmitError::Busy`].
    pub max_pending: usize,
    /// Logical ticks of inactivity before a session is expired by
    /// [`QueryServer::expire_idle`].
    pub idle_timeout: i64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4, queue_capacity: 16, max_pending: 256, idle_timeout: 10_000 }
    }
}

/// One unit of work a session can submit.
#[derive(Debug, Clone)]
pub enum Job {
    /// A (multi-stage) paper benchmark query, run under the session's
    /// channel key. Bypasses per-statement policy rewrite — this is the
    /// measurement path.
    Query(PaperQuery),
    /// Raw SQL, routed through the monitor: policy check, rewrite,
    /// per-query session key, audit — the paper's Figure 5 path.
    Sql(String),
}

/// Why an admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// No session with this id was ever opened on this server.
    UnknownSession(u64),
    /// The session is revoked or expired (reason from the monitor).
    SessionClosed {
        /// The refused session.
        session_id: u64,
        /// `"revoked"` or `"expired"`.
        reason: String,
    },
    /// This session's bounded queue is at capacity; retry after a
    /// response arrives.
    QueueFull {
        /// The session whose queue is full.
        session_id: u64,
    },
    /// The server-wide backlog is at `max_pending`.
    Busy,
    /// The server is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownSession(id) => write!(f, "unknown session {id}"),
            AdmitError::SessionClosed { session_id, reason } => {
                write!(f, "session {session_id} is {reason}")
            }
            AdmitError::QueueFull { session_id } => {
                write!(f, "session {session_id} queue is full")
            }
            AdmitError::Busy => write!(f, "server backlog full"),
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A per-request execution failure, delivered in the response (the
/// server itself never panics on these).
#[derive(Debug)]
pub enum ServeError {
    /// The monitor refused the request (closed session, policy denial,
    /// malformed SQL).
    Monitor(MonitorError),
    /// The engine failed executing the (already authorized) query.
    Exec(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Monitor(e) => write!(f, "monitor: {e}"),
            ServeError::Exec(m) => write!(f, "execution: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The server's reply to one admitted job.
#[derive(Debug)]
pub struct QueryResponse {
    /// Session the job belonged to.
    pub session_id: u64,
    /// Server-wide admission sequence number.
    pub seq: u64,
    /// Report on success, clean per-request error otherwise.
    pub outcome: Result<QueryReport, ServeError>,
    /// Telemetry trace of the run (span tree behind the breakdown).
    pub trace: Option<TraceSnapshot>,
}

/// Handle to one admitted job; blocks for its response.
#[derive(Debug)]
pub struct Ticket {
    /// Admission sequence number (also in the response).
    pub seq: u64,
    rx: Receiver<QueryResponse>,
}

impl Ticket {
    /// Block until the server delivers the response.
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().expect("server dropped a response channel")
    }
}

struct QueuedJob {
    seq: u64,
    job: Job,
    reply: Sender<QueryResponse>,
    /// Admission time, for the `serve.slo.queue_wait_ns` histogram.
    enqueued: std::time::Instant,
}

struct SessionEntry {
    handle: SessionHandle,
    database: String,
    queue: VecDeque<QueuedJob>,
    /// Set when the session is revoked/expired/closed; new admissions
    /// are refused but already-queued jobs still drain.
    closed: bool,
    /// Per-session telemetry root: every query executed for this
    /// session records a `session-<id>` root span in this trace.
    trace: Trace,
    /// Degree of parallelism for this session's read-only queries,
    /// clamped to the worker-pool size at open time.
    dop: usize,
}

#[derive(Default)]
struct DispatchState {
    sessions: HashMap<u64, SessionEntry>,
    /// Round-robin order (session open order).
    order: Vec<u64>,
    cursor: usize,
    /// Jobs queued and not yet popped by a worker.
    pending: usize,
    /// Jobs popped and currently executing.
    in_flight: usize,
    shutting_down: bool,
}

struct ServerShared {
    system: Arc<dyn QueryBackend>,
    sessions: SessionManager,
    state: Mutex<DispatchState>,
    work: Condvar,
    metrics: ServeMetrics,
}

/// The concurrent multi-session query server.
pub struct QueryServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
    config: ServeConfig,
}

impl QueryServer {
    /// Start a server over one shared system and one monitor, spawning
    /// the worker pool.
    pub fn start(
        system: Arc<SharedCsaSystem>,
        monitor: Arc<parking_lot::Mutex<TrustedMonitor>>,
        config: ServeConfig,
    ) -> Self {
        Self::start_with_backend(system as Arc<dyn QueryBackend>, monitor, config)
    }

    /// [`QueryServer::start`] over any execution backend — one shared
    /// system or a sharded federation (`ironsafe-scale`). The session,
    /// admission and audit machinery is identical either way.
    pub fn start_with_backend(
        system: Arc<dyn QueryBackend>,
        monitor: Arc<parking_lot::Mutex<TrustedMonitor>>,
        config: ServeConfig,
    ) -> Self {
        let shared = Arc::new(ServerShared {
            system,
            sessions: SessionManager::new(monitor, config.idle_timeout),
            state: Mutex::new(DispatchState::default()),
            work: Condvar::new(),
            metrics: ServeMetrics::new(),
        });
        // `workers == 0` is allowed: no pool is spawned, jobs queue but
        // never execute (admission-control tests use this to observe
        // backpressure without racing a drain).
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        QueryServer { shared, workers, next_seq: AtomicU64::new(0), config }
    }

    /// The server's metric handles (register them on a
    /// [`Registry`](ironsafe_obs::Registry) to export).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The session manager (revocation, idle sweeps, monitor access).
    pub fn sessions(&self) -> &SessionManager {
        &self.shared.sessions
    }

    /// Open a session for `client` against `database` (serial execution).
    pub fn open_session(&self, client: &str, database: &str) -> SessionHandle {
        self.open_session_with_dop(client, database, 1)
    }

    /// Open a session whose read-only queries run at `dop` on the morsel
    /// pool. The request is clamped to the server's worker-pool size (at
    /// least 1), so one session cannot oversubscribe the machine.
    /// Results stay bit-identical to serial at any granted DOP.
    pub fn open_session_with_dop(&self, client: &str, database: &str, dop: usize) -> SessionHandle {
        let granted = dop.clamp(1, self.config.workers.max(1));
        let handle = self.shared.sessions.open(client);
        let mut st = self.shared.state.lock().unwrap();
        st.order.push(handle.id);
        st.sessions.insert(
            handle.id,
            SessionEntry {
                handle: handle.clone(),
                database: database.to_string(),
                queue: VecDeque::new(),
                closed: false,
                trace: Trace::new(),
                dop: granted,
            },
        );
        self.shared.metrics.sessions_active.add(1);
        handle
    }

    /// The DOP granted to a session at open time.
    pub fn session_dop(&self, session_id: u64) -> Option<usize> {
        let st = self.shared.state.lock().unwrap();
        st.sessions.get(&session_id).map(|e| e.dop)
    }

    /// Revoke a session: the monitor refuses further use, new
    /// admissions are rejected, queued jobs drain with per-request
    /// errors.
    pub fn revoke_session(&self, session_id: u64) -> Result<(), MonitorError> {
        self.shared.sessions.revoke(session_id)?;
        self.close_locally(&[session_id]);
        Ok(())
    }

    /// Run the idle-timeout sweep; returns the expired session ids.
    pub fn expire_idle(&self) -> Vec<u64> {
        let expired = self.shared.sessions.expire_idle();
        self.close_locally(&expired);
        expired
    }

    fn close_locally(&self, ids: &[u64]) {
        let mut st = self.shared.state.lock().unwrap();
        let mut closed = 0;
        for id in ids {
            if let Some(entry) = st.sessions.get_mut(id) {
                if !entry.closed {
                    entry.closed = true;
                    closed += 1;
                }
            }
        }
        self.shared.metrics.sessions_active.add(-closed);
    }

    /// Submit a job on a session. Returns a [`Ticket`] on admission or
    /// an immediate [`AdmitError`] — never blocks on a full queue.
    pub fn submit(&self, session_id: u64, job: Job) -> Result<Ticket, AdmitError> {
        let mut st = self.shared.state.lock().unwrap();
        if st.shutting_down {
            self.shared.metrics.rejected.inc();
            return Err(AdmitError::ShuttingDown);
        }
        if st.pending >= self.config.max_pending {
            self.shared.metrics.rejected.inc();
            return Err(AdmitError::Busy);
        }
        let entry = match st.sessions.get_mut(&session_id) {
            Some(e) => e,
            None => {
                self.shared.metrics.rejected.inc();
                return Err(AdmitError::UnknownSession(session_id));
            }
        };
        if entry.closed {
            let reason = match self.shared.sessions.state(session_id) {
                Some(ironsafe_monitor::SessionState::Expired) => "expired",
                _ => "revoked",
            };
            self.shared.metrics.rejected.inc();
            return Err(AdmitError::SessionClosed { session_id, reason: reason.to_string() });
        }
        if entry.queue.len() >= self.config.queue_capacity {
            self.shared.metrics.rejected.inc();
            return Err(AdmitError::QueueFull { session_id });
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        entry.queue.push_back(QueuedJob {
            seq,
            job,
            reply: tx,
            enqueued: std::time::Instant::now(),
        });
        st.pending += 1;
        self.shared.metrics.admitted.inc();
        self.shared.metrics.queue_depth.set(st.pending as i64);
        drop(st);
        self.shared.work.notify_one();
        Ok(Ticket { seq, rx })
    }

    /// Export the per-session telemetry trace (root spans of every
    /// query executed for this session).
    pub fn session_trace(&self, session_id: u64) -> Option<TraceSnapshot> {
        let st = self.shared.state.lock().unwrap();
        st.sessions.get(&session_id).map(|e| e.trace.snapshot())
    }

    /// Stop admissions, drain every queued job, join the pool. Every
    /// admitted query still receives its response; on return
    /// `serve.query.completed == serve.query.admitted`.
    pub fn shutdown(mut self) -> ServeMetrics {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutting_down = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Every admitted statement has completed; push any group-commit
        // buffer the backend still holds out to durable storage so a
        // drained server leaves nothing uncommitted behind.
        let _ = self.shared.system.flush();
        self.shared.metrics.clone()
    }
}

/// Pop the next job, rotating fairly across session queues.
fn pop_next(st: &mut DispatchState) -> Option<(SessionHandle, String, Trace, usize, QueuedJob)> {
    let n = st.order.len();
    for i in 0..n {
        let idx = (st.cursor + i) % n;
        let sid = st.order[idx];
        if let Some(entry) = st.sessions.get_mut(&sid) {
            if let Some(job) = entry.queue.pop_front() {
                st.cursor = (idx + 1) % n;
                st.pending -= 1;
                st.in_flight += 1;
                return Some((
                    entry.handle.clone(),
                    entry.database.clone(),
                    entry.trace.clone(),
                    entry.dop,
                    job,
                ));
            }
        }
    }
    None
}

fn worker_loop(shared: Arc<ServerShared>) {
    loop {
        let next = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(item) = pop_next(&mut st) {
                    shared.metrics.queue_depth.set(st.pending as i64);
                    break Some(item);
                }
                if st.shutting_down {
                    break None;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let Some((handle, database, trace, dop, queued)) = next else {
            // Draining: queues are empty and no new work can arrive.
            return;
        };
        shared.metrics.queue_wait_ns.record(queued.enqueued.elapsed().as_nanos() as u64);
        let service_start = std::time::Instant::now();
        let outcome = execute(&shared, &handle, &database, &trace, dop, &queued);
        shared.metrics.service_ns.record(service_start.elapsed().as_nanos() as u64);
        let (outcome, trace_snapshot) = outcome;
        let _ = queued.reply.send(QueryResponse {
            session_id: handle.id,
            seq: queued.seq,
            outcome,
            trace: trace_snapshot,
        });
        shared.metrics.completed.inc();
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= 1;
        drop(st);
        shared.work.notify_all();
    }
}

/// Convert an engine failure into the per-request [`ServeError`],
/// first recording any detected integrity/freshness violation in the
/// monitor's audit log. Only the failing session sees the error; the
/// audit entry is the durable record a regulator can later inspect.
fn exec_error(
    shared: &ServerShared,
    handle: &SessionHandle,
    e: ironsafe_csa::CsaError,
) -> ServeError {
    use ironsafe_csa::CsaError;
    use ironsafe_storage::StorageError;
    use ironsafe_tee::TeeError;
    // Storage failures reach the serving layer either directly or
    // wrapped by the SQL engine that was driving the pager.
    let storage = match &e {
        CsaError::Storage(se) | CsaError::Sql(ironsafe_sql::SqlError::Storage(se)) => Some(se),
        _ => None,
    };
    let kind = match storage {
        Some(StorageError::IntegrityViolation(_)) => Some("integrity"),
        Some(StorageError::FreshnessViolation(_)) => Some("freshness"),
        Some(StorageError::Tee(TeeError::RpmbViolation(_))) => Some("freshness"),
        _ => None,
    };
    if let Some(kind) = kind {
        let ts = shared.sessions.now();
        shared.sessions.monitor().lock().audit().append(
            ts,
            "violation",
            &handle.client,
            &format!("{kind} violation detected executing session {} query: {e}", handle.id),
        );
        shared.metrics.violations_audited.inc();
    }
    // Any storage-level failure (a detected violation or a transient
    // fault that exhausted its retry budget) dumps the TEE-resident
    // flight recorder into the audit trail: the deterministic forensic
    // record of every faulted page access leading up to the failure.
    if storage.is_some() {
        let dump = shared.system.take_flight_dump();
        if !dump.is_empty() {
            let ts = shared.sessions.now();
            let monitor = shared.sessions.monitor();
            let guard = monitor.lock();
            for line in &dump {
                guard.audit().append(ts, "flight", &handle.client, line);
            }
            shared.metrics.flight_dumps.inc();
        }
    }
    ServeError::Exec(e.to_string())
}

/// Run one job under the session's span root, touching the session
/// first so revoked/expired sessions yield clean errors.
fn execute(
    shared: &ServerShared,
    handle: &SessionHandle,
    database: &str,
    session_trace: &Trace,
    dop: usize,
    queued: &QueuedJob,
) -> (Result<QueryReport, ServeError>, Option<TraceSnapshot>) {
    // Root span in the session's own trace; the query's internal trace
    // (installed by the CSA layer) stacks on top and is returned in the
    // response. The causal context is rooted here at the admission
    // sequence number — the CSA layer re-roots its own trace at the
    // paper query id, and the pager/morsel layers refine from there.
    let _session_scope = session_trace.install();
    let _ctx = TraceCtx::query(queued.seq).install();
    let root = Span::enter(&format!("session-{}/query-{}", handle.id, queued.seq));
    if let Err(e) = shared.sessions.touch(handle.id) {
        drop(root);
        return (Err(ServeError::Monitor(e)), None);
    }
    let result = match &queued.job {
        Job::Query(q) => shared
            .system
            .run_query_with_dop(q, handle.key, dop)
            .map_err(|e| exec_error(shared, handle, e)),
        Job::Sql(sql) => match shared.sessions.authorize(&handle.client, database, sql) {
            Ok(auth) => {
                let run = shared
                    .system
                    .run_statement_with_dop(&auth.statement, auth.session_key, dop)
                    .map_err(|e| exec_error(shared, handle, e));
                shared.sessions.cleanup(auth.session_id);
                run
            }
            Err(e) => Err(ServeError::Monitor(e)),
        },
    };
    drop(root);
    match result {
        Ok((report, trace)) => (Ok(report), trace),
        Err(e) => (Err(e), None),
    }
}
