//! Cross-crate property tests: the SQL engine against a hand-rolled
//! oracle, the secure channel under fragmentation, and the secure pager
//! under random operation sequences (with reboots).

use ironsafe::crypto::group::Group;
use ironsafe::csa::net::channel_pair;
use ironsafe::sql::value::Value;
use ironsafe::sql::{Database, Row};
use ironsafe::storage::pager::{Pager, PlainPager};
use ironsafe::storage::SecurePager;
use ironsafe::tee::trustzone::Manufacturer;
use proptest::prelude::*;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// SQL engine vs oracle: filters, aggregates and joins over random data
// must match a direct in-memory evaluation.
// ---------------------------------------------------------------------

fn arb_row() -> impl Strategy<Value = (i64, f64, bool)> {
    (-50i64..50, -10.0f64..10.0, any::<bool>())
}

fn load(rows: &[(i64, f64, bool)]) -> Database {
    let mut db = Database::new(PlainPager::new());
    db.execute("CREATE TABLE t (a INT, b FLOAT, flag INT)").unwrap();
    let encoded: Vec<Row> = rows
        .iter()
        .map(|(a, b, f)| vec![Value::Int(*a), Value::Float(*b), Value::Int(*f as i64)])
        .collect();
    db.insert_rows("t", encoded).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_oracle(rows in proptest::collection::vec(arb_row(), 0..120), lo in -50i64..50, hi in -50i64..50) {
        let mut db = load(&rows);
        let r = db
            .execute(&format!("SELECT COUNT(*) FROM t WHERE a >= {lo} AND a < {hi} OR flag = 1"))
            .unwrap();
        let expect = rows
            .iter()
            .filter(|(a, _, f)| (*a >= lo && *a < hi) || *f)
            .count() as i64;
        prop_assert_eq!(r.rows()[0][0].as_i64().unwrap(), expect);
    }

    #[test]
    fn aggregates_match_oracle(rows in proptest::collection::vec(arb_row(), 1..120)) {
        let mut db = load(&rows);
        let r = db.execute("SELECT COUNT(*), SUM(a), MIN(a), MAX(a), AVG(b) FROM t").unwrap();
        let row = &r.rows()[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), rows.len() as i64);
        prop_assert_eq!(row[1].as_i64().unwrap(), rows.iter().map(|(a, _, _)| a).sum::<i64>());
        prop_assert_eq!(row[2].as_i64().unwrap(), *rows.iter().map(|(a, _, _)| a).min().unwrap());
        prop_assert_eq!(row[3].as_i64().unwrap(), *rows.iter().map(|(a, _, _)| a).max().unwrap());
        let avg = rows.iter().map(|(_, b, _)| b).sum::<f64>() / rows.len() as f64;
        prop_assert!((row[4].as_f64().unwrap() - avg).abs() < 1e-9);
    }

    #[test]
    fn group_by_matches_oracle(rows in proptest::collection::vec(arb_row(), 0..120)) {
        let mut db = load(&rows);
        let r = db
            .execute("SELECT a % 5, COUNT(*) FROM t GROUP BY a % 5 ORDER BY a % 5")
            .unwrap();
        let mut expect = std::collections::BTreeMap::new();
        for (a, _, _) in &rows {
            *expect.entry(a % 5).or_insert(0i64) += 1;
        }
        prop_assert_eq!(r.rows().len(), expect.len());
        for row in r.rows() {
            let key = row[0].as_i64().unwrap();
            prop_assert_eq!(row[1].as_i64().unwrap(), expect[&key], "group {}", key);
        }
    }

    #[test]
    fn join_matches_oracle(
        left in proptest::collection::vec(-8i64..8, 0..40),
        right in proptest::collection::vec(-8i64..8, 0..40),
    ) {
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE l (x INT)").unwrap();
        db.execute("CREATE TABLE r (y INT)").unwrap();
        db.insert_rows("l", left.iter().map(|v| vec![Value::Int(*v)]).collect()).unwrap();
        db.insert_rows("r", right.iter().map(|v| vec![Value::Int(*v)]).collect()).unwrap();
        let got = db.execute("SELECT COUNT(*) FROM l, r WHERE x = y").unwrap();
        let expect: i64 = left
            .iter()
            .map(|x| right.iter().filter(|y| *y == x).count() as i64)
            .sum();
        prop_assert_eq!(got.rows()[0][0].as_i64().unwrap(), expect);
    }

    #[test]
    fn order_by_limit_matches_oracle(rows in proptest::collection::vec(arb_row(), 0..120), k in 0u64..20) {
        let mut db = load(&rows);
        let r = db.execute(&format!("SELECT a FROM t ORDER BY a DESC LIMIT {k}")).unwrap();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _, _)| *a).collect();
        expect.sort_unstable_by(|x, y| y.cmp(x));
        expect.truncate(k as usize);
        let got: Vec<i64> = r.rows().iter().map(|row| row[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// Secure channel: arbitrary payload streams survive fragmentation and
// in-order delivery; any reordering is refused.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn channel_stream_roundtrips(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..20)) {
        let (mut tx, mut rx) = channel_pair(&[3; 32]);
        for p in &payloads {
            let record = tx.seal(p);
            let back = rx.open(&record).unwrap();
            prop_assert_eq!(&back, p);
        }
        prop_assert_eq!(tx.messages, payloads.len() as u64);
    }

    #[test]
    fn channel_rejects_any_skipped_record(n in 2usize..10, skip in 0usize..9) {
        let skip = skip % (n - 1); // skip one of the first n-1 records
        let (mut tx, mut rx) = channel_pair(&[4; 32]);
        let records: Vec<_> = (0..n).map(|i| tx.seal(&[i as u8; 16])).collect();
        for (i, r) in records.iter().enumerate() {
            if i == skip {
                continue; // dropped by the adversary
            }
            let result = rx.open(r);
            if i < skip {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err(), "record {} after a gap must be refused", i);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Secure pager: random write/commit/reboot sequences never lose
// committed data and never serve stale data.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PagerOp {
    Write { page: u8, fill: u8 },
    Commit,
    Reboot,
}

fn arb_op() -> impl Strategy<Value = PagerOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(page, fill)| PagerOp::Write { page, fill }),
        Just(PagerOp::Commit),
        Just(PagerOp::Reboot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pager_sequences_preserve_committed_state(ops in proptest::collection::vec(arb_op(), 1..40), seed in any::<u64>()) {
        const PAGES: u8 = 6;
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"prop-vendor");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let device = mfr.make_device("prop", 8, &mut rng);
        let mut pager = SecurePager::create(device, seed).unwrap();
        let payload_size = pager.payload_size();
        for _ in 0..PAGES {
            pager.allocate_page().unwrap();
        }
        pager.commit().unwrap();

        // Shadow model of *committed* state.
        let mut committed: Vec<u8> = vec![0; PAGES as usize];
        let mut pending: Vec<u8> = committed.clone();
        let mut dirty = false;

        for op in ops {
            match op {
                PagerOp::Write { page, fill } => {
                    let page = page % PAGES;
                    let data = vec![fill; payload_size];
                    pager.write_page(page as u64, &data).unwrap();
                    pending[page as usize] = fill;
                    dirty = true;
                }
                PagerOp::Commit => {
                    pager.commit().unwrap();
                    committed = pending.clone();
                    dirty = false;
                }
                PagerOp::Reboot => {
                    let (tz, medium) = pager.into_parts();
                    if dirty {
                        // Uncommitted writes changed the medium past the
                        // RPMB root: reopen must refuse (and the run ends —
                        // the data is unrecoverable without the root).
                        prop_assert!(SecurePager::open(tz, medium, seed ^ 1).is_err());
                        return Ok(());
                    }
                    pager = SecurePager::open(tz, medium, seed ^ 1).unwrap();
                    pending = committed.clone();
                }
            }
        }
        // Whatever survived must match the shadow of the *current* state.
        let mut buf = vec![0u8; payload_size];
        for p in 0..PAGES {
            pager.read_page(p as u64, &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == pending[p as usize]), "page {} content", p);
        }
    }
}
