//! # ironsafe-tee
//!
//! Software models of the two trusted-execution technologies IronSafe spans:
//!
//! * [`sgx`] — Intel SGX: user-level enclaves with measured launch, a
//!   size-limited Enclave Page Cache ([`sgx::EpcSimulator`]) whose
//!   evictions ("EPC paging") dominate host-side overhead in the paper,
//!   costed enclave transitions, sealing, and remote attestation quotes
//!   verified by an IAS/CAS-style [`sgx::AttestationService`].
//! * [`trustzone`] — ARM TrustZone: a secure/normal world split, secure
//!   boot producing a certificate chain rooted in the device ROTPK, a
//!   hardware-unique key (HUK), a replay-protected memory block
//!   ([`trustzone::Rpmb`]) and the two trusted applications the paper's
//!   storage system runs (attestation TA and secure-storage TA).
//!
//! The models are *behavioural*: they reproduce the protocols, state
//! machines, failure modes (tampered images, impersonation, rollback) and
//! cost drivers (EPC misses, world switches) of the real hardware, which is
//! exactly what the paper's evaluation exercises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod image;
pub mod sgx;
pub mod trustzone;

pub use flight::{flight_recorder_capacity, FlightEvent, FlightRecorder};
pub use image::{Measurement, SoftwareImage};

/// Errors raised by the TEE models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// An attestation quote or boot certificate failed verification.
    AttestationFailed(&'static str),
    /// The platform refused an operation (e.g. enclave not initialized).
    InvalidState(&'static str),
    /// Sealed data failed authentication on unseal.
    UnsealFailed,
    /// RPMB authentication or replay check failed.
    RpmbViolation(&'static str),
    /// Secure boot refused an image.
    BootFailed(&'static str),
    /// Enclave entry aborted under EPC pressure (transient: re-entry
    /// after the backoff usually succeeds once residency drains).
    EpcPressure(&'static str),
    /// The RPMB device refused a write because it was busy (transient:
    /// the client recomputes the write counter and re-issues).
    RpmbBusy(&'static str),
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::AttestationFailed(m) => write!(f, "attestation failed: {m}"),
            TeeError::InvalidState(m) => write!(f, "invalid TEE state: {m}"),
            TeeError::UnsealFailed => write!(f, "unseal failed"),
            TeeError::RpmbViolation(m) => write!(f, "RPMB violation: {m}"),
            TeeError::BootFailed(m) => write!(f, "secure boot failed: {m}"),
            TeeError::EpcPressure(m) => write!(f, "EPC pressure: {m}"),
            TeeError::RpmbBusy(m) => write!(f, "RPMB busy: {m}"),
        }
    }
}

impl std::error::Error for TeeError {}

impl ironsafe_faults::Transient for TeeError {
    /// EPC pressure and a busy RPMB clear on their own; everything else
    /// (failed attestation, destroyed enclave, rollback detection,
    /// unseal failure) is a protocol event, not noise.
    fn is_transient(&self) -> bool {
        matches!(self, TeeError::EpcPressure(_) | TeeError::RpmbBusy(_))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TeeError>;
