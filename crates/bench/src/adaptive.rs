//! The `paperbench adaptive` harness: the telemetry-driven offload
//! optimizer against both static placement policies, exported as the
//! `BENCH_10.json` snapshot.
//!
//! The sweep covers a selectivity × EPC-pressure grid on the IronSafe
//! (scs) configuration. At every grid point three policies run the same
//! Q1 selectivity variant on identically prepared systems:
//!
//! * **all-host** (`PartitionStrategy::AllHost`) — every fragment ships
//!   raw pages to the host;
//! * **all-offload** (`PartitionStrategy::Static`) — the paper's static
//!   partitioner, pushing every select down to storage;
//! * **adaptive** (`PartitionStrategy::Adaptive`) — the cost-based
//!   planner, primed by one prior offload run so its EWMA estimates
//!   carry the observed selectivity, wire width and temp density.
//!
//! Every policy runs the query twice (prime + measured, second run
//! reported) so Merkle-cache warm-up is identical, and the harness
//! asserts the contract the optimizer must keep: result digests
//! bit-identical across all three policies, and the adaptive total no
//! worse than the better static policy at *every* point, beating each
//! static policy by ≥20% somewhere on the grid.
//!
//! A separate demo deliberately mis-pins the adaptive planner's
//! estimate (selectivity 1% against an actual ~100%) and runs once with
//! mid-flight re-planning enabled and once without: the re-planned run
//! must be no slower, must charge exactly the re-plans it committed,
//! and must return bit-identical rows.
//!
//! Everything reported is simulated nanoseconds from the calibrated
//! cost model, so the whole snapshot is byte-deterministic and `--check`
//! compares it against the committed `BENCH_10.json` byte for byte (the
//! optimizer regression gate).

use crate::figures::{q1_with_selectivity, SEED};
use ironsafe_csa::{
    CostParams, CsaSystem, Estimate, PartitionStrategy, QueryReport, ReplanPolicy, SystemConfig,
};
use ironsafe_tpch::generate;
use ironsafe_tpch::queries::{PaperQuery, QueryStage};
use ironsafe_tpch::TpchData;

/// Default scale factor for the adaptive gate.
pub const ADAPTIVE_SF: f64 = 0.002;

/// Selectivity grid (percent of lineitem rows each variant keeps).
pub const ADAPTIVE_SELECTIVITIES: [u32; 6] = [1, 10, 25, 50, 75, 100];

/// EPC background pressure grid, in resident 4 KiB pages preloaded
/// (and re-touched between stages) by a simulated co-tenant: none,
/// near the LRU paging cliff (query temp pages still fit), and at it
/// (the wider temp working sets evict the tenant, whose cyclic
/// re-touch then faults its whole set — Figure 9a's wall). The default
/// EPC budget is 96 MiB = 24576 pages.
pub const ADAPTIVE_PRESSURES: [u64; 3] = [0, 24_000, 24_420];

/// Storage-side core grid (the paper's Figure 10 axis): the default
/// 8-way scan parallelism, and a constrained 2-core device where
/// serialization quadruples and pushdown stops paying much earlier.
pub const ADAPTIVE_STORAGE_CORES: [u32; 2] = [8, 2];

/// The two query shapes the grid sweeps — the crossovers sit on
/// opposite ends of the placement space:
///
/// * `"agg"` — the Q1 aggregation variant: narrow projection, heavy
///   host reduction. Pushdown wins almost everywhere; raw pages win
///   only once the filter keeps everything.
/// * `"wide"` — a full-detail export: every lineitem column, no
///   reduction. Serialized rows outweigh raw pages early, so the
///   static pushdown regresses exactly as the paper's
///   weakly-selective CS case.
pub const ADAPTIVE_SHAPES: [&str; 2] = ["agg", "wide"];

/// The `"wide"` shape: Q1's quantity filter over the full 16-column
/// lineitem row, with no host-side reduction.
pub fn q1_wide_with_selectivity(selectivity_pct: u32) -> PaperQuery {
    let cut = (selectivity_pct as f64 / 100.0 * 50.0).round().max(1.0) as i64;
    PaperQuery {
        id: 1,
        name: "Q1 wide-export variant",
        stages: vec![QueryStage {
            sql: format!(
                "SELECT l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity, \
                 l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus, \
                 l_shipdate, l_commitdate, l_receiptdate, l_shipinstruct, l_shipmode, \
                 l_comment FROM lineitem WHERE l_quantity <= {cut}"
            ),
            into: None,
        }],
    }
}

fn shape_query(shape: &str, sel: u32) -> PaperQuery {
    match shape {
        "agg" => q1_with_selectivity(sel),
        _ => q1_wide_with_selectivity(sel),
    }
}

/// One (shape, selectivity, pressure) grid point: simulated totals for
/// the three policies plus the placement the optimizer settled on.
#[derive(Debug, Clone)]
pub struct AdaptiveCell {
    /// Query shape (`"agg"` or `"wide"`).
    pub shape: &'static str,
    /// Storage-side cores the device scans and serializes with.
    pub storage_cores: u32,
    /// Selectivity of the variant, percent.
    pub selectivity_pct: u32,
    /// Background EPC pressure, pages.
    pub pressure_pages: u64,
    /// Simulated total, every fragment shipped as raw pages.
    pub allhost_ns: f64,
    /// Simulated total, every fragment pushed down (static partitioner).
    pub offload_ns: f64,
    /// Simulated total for the primed adaptive planner.
    pub adaptive_ns: f64,
    /// Placement the adaptive plan reproduced bit-identically:
    /// `"offload"`, `"ship_pages"`, or `"mixed"`.
    pub chosen: &'static str,
    /// SHA-256 (truncated) over the rendered rows — identical across
    /// all three policies, asserted by the sweep.
    pub result_digest: String,
}

/// The mis-estimate recovery demo: one deliberately wrong pin, with and
/// without mid-flight re-planning.
#[derive(Debug, Clone)]
pub struct ReplanDemo {
    /// Pinned selectivity estimate fed to the planner.
    pub pinned_selectivity: f64,
    /// Actual selectivity of the query, percent.
    pub actual_pct: u32,
    /// Simulated total with re-planning disabled (the stubborn run).
    pub stubborn_ns: f64,
    /// Simulated total with the morsel-driver divergence check armed.
    pub replanned_ns: f64,
    /// `plan.replan` commits charged during the re-planned run.
    pub replans: u64,
    /// Result digest (identical for both runs, asserted).
    pub result_digest: String,
}

fn digest(report: &QueryReport) -> String {
    let rendered = format!("{:?}", report.result);
    let hash = ironsafe_crypto::sha256::sha256(rendered.as_bytes());
    hash[..8].iter().map(|b| format!("{b:02x}")).collect()
}

fn params(storage_cores: u32) -> CostParams {
    CostParams { storage_cores, ..CostParams::default() }
}

fn build(data: &TpchData, storage_cores: u32) -> CsaSystem {
    CsaSystem::build(SystemConfig::IronSafe, data, params(storage_cores))
        .expect("system builds")
}

/// Prime-then-measure one static policy at one grid point.
fn run_static(
    data: &TpchData,
    q: &PaperQuery,
    strategy: PartitionStrategy,
    cores: u32,
    pressure: u64,
) -> QueryReport {
    let mut sys = build(data, cores);
    sys.set_partition_strategy(strategy);
    sys.set_epc_pressure(pressure);
    sys.run_query(q).expect("prime run");
    sys.run_query(q).expect("measured run")
}

/// Prime the adaptive planner with one offload run (feeding observed
/// selectivity/width/density into the EWMA store), then measure the
/// cost-based plan.
fn run_adaptive(data: &TpchData, q: &PaperQuery, cores: u32, pressure: u64) -> QueryReport {
    let mut sys = build(data, cores);
    sys.set_epc_pressure(pressure);
    sys.set_partition_strategy(PartitionStrategy::Static);
    sys.run_query(q).expect("priming run");
    sys.set_partition_strategy(PartitionStrategy::Adaptive);
    sys.run_query(q).expect("adaptive run")
}

/// Run the grid: three policies per (selectivity, pressure) point,
/// asserting digest parity and adaptive dominance as it goes, then the
/// mis-estimate re-planning demo.
pub fn adaptive_sweep(sf: f64) -> (Vec<AdaptiveCell>, ReplanDemo) {
    let data = generate(sf, SEED);
    let mut cells = Vec::new();
    for &shape in &ADAPTIVE_SHAPES {
        for &cores in &ADAPTIVE_STORAGE_CORES {
            for &pressure in &ADAPTIVE_PRESSURES {
                for &sel in &ADAPTIVE_SELECTIVITIES {
                    let q = shape_query(shape, sel);
                    let allhost =
                        run_static(&data, &q, PartitionStrategy::AllHost, cores, pressure);
                    let offload =
                        run_static(&data, &q, PartitionStrategy::Static, cores, pressure);
                    let adaptive = run_adaptive(&data, &q, cores, pressure);
                    let label = format!("{shape} cores={cores} sel={sel}% pressure={pressure}");
                    assert_eq!(digest(&allhost), digest(&offload), "{label}: static digests");
                    assert_eq!(digest(&allhost), digest(&adaptive), "{label}: adaptive digest");
                    let chosen = if adaptive.breakdown == offload.breakdown {
                        "offload"
                    } else if adaptive.breakdown == allhost.breakdown {
                        "ship_pages"
                    } else {
                        "mixed"
                    };
                    let floor = offload.total_ns().min(allhost.total_ns());
                    assert!(
                        adaptive.total_ns() <= floor * (1.0 + 1e-9),
                        "{label}: adaptive ({:.0}ns) worse than best static ({:.0}ns)",
                        adaptive.total_ns(),
                        floor
                    );
                    cells.push(AdaptiveCell {
                        shape,
                        storage_cores: cores,
                        selectivity_pct: sel,
                        pressure_pages: pressure,
                        allhost_ns: allhost.total_ns(),
                        offload_ns: offload.total_ns(),
                        adaptive_ns: adaptive.total_ns(),
                        chosen,
                        result_digest: digest(&adaptive),
                    });
                }
            }
        }
    }

    // Somewhere on the grid the optimizer must beat *each* static
    // policy by ≥20%, or adaptivity is not paying for itself.
    let beats_allhost =
        cells.iter().any(|c| c.adaptive_ns <= 0.8 * c.allhost_ns);
    let beats_offload =
        cells.iter().any(|c| c.adaptive_ns <= 0.8 * c.offload_ns);
    if std::env::var_os("IRONSAFE_ADAPTIVE_DEBUG").is_some() {
        for c in &cells {
            eprintln!("{c:?}");
        }
    }
    assert!(beats_allhost, "no grid region beats all-host by >=20%");
    assert!(beats_offload, "no grid region beats all-offload by >=20%");

    (cells, replan_demo(&data))
}

/// Mis-pin the planner (1% estimate against an actual ~100% predicate)
/// and compare a stubborn run against one with the morsel-driver
/// divergence check armed.
fn replan_demo(data: &TpchData) -> ReplanDemo {
    let pinned = Estimate {
        selectivity: 0.01,
        row_wire_bytes: 84.0,
        temp_rows_per_page: 64.0,
        observations: 4,
    };
    let actual_pct = 100u32;
    let q = q1_with_selectivity(actual_pct);
    let run = |replan: Option<ReplanPolicy>| {
        let mut sys = build(data, 8);
        sys.set_partition_strategy(PartitionStrategy::Adaptive);
        sys.pin_table_estimate("lineitem", pinned.clone());
        sys.set_replan(replan);
        let registry = ironsafe_obs::Registry::new();
        sys.register_plan_metrics(&registry);
        let report = sys.run_query(&q).expect("replan demo run");
        let replans = registry.snapshot().counter("plan.replan").unwrap_or(0);
        (report, replans)
    };
    let (stubborn, stubborn_replans) = run(None);
    let (replanned, replans) = run(Some(ReplanPolicy::default()));
    assert_eq!(stubborn_replans, 0, "re-planning disabled must charge no re-plans");
    assert!(replans >= 1, "the mis-estimate must trip at least one re-plan");
    assert_eq!(
        digest(&stubborn),
        digest(&replanned),
        "re-planning must never change the answer"
    );
    assert!(
        replanned.total_ns() <= stubborn.total_ns(),
        "re-planned run ({:.0}ns) slower than the stubborn one ({:.0}ns)",
        replanned.total_ns(),
        stubborn.total_ns()
    );
    ReplanDemo {
        pinned_selectivity: pinned.selectivity,
        actual_pct,
        stubborn_ns: stubborn.total_ns(),
        replanned_ns: replanned.total_ns(),
        replans,
        result_digest: digest(&replanned),
    }
}

/// The byte-deterministic `"invariants"` JSON block (also embedded
/// verbatim in [`adaptive_json`]) — what the `--check` gate compares.
pub fn adaptive_invariants_json(sf: f64, cells: &[AdaptiveCell], demo: &ReplanDemo) -> String {
    let mut s = String::from("  \"invariants\": {\n");
    s.push_str(&format!("    \"sf\": {sf},\n    \"seed\": {SEED},\n    \"cells\": [\n"));
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"shape\":\"{}\",\"storage_cores\":{},\"selectivity_pct\":{},\
             \"pressure_pages\":{},\"allhost_ns\":{},\
             \"offload_ns\":{},\"adaptive_ns\":{},\"chosen\":\"{}\",\"result_digest\":\"{}\"}}{}\n",
            c.shape,
            c.storage_cores,
            c.selectivity_pct,
            c.pressure_pages,
            c.allhost_ns,
            c.offload_ns,
            c.adaptive_ns,
            c.chosen,
            c.result_digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"replan\": {{\"pinned_selectivity\":{},\"actual_pct\":{},\"stubborn_ns\":{},\
         \"replanned_ns\":{},\"replans\":{},\"result_digest\":\"{}\"}}\n",
        demo.pinned_selectivity,
        demo.actual_pct,
        demo.stubborn_ns,
        demo.replanned_ns,
        demo.replans,
        demo.result_digest
    ));
    s.push_str("  }");
    s
}

/// The full `BENCH_10.json` snapshot. Every number in it is simulated,
/// so unlike the other BENCH files there is no run-dependent wall-clock
/// section — the whole file is the gated invariants block.
pub fn adaptive_json(sf: f64, cells: &[AdaptiveCell], demo: &ReplanDemo) -> String {
    let mut s = String::from("{\n");
    s.push_str(&adaptive_invariants_json(sf, cells, demo));
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn sweep_corner_is_deterministic_and_gate_compatible() {
        // A reduced grid exercising both crossover ends and a pressure
        // point; the full grid runs under `paperbench adaptive`.
        let data = generate(ADAPTIVE_SF, SEED);
        let mut cells = Vec::new();
        for &(shape, cores, sel, pressure) in
            &[("agg", 8u32, 1u32, 0u64), ("wide", 2, 100, 0), ("agg", 8, 50, 24_420)]
        {
            let q = shape_query(shape, sel);
            let allhost = run_static(&data, &q, PartitionStrategy::AllHost, cores, pressure);
            let offload = run_static(&data, &q, PartitionStrategy::Static, cores, pressure);
            let adaptive = run_adaptive(&data, &q, cores, pressure);
            assert_eq!(digest(&allhost), digest(&adaptive), "{shape} sel={sel}");
            assert_eq!(digest(&offload), digest(&adaptive), "{shape} sel={sel}");
            assert!(
                adaptive.total_ns()
                    <= offload.total_ns().min(allhost.total_ns()) * (1.0 + 1e-9),
                "{shape} cores={cores} sel={sel} pressure={pressure}"
            );
            cells.push(AdaptiveCell {
                shape,
                storage_cores: cores,
                selectivity_pct: sel,
                pressure_pages: pressure,
                allhost_ns: allhost.total_ns(),
                offload_ns: offload.total_ns(),
                adaptive_ns: adaptive.total_ns(),
                chosen: "offload",
                result_digest: digest(&adaptive),
            });
        }
        let demo = replan_demo(&data);
        let a = adaptive_invariants_json(ADAPTIVE_SF, &cells, &demo);
        let demo_b = replan_demo(&data);
        let b = adaptive_invariants_json(ADAPTIVE_SF, &cells, &demo_b);
        assert_eq!(a, b, "invariants block must be byte-deterministic");
        let full = adaptive_json(ADAPTIVE_SF, &cells, &demo);
        assert!(looks_like_valid_json(&full), "{full}");
        assert!(full.contains(&a), "snapshot must embed the invariants block verbatim");
    }
}
