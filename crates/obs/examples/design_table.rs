//! Print the generated DESIGN.md metric table (paste into the
//! Telemetry section when the manifest changes).

fn main() {
    print!("{}", ironsafe_obs::manifest::design_table());
}
