//! Golden parity for MVCC snapshot reads: a reader pinned at epoch E
//! must be invisible to every later write. For any script of
//! interleaved non-allocating DML, the pinned view's rows *and* its
//! simulated `CostBreakdown` stay bit-identical to the quiesced run at
//! E, while fresh readers track the single-threaded model exactly.
//!
//! NOTE: runs at SF 0.002 (like the other csa golden tests) so the
//! secure pager's Merkle rebuild stays fast enough for CI.

use ironsafe_csa::{CostParams, CsaSystem, QueryReport, SharedCsaSystem, SystemConfig};
use ironsafe_sql::parser::parse_statement;
use ironsafe_sql::{QueryResult, Value};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

const KEY: [u8; 32] = [0x33u8; 32];

fn shared_system() -> SharedCsaSystem {
    let data = ironsafe_tpch::generate(0.002, 42);
    SharedCsaSystem::new(
        CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
            .expect("system builds"),
    )
}

fn count_of(report: &QueryReport) -> i64 {
    match &report.result {
        QueryResult::Rows { rows, .. } => match rows[0][0] {
            Value::Int(n) => n,
            ref other => panic!("expected int, got {other:?}"),
        },
        other => panic!("expected rows, got {other:?}"),
    }
}

/// One writer op decoded from a script byte: even bytes delete a nation
/// row, odd bytes update one in place. Both are non-allocating, so cost
/// parity holds alongside row parity.
fn op_statement(byte: u8) -> (ironsafe_sql::ast::Statement, Option<u8>) {
    let k = byte % 25;
    if byte.is_multiple_of(2) {
        let stmt =
            parse_statement(&format!("DELETE FROM nation WHERE n_nationkey = {k}")).unwrap();
        (stmt, Some(k))
    } else {
        let stmt = parse_statement(&format!(
            "UPDATE nation SET n_regionkey = 4 WHERE n_nationkey = {k}"
        ))
        .unwrap();
        (stmt, None)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any DML script: pin a view, capture the quiesced baseline at
    /// the pin epoch, then commit every write. After *each* commit the
    /// pinned view must reproduce the baseline bit-for-bit (rows and
    /// costs), and a fresh reader must agree with the single-threaded
    /// model of the committed prefix.
    #[test]
    fn pinned_reads_match_quiesced_baseline_under_writer(
        script in vec(any::<u8>(), 1..6),
    ) {
        let shared = shared_system();
        let sel = parse_statement("SELECT COUNT(*) FROM nation").unwrap();

        // Quiesced baseline at the initial epoch, then a pin at that
        // same epoch held across the whole script.
        let (baseline, _) = shared.run_statement(&sel, KEY).unwrap();
        let mut pinned = shared.pin_read_view().unwrap();
        pinned.set_session_key(KEY);

        let mut deleted: HashSet<u8> = HashSet::new();
        for byte in script {
            let (stmt, deletes) = op_statement(byte);
            shared.run_statement(&stmt, KEY).unwrap();
            if let Some(k) = deletes {
                deleted.insert(k);
            }

            // The pinned epoch is frozen: rows AND simulated costs.
            let snap = pinned.run_statement(&sel).unwrap();
            prop_assert_eq!(&snap.result, &baseline.result, "snapshot rows drifted");
            prop_assert_eq!(&snap.breakdown, &baseline.breakdown, "snapshot costs drifted");

            // A fresh reader tracks the single-threaded model.
            let (fresh, _) = shared.run_statement(&sel, KEY).unwrap();
            prop_assert_eq!(count_of(&fresh), 25 - deleted.len() as i64);
        }

        // Dropping the pin releases the retained versions; the live
        // state is unaffected.
        drop(pinned);
        let (after, _) = shared.run_statement(&sel, KEY).unwrap();
        prop_assert_eq!(count_of(&after), 25 - deleted.len() as i64);
    }
}

/// Readers never queue behind a writer: while one thread commits a
/// stream of deletes, concurrent readers keep completing successfully,
/// and each reader observes a non-increasing sequence of committed
/// counts (epochs are monotonic) — never a torn in-between value.
#[test]
fn concurrent_readers_observe_only_committed_epochs() {
    let shared = std::sync::Arc::new(shared_system());
    let sel = parse_statement("SELECT COUNT(*) FROM region").unwrap();
    let n_deletes = 5usize;

    crossbeam::thread::scope(|s| {
        let writer = {
            let shared = std::sync::Arc::clone(&shared);
            s.spawn(move |_| {
                for k in 0..n_deletes {
                    let del = parse_statement(&format!(
                        "DELETE FROM region WHERE r_regionkey = {k}"
                    ))
                    .unwrap();
                    shared.run_statement(&del, KEY).unwrap();
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..3 {
            let shared = std::sync::Arc::clone(&shared);
            let sel = sel.clone();
            readers.push(s.spawn(move |_| {
                let mut last = 5i64;
                for _ in 0..20 {
                    let (report, _) = shared.run_statement(&sel, KEY).expect("reads never block");
                    let n = count_of(&report);
                    assert!((0..=5).contains(&n), "count {n} is not a committed state");
                    assert!(n <= last, "reader went back in time: {last} -> {n}");
                    last = n;
                }
            }));
        }
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    })
    .unwrap();

    // Writer done, all deletes committed.
    let (report, _) = shared.run_statement(&sel, KEY).unwrap();
    assert_eq!(count_of(&report), 0);
}
