//! Replay-Protected Memory Block (RPMB).
//!
//! eMMC parts ship a small authenticated partition: once an authentication
//! key is programmed (write-once), every write must carry an HMAC keyed
//! with it and the *current* write counter, and every read response is
//! MAC'd over the caller's nonce — so neither writes nor read replies can
//! be replayed or forged. IronSafe stores the Merkle-root HMAC and the
//! sealed database key here (§4.1 of the paper), which is what defeats
//! rollback and forking attacks on the untrusted medium.

use crate::{Result, TeeError};
use ironsafe_crypto::hmac::hmac_sha256_concat;
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_obs::{Counter, Registry};

/// RPMB block size in bytes (half-sector data frames in real eMMC; a round
/// 256 bytes here).
pub const RPMB_BLOCK: usize = 256;

/// The device-side RPMB state machine.
#[derive(Debug)]
pub struct Rpmb {
    key: Option<[u8; 32]>,
    blocks: Vec<[u8; RPMB_BLOCK]>,
    write_counter: u64,
    reads: Counter,
    writes: Counter,
    fault_plan: FaultPlan,
}

impl Rpmb {
    /// A fresh, unprogrammed part with `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Self {
        Rpmb {
            key: None,
            blocks: vec![[0; RPMB_BLOCK]; num_blocks],
            write_counter: 0,
            reads: Counter::new(),
            writes: Counter::new(),
            fault_plan: FaultPlan::none(),
        }
    }

    /// Install a fault plan; `tee.rpmb.write_fail` faults make
    /// authenticated writes fail with [`TeeError::RpmbBusy`] before the
    /// device state changes (write counter untouched, so a retried
    /// write with a recomputed MAC succeeds).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Attach the part's operation counters to `registry` as
    /// `tee.rpmb.read` / `tee.rpmb.write`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("tee.rpmb.read", &self.reads);
        registry.register_counter("tee.rpmb.write", &self.writes);
    }

    /// One-time key programming. Fails if already programmed.
    pub fn program_key(&mut self, key: [u8; 32]) -> Result<()> {
        if self.key.is_some() {
            return Err(TeeError::RpmbViolation("authentication key already programmed"));
        }
        self.key = Some(key);
        Ok(())
    }

    /// Whether the authentication key has been programmed.
    pub fn is_programmed(&self) -> bool {
        self.key.is_some()
    }

    /// Current write counter (public, monotonic).
    pub fn write_counter(&self) -> u64 {
        self.write_counter
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn key(&self) -> Result<&[u8; 32]> {
        self.key.as_ref().ok_or(TeeError::RpmbViolation("key not programmed"))
    }

    /// Authenticated write: `mac = HMAC(key, addr ‖ counter ‖ data)` where
    /// `counter` must equal the current write counter.
    pub fn authenticated_write(
        &mut self,
        addr: usize,
        counter: u64,
        data: &[u8; RPMB_BLOCK],
        mac: &[u8; 32],
    ) -> Result<()> {
        if self.fault_plan.should_fire(FaultSite::RpmbWrite) {
            return Err(TeeError::RpmbBusy("injected RPMB write failure"));
        }
        let key = *self.key()?;
        if addr >= self.blocks.len() {
            return Err(TeeError::RpmbViolation("address out of range"));
        }
        if counter != self.write_counter {
            return Err(TeeError::RpmbViolation("stale write counter (replayed write?)"));
        }
        let expect = write_mac(&key, addr, counter, data);
        if !ironsafe_crypto::ct_eq(&expect, mac) {
            return Err(TeeError::RpmbViolation("bad write MAC"));
        }
        self.blocks[addr] = *data;
        self.write_counter += 1;
        self.writes.inc();
        Ok(())
    }

    /// Authenticated read: returns `(data, counter, mac)` where
    /// `mac = HMAC(key, addr ‖ counter ‖ nonce ‖ data)`.
    pub fn authenticated_read(
        &self,
        addr: usize,
        nonce: &[u8; 16],
    ) -> Result<([u8; RPMB_BLOCK], u64, [u8; 32])> {
        let key = *self.key()?;
        if addr >= self.blocks.len() {
            return Err(TeeError::RpmbViolation("address out of range"));
        }
        let data = self.blocks[addr];
        let mac = read_mac(&key, addr, self.write_counter, nonce, &data);
        self.reads.inc();
        Ok((data, self.write_counter, mac))
    }
}

/// MAC for a write request.
pub fn write_mac(key: &[u8; 32], addr: usize, counter: u64, data: &[u8; RPMB_BLOCK]) -> [u8; 32] {
    hmac_sha256_concat(
        key,
        &[b"rpmb-write", &(addr as u64).to_be_bytes(), &counter.to_be_bytes(), data],
    )
}

/// MAC for a read response.
pub fn read_mac(
    key: &[u8; 32],
    addr: usize,
    counter: u64,
    nonce: &[u8; 16],
    data: &[u8; RPMB_BLOCK],
) -> [u8; 32] {
    hmac_sha256_concat(
        key,
        &[b"rpmb-read", &(addr as u64).to_be_bytes(), &counter.to_be_bytes(), nonce, data],
    )
}

/// The authorized-agent side: wraps the key and drives the protocol,
/// verifying read responses. In IronSafe this lives inside the secure
/// world's storage TA.
#[derive(Debug, Clone)]
pub struct RpmbClient {
    key: [u8; 32],
}

impl RpmbClient {
    /// Build a client around the shared authentication key.
    pub fn new(key: [u8; 32]) -> Self {
        RpmbClient { key }
    }

    /// Write `data` at `addr`, driving the counter protocol.
    pub fn write(&self, rpmb: &mut Rpmb, addr: usize, data: &[u8; RPMB_BLOCK]) -> Result<()> {
        let counter = rpmb.write_counter();
        let mac = write_mac(&self.key, addr, counter, data);
        rpmb.authenticated_write(addr, counter, data, &mac)
    }

    /// Read the block at `addr`, verifying the response MAC against `nonce`.
    pub fn read(
        &self,
        rpmb: &Rpmb,
        addr: usize,
        nonce: &[u8; 16],
    ) -> Result<[u8; RPMB_BLOCK]> {
        let (data, counter, mac) = rpmb.authenticated_read(addr, nonce)?;
        let expect = read_mac(&self.key, addr, counter, nonce, &data);
        if !ironsafe_crypto::ct_eq(&expect, &mac) {
            return Err(TeeError::RpmbViolation("bad read MAC (forged response?)"));
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed() -> (Rpmb, RpmbClient) {
        let mut rpmb = Rpmb::new(4);
        let key = [0x42; 32];
        rpmb.program_key(key).unwrap();
        (rpmb, RpmbClient::new(key))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut rpmb, client) = programmed();
        let data = [7u8; RPMB_BLOCK];
        client.write(&mut rpmb, 2, &data).unwrap();
        let got = client.read(&rpmb, 2, &[1; 16]).unwrap();
        assert_eq!(got, data);
        assert_eq!(rpmb.write_counter(), 1);
    }

    #[test]
    fn key_programming_is_write_once() {
        let mut rpmb = Rpmb::new(1);
        rpmb.program_key([1; 32]).unwrap();
        assert!(rpmb.program_key([2; 32]).is_err());
    }

    #[test]
    fn unprogrammed_part_refuses_io() {
        let rpmb = Rpmb::new(1);
        let client = RpmbClient::new([0; 32]);
        assert!(client.read(&rpmb, 0, &[0; 16]).is_err());
    }

    #[test]
    fn wrong_key_write_rejected() {
        let (mut rpmb, _) = programmed();
        let evil = RpmbClient::new([0xee; 32]);
        assert_eq!(
            evil.write(&mut rpmb, 0, &[0; RPMB_BLOCK]),
            Err(TeeError::RpmbViolation("bad write MAC"))
        );
        assert_eq!(rpmb.write_counter(), 0, "failed write must not bump counter");
    }

    #[test]
    fn replayed_write_rejected() {
        // Capture a valid write frame, apply it, then replay it: the counter
        // has moved on so the replay must fail.
        let (mut rpmb, client) = programmed();
        let data = [9u8; RPMB_BLOCK];
        let counter = rpmb.write_counter();
        let mac = write_mac(&[0x42; 32], 0, counter, &data);
        rpmb.authenticated_write(0, counter, &data, &mac).unwrap();
        client.write(&mut rpmb, 0, &[1u8; RPMB_BLOCK]).unwrap();
        assert_eq!(
            rpmb.authenticated_write(0, counter, &data, &mac),
            Err(TeeError::RpmbViolation("stale write counter (replayed write?)"))
        );
    }

    #[test]
    fn forged_read_response_detected() {
        // Simulate an attacker answering a read with stale data + stale MAC:
        // the fresh nonce in the MAC makes this detectable.
        let (mut rpmb, client) = programmed();
        client.write(&mut rpmb, 0, &[5u8; RPMB_BLOCK]).unwrap();
        let nonce_a = [0xaa; 16];
        let (data, counter, mac) = rpmb.authenticated_read(0, &nonce_a).unwrap();
        // Attacker replays (data, counter, mac) for a *different* nonce.
        let nonce_b = [0xbb; 16];
        let expect = read_mac(&[0x42; 32], 0, counter, &nonce_b, &data);
        assert!(!ironsafe_crypto::ct_eq(&expect, &mac), "replayed MAC must not verify under new nonce");
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut rpmb, client) = programmed();
        assert!(client.write(&mut rpmb, 99, &[0; RPMB_BLOCK]).is_err());
        assert!(client.read(&rpmb, 99, &[0; 16]).is_err());
    }

    #[test]
    fn counter_increments_once_per_successful_write() {
        let (mut rpmb, client) = programmed();
        for i in 0..5u8 {
            client.write(&mut rpmb, 0, &[i; RPMB_BLOCK]).unwrap();
        }
        assert_eq!(rpmb.write_counter(), 5);
    }
}
