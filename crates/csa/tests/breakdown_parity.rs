//! Golden-parity regression: the span-derived [`CostBreakdown`] must
//! reproduce a pinned accumulation **bit for bit**.
//!
//! The expected values below were originally captured from the
//! pre-telemetry inline `CostBreakdown` arithmetic for q1/q6/q18 across
//! all five system configurations at SF 0.002, seed 42, default cost
//! parameters, and re-captured when the freshness fast path (shared-path
//! `verify_batch` + the root-epoch verified-node cache) landed: every
//! `freshness_ns` value shrank (7.6x for the q1/q6 scans; less for q18's
//! multi-statement plans, whose temp-table writes bump the root epoch
//! between stages), while every other term is unchanged from the
//! pre-telemetry capture. The span attribution charges each cost term in
//! the same order as the old left-to-right sums, so every f64 matches
//! exactly — `assert_eq!`, no epsilon.

use ironsafe_csa::cost::{CostBreakdown, CostParams};
use ironsafe_csa::system::{CsaSystem, SystemConfig};
use ironsafe_tpch::queries::query;

const CONFIGS: [SystemConfig; 5] = [
    SystemConfig::HostOnlyNonSecure,
    SystemConfig::HostOnlySecure,
    SystemConfig::VanillaCs,
    SystemConfig::IronSafe,
    SystemConfig::StorageOnlySecure,
];

/// `(query, config, ndp, freshness, crypto, transitions, epc, other)`
/// captured from the pre-refactor inline accumulation.
#[rustfmt::skip]
/// (query, config, ndp, freshness, crypto, transitions, epc, other).
type GoldenRow = (u8, SystemConfig, f64, f64, f64, f64, f64, f64);

const GOLDEN: [GoldenRow; 15] = [
    (1, SystemConfig::HostOnlyNonSecure, 10290499.44, 0.0, 0.0, 0.0, 0.0, 0.0),
    (1, SystemConfig::HostOnlySecure, 10290499.44, 1498250.0, 1719000.0, 9168000.0, 0.0, 0.0),
    (1, SystemConfig::VanillaCs, 12300295.12, 0.0, 0.0, 0.0, 0.0, 0.0),
    (1, SystemConfig::IronSafe, 12300295.12, 1498250.0, 1719000.0, 48000.0, 2800000.0, 287669.2),
    (1, SystemConfig::StorageOnlySecure, 21364758.0, 1498250.0, 1719000.0, 0.0, 0.0, 0.0),
    (6, SystemConfig::HostOnlyNonSecure, 8138419.4399999995, 0.0, 0.0, 0.0, 0.0, 0.0),
    (6, SystemConfig::HostOnlySecure, 8138419.4399999995, 1498250.0, 1719000.0, 9168000.0, 0.0, 0.0),
    (6, SystemConfig::VanillaCs, 2152483.92, 0.0, 0.0, 0.0, 0.0, 0.0),
    (6, SystemConfig::IronSafe, 2152483.92, 1498250.0, 1719000.0, 16000.0, 42000.0, 250477.2),
    (6, SystemConfig::StorageOnlySecure, 14478102.0, 1498250.0, 1719000.0, 0.0, 0.0, 0.0),
    (18, SystemConfig::HostOnlyNonSecure, 21097073.36, 0.0, 0.0, 0.0, 0.0, 0.0),
    (18, SystemConfig::HostOnlySecure, 21097073.36, 42912750.0, 12009000.0, 10992000.0, 0.0, 0.0),
    (18, SystemConfig::VanillaCs, 23894392.24, 0.0, 0.0, 0.0, 0.0, 0.0),
    (18, SystemConfig::IronSafe, 23894392.24, 1799850.0, 2058000.0, 80000.0, 1456000.0, 267553.4),
    (18, SystemConfig::StorageOnlySecure, 53618130.0, 42912750.0, 12009000.0, 0.0, 0.0, 0.0),
];

#[test]
fn span_derived_breakdown_matches_pre_refactor_golden_values() {
    let data = ironsafe_tpch::generate(0.002, 42);
    for (qid, config, ndp, freshness, crypto, transitions, epc, other) in GOLDEN {
        let mut sys = CsaSystem::build(config, &data, CostParams::default()).expect("system builds");
        let report = sys.run_query(&query(qid).expect("known query")).expect("query runs");
        let got = report.breakdown;
        let want = CostBreakdown {
            ndp_ns: ndp,
            freshness_ns: freshness,
            crypto_ns: crypto,
            transitions_ns: transitions,
            epc_ns: epc,
            other_ns: other,
        };
        assert_eq!(got, want, "q{qid} {config:?}: breakdown drifted from golden values");
        // The report's breakdown is exactly what the trace derives.
        let trace = sys.last_trace().expect("run_query records a trace");
        assert_eq!(CostBreakdown::from_trace(trace), got, "q{qid} {config:?}");
        // The trace cursor sums attributions in creation order, the
        // breakdown in field order — equal up to f64 reassociation.
        let total_drift = (trace.sim_total_ns() - got.total_ns()).abs();
        assert!(total_drift < 1e-3, "q{qid} {config:?}: trace total drifts {total_drift}ns");
    }
}

#[test]
fn every_config_records_a_trace_with_query_root_span() {
    let data = ironsafe_tpch::generate(0.002, 42);
    for config in CONFIGS {
        let mut sys = CsaSystem::build(config, &data, CostParams::default()).expect("system builds");
        sys.run_query(&query(6).expect("known query")).expect("q6 runs");
        let trace = sys.last_trace().expect("trace recorded");
        assert!(!trace.spans.is_empty());
        assert_eq!(trace.spans[0].name, "query/q6", "{config:?}");
        assert_eq!(trace.spans[0].depth, 0);
    }
}
