//! Per-page authenticated encryption.
//!
//! Mirrors the SQLCipher layout the paper adopts: each stored 4 KiB block
//! holds a random IV, the AES-128-CBC ciphertext of the page payload, and
//! an HMAC-SHA512 (truncated to its 32-byte trailer slot) over
//! `page_id ‖ IV ‖ ciphertext` — the paper's exact MAC construction.
//! Binding the page id into the MAC stops an attacker from swapping two
//! well-formed pages (the Merkle tree additionally catches suppression and
//! whole-medium rollback).

use crate::blockdev::BLOCK_SIZE;
use crate::{Result, StorageError};
use ironsafe_crypto::aes::Aes128;
use ironsafe_crypto::hmac512::hmac_sha512_trunc256;
use ironsafe_crypto::modes::{cbc_decrypt_aligned, cbc_encrypt_aligned};

/// IV bytes at the head of each stored block.
const IV_LEN: usize = 16;
/// MAC bytes at the tail of each stored block.
const MAC_LEN: usize = 32;
/// Usable plaintext payload per page.
pub const PAGE_PAYLOAD: usize = BLOCK_SIZE - IV_LEN - MAC_LEN;

/// Encrypts/decrypts pages and computes their MACs.
pub struct PageCodec {
    aes: Aes128,
    mac_key: [u8; 32],
    /// Number of page encryptions performed (for the cost model).
    pub encrypt_count: u64,
    /// Number of page decryptions performed (for the cost model).
    pub decrypt_count: u64,
}

impl PageCodec {
    /// Build a codec from a 16-byte encryption key and 32-byte MAC key.
    pub fn new(enc_key: &[u8; 16], mac_key: &[u8; 32]) -> Self {
        PageCodec { aes: Aes128::new(enc_key), mac_key: *mac_key, encrypt_count: 0, decrypt_count: 0 }
    }

    /// Derive both keys from a single 16-byte database key (as SQLCipher
    /// derives its page keys from the user key).
    pub fn from_db_key(db_key: &[u8; 16]) -> Self {
        let enc = ironsafe_crypto::hkdf::derive_key_128(db_key, b"page-enc");
        let mac = ironsafe_crypto::hkdf::derive_key_256(db_key, b"page-mac");
        Self::new(&enc, &mac)
    }

    /// Encrypt `payload` (exactly [`PAGE_PAYLOAD`] bytes) for page
    /// `page_id`, producing a stored block and its MAC.
    pub fn encrypt_page(
        &mut self,
        page_id: u64,
        payload: &[u8],
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<([u8; BLOCK_SIZE], [u8; 32])> {
        if payload.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: payload.len() });
        }
        let mut block = [0u8; BLOCK_SIZE];
        let mut iv = [0u8; IV_LEN];
        rng.fill(&mut iv);
        block[..IV_LEN].copy_from_slice(&iv);
        block[IV_LEN..IV_LEN + PAGE_PAYLOAD].copy_from_slice(payload);
        cbc_encrypt_aligned(&self.aes, &iv, &mut block[IV_LEN..IV_LEN + PAGE_PAYLOAD]);
        let mac = self.page_mac(page_id, &block);
        block[IV_LEN + PAGE_PAYLOAD..].copy_from_slice(&mac);
        self.encrypt_count += 1;
        Ok((block, mac))
    }

    /// Verify and decrypt a stored block into `out` (exactly
    /// [`PAGE_PAYLOAD`] bytes). Returns the page MAC for Merkle checking.
    pub fn decrypt_page(
        &mut self,
        page_id: u64,
        block: &[u8; BLOCK_SIZE],
        out: &mut [u8],
    ) -> Result<[u8; 32]> {
        if out.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: out.len() });
        }
        let expect = self.page_mac(page_id, block);
        let stored: &[u8] = &block[IV_LEN + PAGE_PAYLOAD..];
        if !ironsafe_crypto::ct_eq(&expect, stored) {
            return Err(StorageError::IntegrityViolation("page MAC mismatch"));
        }
        let iv: [u8; IV_LEN] = block[..IV_LEN].try_into().expect("fixed split");
        out.copy_from_slice(&block[IV_LEN..IV_LEN + PAGE_PAYLOAD]);
        cbc_decrypt_aligned(&self.aes, &iv, out)
            .map_err(|_| StorageError::IntegrityViolation("page decryption failed"))?;
        self.decrypt_count += 1;
        Ok(expect)
    }

    /// HMAC-SHA512/256 over `page_id ‖ IV ‖ ciphertext`.
    pub fn page_mac(&self, page_id: u64, block: &[u8; BLOCK_SIZE]) -> [u8; 32] {
        hmac_sha512_trunc256(
            &self.mac_key,
            &[b"page", &page_id.to_be_bytes(), &block[..IV_LEN + PAGE_PAYLOAD]],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn codec() -> PageCodec {
        PageCodec::from_db_key(&[0x11; 16])
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn roundtrip() {
        let mut c = codec();
        let mut r = rng();
        let payload: Vec<u8> = (0..PAGE_PAYLOAD).map(|i| (i % 251) as u8).collect();
        let (block, _) = c.encrypt_page(42, &payload, &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        c.decrypt_page(42, &block, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!((c.encrypt_count, c.decrypt_count), (1, 1));
    }

    #[test]
    fn wrong_page_id_rejected() {
        // Prevents the displacement attack at the codec level.
        let mut c = codec();
        let mut r = rng();
        let payload = vec![7u8; PAGE_PAYLOAD];
        let (block, _) = c.encrypt_page(1, &payload, &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(
            c.decrypt_page(2, &block, &mut out),
            Err(StorageError::IntegrityViolation("page MAC mismatch"))
        );
    }

    #[test]
    fn ciphertext_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let payload = vec![7u8; PAGE_PAYLOAD];
        let (mut block, _) = c.encrypt_page(1, &payload, &mut r).unwrap();
        block[100] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn iv_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let (mut block, _) = c.encrypt_page(1, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        block[0] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn mac_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let (mut block, _) = c.encrypt_page(1, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        block[BLOCK_SIZE - 1] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn same_payload_distinct_ciphertext() {
        let mut c = codec();
        let mut r = rng();
        let payload = vec![0u8; PAGE_PAYLOAD];
        let (b1, m1) = c.encrypt_page(1, &payload, &mut r).unwrap();
        let (b2, m2) = c.encrypt_page(1, &payload, &mut r).unwrap();
        assert_ne!(b1[..], b2[..], "random IVs");
        assert_ne!(m1, m2);
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let mut c1 = PageCodec::from_db_key(&[1; 16]);
        let mut c2 = PageCodec::from_db_key(&[2; 16]);
        let mut r = rng();
        let (block, _) = c1.encrypt_page(0, &vec![9u8; PAGE_PAYLOAD], &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c2.decrypt_page(0, &block, &mut out).is_err());
    }

    #[test]
    fn bad_sizes_rejected() {
        let mut c = codec();
        let mut r = rng();
        assert!(matches!(
            c.encrypt_page(0, &[0u8; 10], &mut r),
            Err(StorageError::BadBufferSize { .. })
        ));
        let (block, _) = c.encrypt_page(0, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        let mut small = vec![0u8; 10];
        assert!(matches!(
            c.decrypt_page(0, &block, &mut small),
            Err(StorageError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn payload_is_block_aligned_for_cbc() {
        assert_eq!(PAGE_PAYLOAD % 16, 0);
    }
}
