//! Constant-time byte comparison.

/// Compare two byte slices without early exit.
///
/// Returns `true` iff the slices have equal length and equal contents.
/// The comparison time depends only on the slice lengths, never on the
/// position of the first mismatch — required when comparing MACs so an
/// attacker probing the secure storage cannot binary-search a valid tag.
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn unequal_contents() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"xbc", b"abc"));
    }

    #[test]
    fn unequal_lengths() {
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
    }
}
